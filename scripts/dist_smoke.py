#!/usr/bin/env python
"""Distributed-campaign smoke drill: coordinator, two workers, one kill.

The acceptance sequence CI runs as ``make dist-smoke``:

1. Single-host reference: ``fi run`` over a sampled avr-fib fault list.
2. Coordinator (with shared-secret worker auth and the live HTTP console
   mounted) plus two loopback injector workers; the same campaign
   submitted over the wire and sharded across both. ``/metrics`` and
   ``/status.json`` are scraped mid-run, the dashboard page and a
   flamegraph of the relayed telemetry are saved as artifacts, and the
   run must finish with zero health alerts fired.
3. One worker SIGKILLed mid-campaign — lease expiry must reassign its
   shard and the campaign must still complete.
4. The merged shard journal and the reference ingest into one warehouse
   and ``store diff`` must report zero outcome flips (exit 1 otherwise).
5. Stall drill: a fresh coordinator with a tight stall threshold, one
   worker SIGSTOPped mid-campaign — the ``stalled`` health rule must
   fire, ``submit --wait --fail-on-alert`` must exit nonzero, and the
   alert must clear after SIGCONT.

Everything lands under ``--smoke-dir`` so CI uploads the reference
journal, the sharded campaign directory (shard journals + relayed
telemetry), the console/flamegraph pages, and the warehouse as one
artifact.
"""

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
ENV = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))

TARGET = "avr-fib"
CAMPAIGN = "dist-smoke"
#: The shared-secret the drill distributes: flag on the coordinator and
#: submit side, $REPRO_FI_TOKEN on the workers — both paths exercised.
TOKEN = "dist-smoke-token"
WORKER_ENV = dict(ENV, REPRO_FI_TOKEN=TOKEN)


def _log(message):
    print(f"[dist-smoke] {message}", flush=True)


def _run(*args, timeout=1200):
    """One foreground CLI step; raises on nonzero exit."""
    _log("$ " + " ".join(str(a) for a in args))
    subprocess.run(
        [sys.executable, "-m", *map(str, args)],
        env=ENV, cwd=REPO_ROOT, check=True, timeout=timeout,
    )


def _spawn(*args, env=None):
    _log("$ " + " ".join(str(a) for a in args) + " &")
    return subprocess.Popen(
        [sys.executable, "-m", *map(str, args)],
        env=env or ENV, cwd=REPO_ROOT, start_new_session=True,
    )


def _scrape(url, timeout=30):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode()


def _console_url(state_dir):
    return json.loads((state_dir / "console.json").read_text())["url"]


def _kill(proc, signum=signal.SIGKILL):
    if proc.poll() is None:
        try:
            os.killpg(proc.pid, signum)
        except ProcessLookupError:
            pass
    proc.wait(timeout=60)


def _wait_for(predicate, timeout, what):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.2)
    raise SystemExit(f"dist-smoke: timed out waiting for {what}")


def _journaled_records(directory):
    """Completed injection records across every shard journal so far."""
    count = 0
    for path in directory.glob("shard-*.jsonl"):
        with open(path) as fh:
            for line in fh:
                try:
                    doc = json.loads(line)
                except ValueError:
                    continue  # torn tail mid-write
                if doc.get("kind") == "record":
                    count += 1
    return count


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--points", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument(
        "--smoke-dir", type=Path, default=Path(".repro_cache/smoke")
    )
    parser.add_argument(
        "--kill-after", type=int, default=200, metavar="N",
        help="SIGKILL one worker once N records are journaled (default 200)",
    )
    args = parser.parse_args(argv)

    smoke = args.smoke_dir.resolve()
    smoke.mkdir(parents=True, exist_ok=True)
    reference = smoke / "dist-smoke-reference.jsonl"
    state_dir = smoke / "dist-smoke-state"
    warehouse = smoke / "dist-smoke.sqlite3"
    port_file = smoke / "dist-smoke.port"
    for stale in (reference, warehouse, port_file):
        stale.unlink(missing_ok=True)
    if state_dir.exists():
        shutil.rmtree(state_dir)

    _log(f"single-host reference: {TARGET} x {args.points} points")
    _run(
        "repro.fi", "run", "--target", TARGET,
        "--sampled", args.points, "--seed", args.seed,
        "--journal", reference, "--no-store",
    )

    coordinator = _spawn(
        "repro.fi", "serve", "--host", "127.0.0.1", "--port", "0",
        "--port-file", port_file, "--state-dir", state_dir,
        "--no-store", "--lease-seconds", "15",
        "--console-port", "0", "--auth-token", TOKEN,
    )
    workers = []
    try:
        _wait_for(port_file.exists, 60, "the coordinator's port file")
        port = int(port_file.read_text())
        _wait_for(
            lambda: (state_dir / "console.json").exists(),
            60, "the console discovery file",
        )
        console = _console_url(state_dir)
        _log(f"coordinator listening on 127.0.0.1:{port}, console {console}")
        workers = [
            _spawn(
                "repro.fi", "worker", "--connect", f"127.0.0.1:{port}",
                env=WORKER_ENV,  # token via $REPRO_FI_TOKEN
            )
            for _ in range(2)
        ]
        _run(
            "repro.fi", "submit", "--connect", f"127.0.0.1:{port}",
            "--target", TARGET, "--sampled", args.points,
            "--seed", args.seed, "--name", CAMPAIGN,
            "--auth-token", TOKEN,
        )
        directory = state_dir / CAMPAIGN

        _wait_for(
            lambda: _journaled_records(directory) >= args.kill_after,
            600, f"{args.kill_after} journaled records",
        )

        _log("mid-run console scrape")
        metrics = _scrape(console + "/metrics")
        for needle in (
            "repro_service_records_total",
            "repro_obs_health_firing",
            "{worker=",  # relayed, worker-labelled series
        ):
            if needle not in metrics:
                raise SystemExit(f"dist-smoke: {needle!r} missing /metrics")
        status = json.loads(_scrape(console + "/status.json"))
        if not status["campaigns"][0]["shards"]:
            raise SystemExit("dist-smoke: no lease table in /status.json")
        if not all(w["authenticated"] for w in status["worker_table"]):
            raise SystemExit("dist-smoke: worker rows not authenticated")
        (smoke / "dist-smoke-console.html").write_text(_scrape(console + "/"))

        _log(f"SIGKILL worker pid {workers[0].pid} mid-campaign")
        _kill(workers[0])

        _wait_for(
            lambda: (directory / "merged.jsonl").exists()
            and coordinator.poll() is None,
            900, "the merged journal",
        )
        status = json.loads(_scrape(console + "/status.json"))
        if status.get("alerts_fired_total", 0):
            raise SystemExit(
                f"dist-smoke: health alerts fired during a healthy run: "
                f"{status['alerts_fired_total']}"
            )
        _log("campaign complete, zero health alerts; sharded status:")
        _run("repro.fi", "status", "--journal", directory)
    finally:
        for proc in workers:
            _kill(proc)
        _kill(coordinator, signal.SIGTERM)

    _log("flamegraph from the relayed campaign telemetry")
    _run(
        "repro.obs", "flame", directory / "telemetry",
        "--out", smoke / "dist-smoke-flame.html",
        "--title", "dist-smoke campaign",
    )

    _log("warehouse diff: distributed merge vs single-host reference")
    _run("repro.store", "--db", warehouse, "ingest", reference)
    _run("repro.store", "--db", warehouse, "ingest", directory)
    _run("repro.store", "--db", warehouse, "list")
    # Exits 1 on any outcome flip between the two campaigns — the gate.
    _run("repro.store", "--db", warehouse, "diff", "1", "2")
    _log("zero outcome flips: distributed == single-host")

    _stall_drill(smoke, args.seed)
    return 0


def _stall_drill(smoke, seed):
    """A SIGSTOPped worker must trip the stall rule, then clear on SIGCONT."""
    _log("stall drill: tight stall threshold, SIGSTOPped worker")
    state_dir = smoke / "dist-smoke-stall-state"
    port_file = smoke / "dist-smoke-stall.port"
    if state_dir.exists():
        shutil.rmtree(state_dir)
    port_file.unlink(missing_ok=True)
    coordinator = _spawn(
        "repro.fi", "serve", "--host", "127.0.0.1", "--port", "0",
        "--port-file", port_file, "--state-dir", state_dir,
        "--no-store", "--no-fallback", "--stall-seconds", "3",
        "--console-port", "0", "--auth-token", TOKEN,
    )
    worker = waiter = None
    try:
        _wait_for(port_file.exists, 60, "the stall coordinator's port file")
        port = int(port_file.read_text())
        worker = _spawn(
            "repro.fi", "worker", "--connect", f"127.0.0.1:{port}",
            env=WORKER_ENV,
        )
        waiter = _spawn(
            "repro.fi", "submit", "--connect", f"127.0.0.1:{port}",
            "--target", TARGET, "--sampled", "600", "--seed", seed,
            "--name", "stall", "--auth-token", TOKEN,
            "--wait", "--poll", "0.5", "--fail-on-alert",
        )
        _wait_for(
            lambda: _journaled_records(state_dir / "stall") >= 20,
            600, "the stall campaign to warm up",
        )
        _log(f"SIGSTOP worker pid {worker.pid}")
        os.killpg(worker.pid, signal.SIGSTOP)
        waiter_rc = waiter.wait(timeout=120)
        if waiter_rc == 0:
            raise SystemExit(
                "dist-smoke: submit --fail-on-alert exited 0 despite "
                "the stall"
            )
        _log(f"submit --wait --fail-on-alert exited {waiter_rc} as expected")
        console = _console_url(state_dir)
        if "repro_obs_health_stalled 1" not in _scrape(console + "/metrics"):
            raise SystemExit(
                "dist-smoke: stalled gauge not 1 while the worker is stopped"
            )
        _log(f"SIGCONT worker pid {worker.pid}")
        os.killpg(worker.pid, signal.SIGCONT)
        _wait_for(
            lambda: "repro_obs_health_stalled 0"
            in _scrape(console + "/metrics"),
            120, "the stall alert to clear",
        )
        _log("stall alert cleared after SIGCONT")
    finally:
        if worker is not None:
            try:
                os.killpg(worker.pid, signal.SIGCONT)
            except ProcessLookupError:
                pass
            _kill(worker)
        if waiter is not None:
            _kill(waiter)
        _kill(coordinator, signal.SIGTERM)


if __name__ == "__main__":
    sys.exit(main())
