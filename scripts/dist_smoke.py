#!/usr/bin/env python
"""Distributed-campaign smoke drill: coordinator, two workers, one kill.

The acceptance sequence CI runs as ``make dist-smoke``:

1. Single-host reference: ``fi run`` over a sampled avr-fib fault list.
2. Coordinator plus two loopback injector workers; the same campaign
   submitted over the wire and sharded across both.
3. One worker SIGKILLed mid-campaign — lease expiry must reassign its
   shard and the campaign must still complete.
4. The merged shard journal and the reference ingest into one warehouse
   and ``store diff`` must report zero outcome flips (exit 1 otherwise).

Everything lands under ``--smoke-dir`` so CI uploads the reference
journal, the sharded campaign directory (shard journals + relayed
telemetry), and the warehouse as one artifact.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
ENV = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))

TARGET = "avr-fib"
CAMPAIGN = "dist-smoke"


def _log(message):
    print(f"[dist-smoke] {message}", flush=True)


def _run(*args, timeout=1200):
    """One foreground CLI step; raises on nonzero exit."""
    _log("$ " + " ".join(str(a) for a in args))
    subprocess.run(
        [sys.executable, "-m", *map(str, args)],
        env=ENV, cwd=REPO_ROOT, check=True, timeout=timeout,
    )


def _spawn(*args):
    _log("$ " + " ".join(str(a) for a in args) + " &")
    return subprocess.Popen(
        [sys.executable, "-m", *map(str, args)],
        env=ENV, cwd=REPO_ROOT, start_new_session=True,
    )


def _kill(proc, signum=signal.SIGKILL):
    if proc.poll() is None:
        try:
            os.killpg(proc.pid, signum)
        except ProcessLookupError:
            pass
    proc.wait(timeout=60)


def _wait_for(predicate, timeout, what):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.2)
    raise SystemExit(f"dist-smoke: timed out waiting for {what}")


def _journaled_records(directory):
    """Completed injection records across every shard journal so far."""
    count = 0
    for path in directory.glob("shard-*.jsonl"):
        with open(path) as fh:
            for line in fh:
                try:
                    doc = json.loads(line)
                except ValueError:
                    continue  # torn tail mid-write
                if doc.get("kind") == "record":
                    count += 1
    return count


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--points", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument(
        "--smoke-dir", type=Path, default=Path(".repro_cache/smoke")
    )
    parser.add_argument(
        "--kill-after", type=int, default=200, metavar="N",
        help="SIGKILL one worker once N records are journaled (default 200)",
    )
    args = parser.parse_args(argv)

    smoke = args.smoke_dir.resolve()
    smoke.mkdir(parents=True, exist_ok=True)
    reference = smoke / "dist-smoke-reference.jsonl"
    state_dir = smoke / "dist-smoke-state"
    warehouse = smoke / "dist-smoke.sqlite3"
    port_file = smoke / "dist-smoke.port"
    for stale in (reference, warehouse, port_file):
        stale.unlink(missing_ok=True)
    if state_dir.exists():
        import shutil

        shutil.rmtree(state_dir)

    _log(f"single-host reference: {TARGET} x {args.points} points")
    _run(
        "repro.fi", "run", "--target", TARGET,
        "--sampled", args.points, "--seed", args.seed,
        "--journal", reference, "--no-store",
    )

    coordinator = _spawn(
        "repro.fi", "serve", "--host", "127.0.0.1", "--port", "0",
        "--port-file", port_file, "--state-dir", state_dir,
        "--no-store", "--lease-seconds", "15",
    )
    workers = []
    try:
        _wait_for(port_file.exists, 60, "the coordinator's port file")
        port = int(port_file.read_text())
        _log(f"coordinator listening on 127.0.0.1:{port}")
        workers = [
            _spawn("repro.fi", "worker", "--connect", f"127.0.0.1:{port}")
            for _ in range(2)
        ]
        _run(
            "repro.fi", "submit", "--connect", f"127.0.0.1:{port}",
            "--target", TARGET, "--sampled", args.points,
            "--seed", args.seed, "--name", CAMPAIGN,
        )
        directory = state_dir / CAMPAIGN

        _wait_for(
            lambda: _journaled_records(directory) >= args.kill_after,
            600, f"{args.kill_after} journaled records",
        )
        _log(f"SIGKILL worker pid {workers[0].pid} mid-campaign")
        _kill(workers[0])

        _wait_for(
            lambda: (directory / "merged.jsonl").exists()
            and coordinator.poll() is None,
            900, "the merged journal",
        )
        _log("campaign complete; sharded status:")
        _run("repro.fi", "status", "--journal", directory)
    finally:
        for proc in workers:
            _kill(proc)
        _kill(coordinator, signal.SIGTERM)

    _log("warehouse diff: distributed merge vs single-host reference")
    _run("repro.store", "--db", warehouse, "ingest", reference)
    _run("repro.store", "--db", warehouse, "ingest", directory)
    _run("repro.store", "--db", warehouse, "list")
    # Exits 1 on any outcome flip between the two campaigns — the gate.
    _run("repro.store", "--db", warehouse, "diff", "1", "2")
    _log("zero outcome flips: distributed == single-host")
    return 0


if __name__ == "__main__":
    sys.exit(main())
