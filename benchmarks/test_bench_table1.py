"""Benchmark + regeneration of Table 1 (MATE search statistics).

Timing target: the MATE search itself, measured on a representative sample
of faulty wires per core (full runs are cached and printed).
"""

import pytest

from repro.core.search import SearchParameters, faulty_wires_for_dffs, find_mates
from repro.eval import context
from repro.eval.table1 import build_table1


@pytest.mark.bench_table
def test_bench_mate_search_sample(benchmark, core):
    """Search time for a 12-wire sample (mixed RF / non-RF)."""
    netlist = context.get_netlist(core)
    all_wires = list(faulty_wires_for_dffs(netlist).items())
    rf = netlist.register_file_dffs()
    sample = (
        [(w, d) for w, d in all_wires if d not in rf][:6]
        + [(w, d) for w, d in all_wires if d in rf][:6]
    )
    params = SearchParameters(max_candidates=20_000, max_exact_checks=500)

    result = benchmark.pedantic(
        find_mates,
        args=(netlist,),
        kwargs={"faulty_wires": dict(sample), "params": params},
        rounds=1,
        iterations=1,
    )
    assert result.num_faulty_wires == len(sample)


@pytest.mark.bench_table
def test_bench_table1_full(benchmark):
    """Assemble (cached) and print the full Table 1."""
    table = benchmark.pedantic(build_table1, rounds=1, iterations=1)
    text = table.format()
    print("\n" + text)
    assert "Faulty Wires" in text
    assert len(table.columns) == 4
    # Shape checks against the paper: every input set finds MATEs, has some
    # unmaskable wires, and tries a nontrivial number of candidates.
    for column in table.columns:
        assert column.faulty_wires > 0
        assert column.num_candidates > 1e5
        assert column.num_mates > 0
