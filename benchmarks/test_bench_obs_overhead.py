"""Micro-benchmark: observability overhead on the simulator hot loop.

The instrumentation contract (see ``sim/simulator.py``) is that metrics stay
*outside* the per-cycle loop — one span plus a few counter increments per
``Simulator.run`` call. This benchmark pins that contract: simulating the
same workload with observability enabled must cost < 5% more wall time than
with it disabled, so the observability layer can never quietly regress the
thing it exists to measure.

Run with ``pytest benchmarks/test_bench_obs_overhead.py -s``.
"""

import time

import pytest

from repro import obs
from repro.rtl import RtlCircuit
from repro.sim import Simulator, Testbench
from repro.synth import synthesize

#: Cycles per measured run — large enough that one run takes milliseconds.
_CYCLES = 3000
#: Interleaved measurement rounds; min-of-rounds defeats scheduler noise.
_ROUNDS = 9
#: Allowed instrumentation overhead on the hot loop.
_MAX_OVERHEAD = 0.05


def _counter_netlist():
    """A small free-running circuit with enough gates to busy the loop."""
    c = RtlCircuit("obs_bench")
    data = c.input("data", 8)
    acc = c.reg("acc", 16)
    count = c.reg("count", 8)
    acc.next = (acc + data.zext(16)).trunc(16)
    count.next = (count + 1).trunc(8)
    c.output("acc_out", acc)
    c.output("count_out", count)
    return synthesize(c)


class _DriveBench(Testbench):
    def drive(self, cycle, state):
        return {"data": cycle & 0xFF}


def _one_run(simulator: Simulator) -> float:
    start = time.perf_counter()
    simulator.run(_DriveBench(), max_cycles=_CYCLES, record_trace=False)
    return time.perf_counter() - start


@pytest.fixture()
def simulator():
    return Simulator(_counter_netlist())


def test_obs_overhead_on_sim_hot_loop_under_5_percent(simulator):
    # Warm up both paths (JIT-free, but caches/allocator state matter).
    for enabled in (True, False):
        obs.set_enabled(enabled)
        _one_run(simulator)

    enabled_best = disabled_best = float("inf")
    try:
        # Interleave A/B so clock drift and thermal state hit both equally.
        for _ in range(_ROUNDS):
            obs.set_enabled(True)
            enabled_best = min(enabled_best, _one_run(simulator))
            obs.set_enabled(False)
            disabled_best = min(disabled_best, _one_run(simulator))
    finally:
        obs.set_enabled(True)

    overhead = enabled_best / disabled_best - 1.0
    print(
        f"\nsim hot loop ({_CYCLES} cycles): instrumented {enabled_best * 1e3:.2f}ms, "
        f"bare {disabled_best * 1e3:.2f}ms, overhead {100 * overhead:+.2f}%"
    )
    assert overhead < _MAX_OVERHEAD, (
        f"observability overhead {100 * overhead:.1f}% exceeds "
        f"{100 * _MAX_OVERHEAD:.0f}% on the simulator hot loop"
    )


def test_disabled_span_is_cheap():
    """A disabled span must cost well under a microsecond."""
    obs.set_enabled(False)
    try:
        iterations = 100_000
        start = time.perf_counter()
        for _ in range(iterations):
            with obs.span("noop"):
                pass
        per_span = (time.perf_counter() - start) / iterations
    finally:
        obs.set_enabled(True)
    assert per_span < 5e-6, f"disabled span costs {per_span * 1e9:.0f}ns"
