"""Micro-benchmark: observability overhead on the simulator hot loop.

The instrumentation contract (see ``sim/simulator.py``) is that metrics stay
*outside* the per-cycle loop — one span plus a few counter increments per
``Simulator.run`` call. This benchmark pins that contract: simulating the
same workload with observability enabled must cost < 5% more wall time than
with it disabled, so the observability layer can never quietly regress the
thing it exists to measure.

Run with ``pytest benchmarks/test_bench_obs_overhead.py -s``.
"""

import time

import pytest

from repro import obs
from repro.fi.campaign import Campaign, CampaignTarget
from repro.obs import events, remote
from repro.rtl import RtlCircuit
from repro.sim import Simulator, Testbench
from repro.synth import synthesize

#: Cycles per measured run — large enough that one run takes milliseconds.
_CYCLES = 3000
#: Interleaved measurement rounds; min-of-rounds defeats scheduler noise.
_ROUNDS = 9
#: Allowed instrumentation overhead on the hot loop.
_MAX_OVERHEAD = 0.05


def _counter_netlist():
    """A small free-running circuit with enough gates to busy the loop."""
    c = RtlCircuit("obs_bench")
    data = c.input("data", 8)
    acc = c.reg("acc", 16)
    count = c.reg("count", 8)
    acc.next = (acc + data.zext(16)).trunc(16)
    count.next = (count + 1).trunc(8)
    c.output("acc_out", acc)
    c.output("count_out", count)
    return synthesize(c)


class _DriveBench(Testbench):
    def drive(self, cycle, state):
        return {"data": cycle & 0xFF}


def _one_run(simulator: Simulator) -> float:
    start = time.perf_counter()
    simulator.run(_DriveBench(), max_cycles=_CYCLES, record_trace=False)
    return time.perf_counter() - start


@pytest.fixture()
def simulator():
    return Simulator(_counter_netlist())


def test_obs_overhead_on_sim_hot_loop_under_5_percent(simulator):
    # Warm up both paths (JIT-free, but caches/allocator state matter).
    for enabled in (True, False):
        obs.set_enabled(enabled)
        _one_run(simulator)

    enabled_best = disabled_best = float("inf")
    try:
        # Interleave A/B so clock drift and thermal state hit both equally.
        for _ in range(_ROUNDS):
            obs.set_enabled(True)
            enabled_best = min(enabled_best, _one_run(simulator))
            obs.set_enabled(False)
            disabled_best = min(disabled_best, _one_run(simulator))
    finally:
        obs.set_enabled(True)

    overhead = enabled_best / disabled_best - 1.0
    print(
        f"\nsim hot loop ({_CYCLES} cycles): instrumented {enabled_best * 1e3:.2f}ms, "
        f"bare {disabled_best * 1e3:.2f}ms, overhead {100 * overhead:+.2f}%"
    )
    assert overhead < _MAX_OVERHEAD, (
        f"observability overhead {100 * overhead:.1f}% exceeds "
        f"{100 * _MAX_OVERHEAD:.0f}% on the simulator hot loop"
    )


#: Golden-run length for the campaign hot loop; the injection budget is
#: ``timeout_factor`` times this, so one injection simulates thousands of
#: cycles while telemetry writes exactly one span record.
_INJECT_CYCLES = 1500
_INJECT_POINTS = 6


class _HaltingDriveBench(_DriveBench):
    def observe(self, cycle, outputs):
        return cycle >= _INJECT_CYCLES


def _campaign() -> Campaign:
    target = CampaignTarget(
        name="obs-bench",
        simulator=Simulator(_counter_netlist()),
        make_testbench=_HaltingDriveBench,
        observables=lambda tb, result: result.outputs_last,
    )
    return Campaign(target, max_cycles=_INJECT_CYCLES + 8)


def test_campaign_telemetry_overhead_inline_under_5_percent(tmp_path):
    """Streaming span telemetry must not slow the inline injection loop.

    The cross-process contract (see ``obs/remote.py``) is that telemetry
    writes happen at span granularity — one appended JSONL record per
    injection — never inside the simulation loop. With a realistic
    injection length the stream must cost < 5% extra wall time.
    """
    campaign = _campaign()
    points = [("acc_b0", 100 + i) for i in range(_INJECT_POINTS)]

    def one_pass() -> float:
        start = time.perf_counter()
        for dff_name, cycle in points:
            campaign.inject(dff_name, cycle)
        return time.perf_counter() - start

    def telemetry_pass(index: int) -> float:
        writer = remote.TelemetryWriter(
            tmp_path / f"parent-{index}.jsonl", role="parent"
        )
        events.install_sink(writer)
        try:
            elapsed = one_pass()
            writer.flush_metrics(obs.get_registry())
        finally:
            events.remove_sink(writer)
            writer.close()
        return elapsed

    telemetry_pass(0)  # warm up both paths
    one_pass()

    streamed_best = bare_best = float("inf")
    for round_index in range(_ROUNDS):
        streamed_best = min(streamed_best, telemetry_pass(round_index + 1))
        bare_best = min(bare_best, one_pass())

    overhead = streamed_best / bare_best - 1.0
    print(
        f"\ninline inject loop ({_INJECT_POINTS} injections x ~{_INJECT_CYCLES} "
        f"cycles): streamed {streamed_best * 1e3:.2f}ms, "
        f"bare {bare_best * 1e3:.2f}ms, overhead {100 * overhead:+.2f}%"
    )
    assert overhead < _MAX_OVERHEAD, (
        f"telemetry overhead {100 * overhead:.1f}% exceeds "
        f"{100 * _MAX_OVERHEAD:.0f}% on the inline injection loop"
    )


def test_disabled_span_is_cheap():
    """A disabled span must cost well under a microsecond."""
    obs.set_enabled(False)
    try:
        iterations = 100_000
        start = time.perf_counter()
        for _ in range(iterations):
            with obs.span("noop"):
                pass
        per_span = (time.perf_counter() - start) / iterations
    finally:
        obs.set_enabled(True)
    assert per_span < 5e-6, f"disabled span costs {per_span * 1e9:.0f}ns"
