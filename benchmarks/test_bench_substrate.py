"""Substrate micro-benchmarks: simulation, synthesis, cones, paths, VCD.

Not a paper table, but the performance envelope everything else rests on —
regressions here silently blow up the headline experiments.
"""


from repro.cells import gate_masking_terms, nangate15_library
from repro.core.cone import compute_fault_cone
from repro.core.paths import enumerate_paths
from repro.cpu.avr import build_avr_core
from repro.eval import context
from repro.synth import synthesize
from repro.trace import parse_vcd, write_vcd


def test_bench_simulator_throughput(benchmark, core):
    """Cycles/second of the compiled netlist simulator (trace recording on)."""
    simulator = context.get_simulator(core)
    cycles = 500

    def run():
        return simulator.run(
            context.make_system(core, "fib"), max_cycles=cycles
        )

    result = benchmark(run)
    assert result.trace.num_cycles == cycles
    benchmark.extra_info["cycles_per_second"] = cycles / benchmark.stats.stats.mean


def test_bench_synthesis(benchmark):
    """RTL → gate-level synthesis of the AVR core."""
    netlist = benchmark(lambda: synthesize(build_avr_core()))
    assert len(netlist.gates) > 1000


def test_bench_fault_cone(benchmark, avr_netlist):
    """Single fault-cone computation on a register-file bit."""
    cone = benchmark(compute_fault_cone, avr_netlist, "rf_r7_b4")
    assert cone.num_gates > 10


def test_bench_path_enumeration(benchmark, avr_netlist):
    """Depth-8 path enumeration for one faulty wire."""
    enum = benchmark.pedantic(
        enumerate_paths, args=(avr_netlist, "sreg_b1"), rounds=3, iterations=1
    )
    assert enum.terms


def test_bench_gate_masking_library(benchmark):
    """Full gate-masking analysis of the standard-cell library."""
    lib = nangate15_library()

    def analyze():
        import itertools

        count = 0
        for cell in lib.combinational():
            for k in range(1, len(cell.inputs) + 1):
                for faulty in itertools.combinations(cell.inputs, k):
                    count += len(gate_masking_terms(cell, set(faulty)))
        return count

    total = benchmark(analyze)
    assert total > 50


def test_bench_vcd_roundtrip(benchmark):
    """VCD write+parse of a 500-cycle AVR trace slice."""
    trace = context.get_trace("avr", "fib").slice_cycles(0, 500)

    def roundtrip():
        return parse_vcd(write_vcd(trace))

    parsed = benchmark.pedantic(roundtrip, rounds=3, iterations=1)
    assert parsed == trace
