"""Benchmark + regeneration of Figure 1 (example fault cone + pruning grid)."""

import pytest

from repro.eval.figures import build_figure1


@pytest.mark.bench_table
def test_bench_figure1(benchmark):
    figure = benchmark.pedantic(build_figure1, rounds=3, iterations=1)
    text = figure.format()
    print("\n" + text)
    # Every fact stated in the paper's Sec. 3 walkthrough:
    assert "'c', 'f', 'h'" in figure.cone_report  # border wires of d
    assert "e: unmaskable" in figure.mates_report
    assert "!f & h" in figure.mates_report  # M_d = (¬f ∧ h)
    assert 0 < figure.grid.num_benign < figure.grid.size
    # The unmaskable input e keeps a fully-effective row.
    assert not any(figure.grid.is_benign("e", t) for t in range(figure.grid.num_cycles))
