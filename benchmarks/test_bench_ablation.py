"""Ablations over the heuristic parameters (paper Sec. 4 / Sec. 6.2).

Sweeps the three knobs the paper names — path-enumeration depth, maximum
terms per MATE, candidate budget — on a fixed sample of AVR wires, plus a
top-N saturation curve, and a validation experiment comparing the heuristic
MATE set against the *precise* per-flip-flop masking upper bound.
"""

import pytest

from repro.core.replay import replay_mates
from repro.core.search import SearchParameters, faulty_wires_for_dffs, find_mates
from repro.core.selection import select_top_n
from repro.core.verify import exact_masked_cycles
from repro.eval import context

SAMPLE_SIZE = 16


def _sample_wires(netlist):
    wires = list(faulty_wires_for_dffs(netlist, exclude_register_file=True).items())
    return dict(wires[:SAMPLE_SIZE])


@pytest.mark.bench_table
@pytest.mark.parametrize("depth", [2, 4, 8])
def test_bench_ablation_depth(benchmark, avr_netlist, depth):
    """Deeper path windows unlock more maskable wires (monotone trend)."""
    params = SearchParameters(depth=depth, max_candidates=10_000,
                              max_exact_checks=300)
    result = benchmark.pedantic(
        find_mates,
        args=(avr_netlist,),
        kwargs={"faulty_wires": _sample_wires(avr_netlist), "params": params},
        rounds=1,
        iterations=1,
    )
    found = sum(1 for r in result.wire_results if r.status == "found")
    print(f"\ndepth={depth}: found={found}, mates={result.num_mates}, "
          f"unmaskable={result.num_unmaskable}")
    benchmark.extra_info["found_wires"] = found


@pytest.mark.bench_table
@pytest.mark.parametrize("max_terms", [1, 2, 4])
def test_bench_ablation_max_terms(benchmark, avr_netlist, max_terms):
    """More terms per conjunction -> more (and more specific) MATEs."""
    params = SearchParameters(max_terms=max_terms, max_candidates=10_000,
                              max_exact_checks=300)
    result = benchmark.pedantic(
        find_mates,
        args=(avr_netlist,),
        kwargs={"faulty_wires": _sample_wires(avr_netlist), "params": params},
        rounds=1,
        iterations=1,
    )
    print(f"\nmax_terms={max_terms}: mates={result.num_mates}")
    benchmark.extra_info["mates"] = result.num_mates


def test_depth_monotonicity(avr_netlist):
    """The set of maskable wires grows with the depth window."""
    found = {}
    for depth in (1, 4, 8):
        params = SearchParameters(depth=depth, max_candidates=5_000,
                                  max_exact_checks=200)
        result = find_mates(
            avr_netlist, faulty_wires=_sample_wires(avr_netlist), params=params
        )
        found[depth] = {r.wire for r in result.wire_results if r.status == "found"}
    assert len(found[1]) <= len(found[4]) <= len(found[8])


@pytest.mark.bench_table
def test_bench_topn_saturation(benchmark):
    """Top-N masking saturates well before the complete set (paper: N≈50)."""
    core = "avr"
    mates = context.get_mates(core, exclude_register_file=True)
    trace = context.get_trace(core, "fib")
    fault_wires = context.get_fault_wires(core, exclude_register_file=True)
    replay = replay_mates(mates, trace, fault_wires)

    def curve():
        return {
            n: replay.masked_fraction(select_top_n(replay, n))
            for n in (1, 5, 10, 25, 50, 100, 200)
        }

    points = benchmark.pedantic(curve, rounds=1, iterations=1)
    complete = replay.masked_fraction()
    print("\ntop-N saturation (AVR, FF w/o RF, fib):")
    for n, value in points.items():
        print(f"  top-{n:<4d} {100 * value:6.2f}%  "
              f"({100 * value / complete if complete else 0:.0f}% of complete)")
    values = list(points.values())
    assert values == sorted(values)


@pytest.mark.bench_table
def test_bench_heuristic_vs_precise_upper_bound(benchmark):
    """Heuristic MATE coverage vs the exact duplicated-cone upper bound.

    The paper notes the heuristic is sufficient-but-incomplete; this
    quantifies the gap on sampled cycles of the AVR fib trace.
    """
    core = "avr"
    mates = context.get_mates(core, exclude_register_file=True)
    trace = context.get_trace(core, "fib")
    fault_map = faulty_wires_for_dffs(
        context.get_netlist(core), exclude_register_file=True
    )
    fault_wires = list(fault_map)
    replay = replay_mates(mates, trace, fault_wires)
    compiled = context.get_simulator(core).compiled
    cycles = range(0, 400, 8)  # sampled cycles

    def measure():
        heuristic = 0
        precise = 0
        import numpy as np

        for wire, dff_name in fault_map.items():
            pruned = np.unpackbits(replay.masked_vector(wire))[: trace.num_cycles]
            exact = set(exact_masked_cycles(compiled, trace, dff_name, cycles))
            for cycle in cycles:
                if pruned[cycle]:
                    heuristic += 1
                    assert cycle in exact, "unsound pruning!"
            precise += len(exact)
        return heuristic, precise

    heuristic, precise = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nheuristic-pruned points: {heuristic}, "
          f"precise upper bound: {precise} "
          f"({100 * heuristic / precise if precise else 0:.0f}% of achievable)")
    assert heuristic <= precise
