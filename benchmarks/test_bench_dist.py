"""Benchmark: distributed campaign throughput scales with injector workers.

The distributed service exists for fault tolerance, but sharding must
also pay for itself: with two injector worker *processes* on a
multi-core host, the same sampled avr-fib campaign must finish >= 1.5x
faster than with one worker. Workers are real subprocesses (the
simulation is CPU-bound Python — threads would serialize on the GIL),
driven through the same ``serve``/``worker``/``submit`` CLI the smoke
drill uses. Single-core machines skip the speedup assertion; the
one-worker throughput benchmark itself runs everywhere.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

CPUS = len(os.sched_getaffinity(0))
SAMPLES = 300
SEED = 3
TARGET = "avr-fib"

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ENV = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))


def _spawn(*args):
    return subprocess.Popen(
        [sys.executable, "-m", *map(str, args)],
        env=ENV, cwd=REPO_ROOT, start_new_session=True,
    )


def _kill(proc, signum=signal.SIGKILL):
    if proc.poll() is None:
        try:
            os.killpg(proc.pid, signum)
        except ProcessLookupError:
            pass
    proc.wait(timeout=60)


def _campaign_seconds(tmp_path, num_workers, label):
    """Wall time of one distributed campaign with ``num_workers`` injectors.

    The clock starts at ``submit --wait`` — after every worker has
    already built the target once via a small warm-up campaign — so the
    measured interval is shard execution, not synthesis or compilation.
    """
    state_dir = tmp_path / f"state-{label}"
    port_file = tmp_path / f"port-{label}"
    coordinator = _spawn(
        "repro.fi", "serve", "--host", "127.0.0.1", "--port", "0",
        "--port-file", port_file, "--state-dir", state_dir, "--no-store",
    )
    workers = []
    try:
        deadline = time.monotonic() + 60
        while not port_file.exists():
            assert time.monotonic() < deadline, "coordinator never bound"
            time.sleep(0.1)
        port = int(port_file.read_text())
        workers = [
            _spawn("repro.fi", "worker", "--connect", f"127.0.0.1:{port}")
            for _ in range(num_workers)
        ]

        def submit(name, sampled, shard_points):
            subprocess.run(
                [
                    sys.executable, "-m", "repro.fi", "submit",
                    "--connect", f"127.0.0.1:{port}",
                    "--target", TARGET, "--sampled", str(sampled),
                    "--seed", str(SEED), "--name", name,
                    "--shard-points", str(shard_points),
                    "--wait", "--poll", "0.2",
                ],
                env=ENV, cwd=REPO_ROOT, check=True, timeout=1200,
            )

        # Warm-up: one tiny shard per worker, so every worker pays its
        # synthesis + compile + golden-run cost outside the clock.
        submit("warmup", 2 * num_workers, 2)
        start = time.perf_counter()
        submit("measured", SAMPLES, 25)
        return time.perf_counter() - start
    finally:
        for proc in workers:
            _kill(proc)
        _kill(coordinator, signal.SIGTERM)


def test_bench_dist_throughput(benchmark, tmp_path):
    """One-worker distributed campaign, end to end over the wire."""
    runs = iter(range(100))

    def distributed():
        return _campaign_seconds(tmp_path, 1, f"bench-{next(runs)}")

    seconds = benchmark.pedantic(distributed, rounds=1, iterations=1)
    assert seconds > 0


@pytest.mark.skipif(
    CPUS < 2, reason=f"speedup needs >= 2 CPUs (have {CPUS})"
)
def test_bench_two_workers_beat_one(tmp_path):
    """>= 1.5x over one worker on the same sampled fault list."""
    one = _campaign_seconds(tmp_path, 1, "one")
    two = _campaign_seconds(tmp_path, 2, "two")
    speedup = one / two
    print(
        f"\n1 worker {one:.2f}s, 2 workers {two:.2f}s -> {speedup:.2f}x"
    )
    assert speedup >= 1.5, (
        f"distributed speedup only {speedup:.2f}x "
        f"({one:.2f}s with one worker, {two:.2f}s with two)"
    )
