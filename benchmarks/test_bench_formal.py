"""SAT engine vs. exhaustive enumeration as the free border grows.

Synthetic fault cones with a controllable number of free border wires:
enumeration cost doubles per wire (2^k rows), while the CDCL engine's
cost tracks the cone structure. Past ``mate_budget_bits`` (16) the
enumeration stage refuses outright — those cones only the SAT engine
decides.
"""

import pytest

from repro.cells import nangate15_library
from repro.core.mate import Mate
from repro.lint import StaticMateChecker
from repro.netlist import Netlist


def _wide_cone(width: int, maskable: bool) -> Netlist:
    """A fault on DFF output ``q`` feeding an AND chain over ``width``
    border wires into the next-state endpoint.

    ``maskable=True`` reconverges the chain with ``!x0`` — a wire inside
    the cone, so the endpoint is identically zero on both rails and no
    assignment propagates the difference (sound, but invisible to
    stage-1 pruning); otherwise all-ones on the border is a
    counterexample (refuted).
    """
    n = Netlist(f"cone{width}", nangate15_library())
    n.add_dff("s", d="d_in", q="q")
    previous = "q"
    for i in range(width):
        n.add_input(f"b{i}")
        n.add_gate(f"g{i}", "AND2", {"A": previous, "B": f"b{i}"}, f"x{i}")
        previous = f"x{i}"
    if maskable:
        n.add_gate("ginv", "INV", {"A": "x0"}, "nx0")
        n.add_gate("gmask", "AND2", {"A": previous, "B": "nx0"}, "d_in")
    else:
        n.add_gate("gbuf", "BUF", {"A": previous}, "d_in")
    return n


def _check(netlist, engine, budget=64):
    checker = StaticMateChecker(netlist, budget_bits=budget, engine=engine)
    return checker.check("q", Mate([], ["q"]))


@pytest.mark.parametrize("width", [8, 12, 14])
@pytest.mark.parametrize("engine", ["enum", "sat"])
def test_bench_refuted_cone(benchmark, width, engine):
    """Both engines refute the uncovered cone; compare their scaling."""
    netlist = _wide_cone(width, maskable=False)
    verdict = benchmark.pedantic(
        _check, args=(netlist, engine), rounds=3, iterations=1
    )
    assert verdict.status == "refuted"
    assert verdict.free_wires == width + 1  # border plus the fault wire


@pytest.mark.parametrize("width", [8, 12])
@pytest.mark.parametrize("engine", ["enum", "sat"])
def test_bench_sound_reconvergent_cone(benchmark, width, engine):
    """Soundness proofs: 2^k rows for enum, one UNSAT proof for SAT."""
    netlist = _wide_cone(width, maskable=True)
    verdict = benchmark.pedantic(
        _check, args=(netlist, engine), rounds=3, iterations=1
    )
    assert verdict.status == "sound"


@pytest.mark.parametrize("width", [18, 24])
def test_bench_sat_beyond_enumeration_budget(benchmark, width):
    """Cones past the 16-wire budget: enumeration skips, SAT decides."""
    netlist = _wide_cone(width, maskable=True)
    skipped = _check(netlist, "enum", budget=16)
    assert skipped.status == "skipped"
    assert skipped.free_wires == width + 1
    verdict = benchmark.pedantic(
        _check, args=(netlist, "sat"), rounds=3, iterations=1
    )
    assert verdict.status == "sound"
