"""Benchmark: multi-worker campaign speedup over sequential injection.

The resilient runner exists for robustness, but its worker pool must also
pay for itself: on a multi-core host, a pooled campaign over a sampled
MSP430 fault list — including per-worker spawn, synthesis, compile, and
golden run — must beat sequential ``Campaign.run_points`` by >= 1.5x.
Single-core machines (some CI shells, small containers) skip the speedup
assertion; the throughput benchmark itself runs everywhere.
"""

import os
import time

import pytest

from repro.fi import Campaign, CampaignRunner, RunnerConfig, TargetSpec, named_target

CPUS = len(os.sched_getaffinity(0))
WORKERS = min(4, CPUS)
SAMPLES = 40

MSP430 = TargetSpec(
    factory="repro.fi.targets:named_target", kwargs={"name": "msp430-fib"}
)


def _config(workers):
    return RunnerConfig(workers=workers, install_signal_handlers=False)


def test_bench_runner_throughput(benchmark, tmp_path):
    """Pooled campaign wall time (spawn + compile + inject, end to end)."""
    runner = CampaignRunner(MSP430, _config(WORKERS))
    points = runner.sample_points(SAMPLES, seed=0)

    def pooled():
        journal = tmp_path / f"bench_{time.monotonic_ns()}.jsonl"
        return runner.run(points, journal, seed=0)

    report = benchmark.pedantic(pooled, rounds=1, iterations=1)
    assert report.complete
    assert report.executed == SAMPLES


@pytest.mark.skipif(
    CPUS < 2, reason=f"speedup needs >= 2 CPUs (have {CPUS})"
)
def test_bench_parallel_speedup_over_sequential(tmp_path):
    """>= 1.5x over sequential run_points on the same sampled fault list."""
    runner = CampaignRunner(MSP430, _config(WORKERS))
    points = runner.sample_points(SAMPLES, seed=0)

    campaign = Campaign(named_target("msp430-fib"), max_cycles=50_000)
    start = time.perf_counter()
    sequential = campaign.run_points(points)
    sequential_seconds = time.perf_counter() - start

    start = time.perf_counter()
    report = runner.run(points, tmp_path / "pool.jsonl", seed=0)
    parallel_seconds = time.perf_counter() - start

    assert report.complete
    assert [
        (r.dff_name, r.cycle, r.outcome) for r in report.result.records
    ] == [(r.dff_name, r.cycle, r.outcome) for r in sequential.records]
    speedup = sequential_seconds / parallel_seconds
    print(
        f"\nsequential {sequential_seconds:.2f}s, "
        f"{WORKERS} workers {parallel_seconds:.2f}s -> {speedup:.2f}x"
    )
    assert speedup >= 1.5, (
        f"pool speedup only {speedup:.2f}x with {WORKERS} workers "
        f"({sequential_seconds:.2f}s sequential, {parallel_seconds:.2f}s pooled)"
    )
