"""Shared fixtures for the benchmark suite.

Benchmarks both *time* the pipeline stages and *print* the regenerated
tables/figures (run with ``pytest benchmarks/ --benchmark-only -s`` to see
them; the same artifacts are produced by ``python -m repro.eval all``).
Heavy artifacts (traces, MATE searches) come from the shared disk cache in
``.repro_cache/`` — the first run populates it.
"""

import pytest

from repro import obs
from repro.eval import context


@pytest.fixture(autouse=True)
def _reset_obs():
    """Per-benchmark metrics isolation (mirrors tests/conftest.py).

    Covers the cross-process telemetry writer too: a benchmark that
    enables worker-side telemetry must not leak its sink into the next.
    """
    obs.reset()
    yield
    obs.reset()
    obs.remote.reset()
    assert obs.remote._worker_writer is None


@pytest.fixture(scope="session")
def avr_netlist():
    return context.get_netlist("avr")


@pytest.fixture(scope="session")
def msp430_netlist():
    return context.get_netlist("msp430")


@pytest.fixture(scope="session", params=context.CORES)
def core(request):
    return request.param


def pytest_configure(config):
    config.addinivalue_line("markers", "bench_table: regenerates a paper table")
