"""Benchmark + regeneration of the Sec. 6.1 hardware-cost discussion.

Paper claims to verify: the average MATE has < 6 inputs and fits in 1–2
6-input LUTs, so 50–100 MATEs are negligible against the 1500–6000-LUT FI
controllers and a 150k-LUT mid-range Virtex-6.
"""

import pytest

from repro.core.replay import replay_mates
from repro.core.selection import select_top_n
from repro.eval import context
from repro.eval.hafi_cost import build_hafi_cost
from repro.hafi import estimate_mate_cost


@pytest.mark.bench_table
def test_bench_hafi_cost_report(benchmark):
    report = benchmark.pedantic(build_hafi_cost, rounds=1, iterations=1)
    text = report.format()
    print("\n" + text)
    assert "XC6VLX240T" in text


@pytest.mark.bench_table
def test_mate_hardware_cost_claims(core):
    mates = context.get_mates(core, exclude_register_file=True)
    trace = context.get_trace(core, "fib")
    fault_wires = context.get_fault_wires(core, exclude_register_file=True)
    replay = replay_mates(mates, trace, fault_wires)
    top = select_top_n(replay, 100)
    cost = estimate_mate_cost([mates[i] for i in top])

    # Sec. 6.1: a MATE needs only one or two LUTs.
    assert cost.max_luts_single_mate <= 2
    # 100 MATEs are negligible next to a 1500-LUT controller and invisible
    # on the device.
    assert cost.total_luts <= 200
    assert cost.device_utilization < 0.002
