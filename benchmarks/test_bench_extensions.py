"""Benchmarks for the extension experiments (paper Secs. 6.2/6.3 directions).

- cross-layer combination: MATEs + def-use pruning (Sec. 6.3's vision);
- multi-cycle masking headroom (Sec. 6.2: multi-clock MATEs);
- online HAFI pruning throughput.
"""

import pytest

from repro.core.multicycle import multicycle_headroom
from repro.core.replay import replay_mates
from repro.core.selection import select_top_n
from repro.eval import context
from repro.eval.combined import build_combined
from repro.hafi import simulate_online_pruning


@pytest.mark.bench_table
def test_bench_combined_cross_layer(benchmark):
    report = benchmark.pedantic(build_combined, rounds=1, iterations=1)
    print("\n" + report.format())
    for row in report.rows:
        # The union dominates each technique and never exceeds their sum.
        assert row.combined_benign >= max(row.mate_benign, row.defuse_benign)
        assert row.combined_benign <= row.mate_benign + row.defuse_benign
    # Def-use must contribute where MATEs are weak (register files).
    assert any(row.defuse_fraction > row.mate_fraction for row in report.rows)


@pytest.mark.bench_table
def test_bench_multicycle_headroom(benchmark):
    """Upper bound for k-cycle masking on sampled AVR non-RF points."""
    compiled = context.get_simulator("avr").compiled
    trace = context.get_trace("avr", "fib").slice_cycles(0, 1200)
    netlist = context.get_netlist("avr")
    dffs = sorted(netlist.non_register_file_dffs())[:24]

    headroom = benchmark.pedantic(
        multicycle_headroom,
        args=(compiled, trace, dffs),
        kwargs={"windows": (1, 2, 4, 8), "cycle_stride": 149},
        rounds=1,
        iterations=1,
    )
    print("\n" + headroom.format())
    fractions = [headroom.fraction(k) for k in (1, 2, 4, 8)]
    assert fractions == sorted(fractions)  # monotone in the window
    assert fractions[-1] >= fractions[0]


@pytest.mark.bench_table
def test_bench_online_pruning(benchmark):
    """Per-cycle online MATE evaluation inside the emulation (Fig. 1b flow)."""
    core = "msp430"
    netlist = context.get_netlist(core)
    simulator = context.get_simulator(core)
    mates = context.get_mates(core, exclude_register_file=True)
    trace = context.get_trace(core, "fib")
    fault_wires = context.get_fault_wires(core, exclude_register_file=True)
    replay = replay_mates(mates, trace, fault_wires)
    selected = [mates[i] for i in select_top_n(replay, 50)]
    cycles = 1500

    run = benchmark.pedantic(
        simulate_online_pruning,
        args=(netlist, selected, context.make_system(core, "fib"), cycles),
        kwargs={"simulator": simulator},
        rounds=1,
        iterations=1,
    )
    assert run.cycles == cycles
    assert run.fault_space.num_benign > 0
    print(
        f"\nonline pruning: {run.fault_space.num_benign} of "
        f"{run.fault_space.size} points pruned in {cycles} cycles "
        f"({100 * run.pruned_fraction:.1f}%)"
    )
