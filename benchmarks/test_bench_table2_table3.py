"""Benchmarks + regeneration of Table 2 (AVR) and Table 3 (MSP430).

Timing target: the replay + top-N selection pipeline on the full 8500-cycle
traces. The assembled tables are printed and checked for the paper's
qualitative shape:

- excluding the register file raises the masked percentage;
- the MSP430 (multi-cycle) masks more than the AVR (pipelined RISC);
- top-50 subsets come close to the complete MATE set;
- cross-trace selection transfers (within a couple of percentage points).
"""

import pytest

from repro.core.replay import replay_mates
from repro.core.selection import select_top_n
from repro.eval import context
from repro.eval.mate_performance import build_mate_performance


@pytest.mark.bench_table
def test_bench_replay(benchmark, core):
    """Replay of the complete MATE set over one 8500-cycle trace."""
    mates = context.get_mates(core, exclude_register_file=False)
    trace = context.get_trace(core, "fib")
    fault_wires = context.get_fault_wires(core, exclude_register_file=False)

    replay = benchmark.pedantic(
        replay_mates, args=(mates, trace, fault_wires), rounds=1, iterations=1
    )
    assert replay.num_cycles == context.TRACE_CYCLES
    assert replay.masked_fraction() > 0


@pytest.mark.bench_table
def test_bench_selection(benchmark, core):
    """Hit-counter rating + top-200 subsetting."""
    mates = context.get_mates(core, exclude_register_file=True)
    trace = context.get_trace(core, "fib")
    fault_wires = context.get_fault_wires(core, exclude_register_file=True)
    replay = replay_mates(mates, trace, fault_wires)

    top = benchmark.pedantic(select_top_n, args=(replay, 200), rounds=1, iterations=1)
    assert len(top) <= 200
    assert all(0 <= i < len(mates) for i in top)
    assert all(replay.trigger_counts[i] > 0 for i in top)


@pytest.mark.bench_table
@pytest.mark.parametrize("table_core", ["avr", "msp430"])
def test_bench_mate_performance_table(benchmark, table_core):
    """Assemble and print Table 2 / Table 3; verify the paper's shape."""
    table = benchmark.pedantic(
        build_mate_performance, args=(table_core,), rounds=1, iterations=1
    )
    print("\n" + table.format())

    by_set = {ff.ff_set: ff for ff in table.ff_sets}
    ff_all, ff_norf = by_set["FF"], by_set["FF w/o RF"]
    for program in context.PROGRAMS:
        # Excluding the register file raises the masked percentage.
        assert ff_norf.masked_complete[program] > ff_all.masked_complete[program]
        # Top-N is monotone and bounded by the complete set.
        previous = 0.0
        for top_n in (10, 50, 100, 200):
            value = ff_norf.masked_topn[(program, top_n, program)]
            assert value >= previous
            previous = value
        assert previous <= ff_norf.masked_complete[program] + 1e-9
        # Top-50 achieves most of the complete-set reduction (paper: "very
        # close"); require at least 60% of it.
        if ff_norf.masked_complete[program] > 0:
            ratio = (
                ff_norf.masked_topn[(program, 50, program)]
                / ff_norf.masked_complete[program]
            )
            assert ratio > 0.6, f"top-50 too weak on {program}: {ratio:.2f}"
        # Cross-trace transfer: selecting on the *other* trace still works.
        other = "conv" if program == "fib" else "fib"
        same = ff_norf.masked_topn[(program, 200, program)]
        crossed = ff_norf.masked_topn[(other, 200, program)]
        if same > 0:
            assert crossed >= 0.5 * same


@pytest.mark.bench_table
def test_msp430_masks_more_than_avr():
    """Paper Sec. 6.3: the multi-cycle MSP430 is more maskable intra-cycle."""
    avr = build_mate_performance("avr")
    msp = build_mate_performance("msp430")
    avr_norf = [f for f in avr.ff_sets if f.ff_set == "FF w/o RF"][0]
    msp_norf = [f for f in msp.ff_sets if f.ff_set == "FF w/o RF"][0]
    assert (
        msp_norf.masked_complete["fib"] > avr_norf.masked_complete["fib"]
    ), "expected MSP430 to mask more than AVR"
