#!/usr/bin/env python3
"""Online HAFI-style fault-space pruning on the MSP430 core.

Demonstrates the paper's FPGA-platform flow: the selected top-N MATE set is
"wired into" the emulated design and evaluated live, every cycle, while the
``conv()`` workload runs — no trace recording needed. Reports the shrinking
fault list and the FPGA hardware cost of the MATE set.

Run with::

    python examples/msp430_online_pruning.py [--top-n N] [--cycles N]
"""

import argparse

from repro.core.replay import replay_mates
from repro.core.search import SearchParameters, faulty_wires_for_dffs, find_mates
from repro.core.selection import select_top_n
from repro.cpu.msp430 import Msp430System, synthesize_msp430
from repro.hafi import estimate_mate_cost, simulate_online_pruning
from repro.hafi.controller import plan_campaign
from repro.programs import msp430_conv
from repro.sim import Simulator


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--top-n", type=int, default=50)
    parser.add_argument("--cycles", type=int, default=3000)
    args = parser.parse_args()

    print("synthesizing MSP430 core ...")
    netlist = synthesize_msp430()
    simulator = Simulator(netlist)

    print("searching MATEs (non-register-file flip-flops) ...")
    wires = faulty_wires_for_dffs(netlist, exclude_register_file=True)
    search = find_mates(netlist, faulty_wires=wires,
                        params=SearchParameters(max_candidates=20_000))
    mates = search.mate_set().mates()
    print(f"  {len(mates)} unique MATEs found")

    print("rating MATEs on a short exemplary trace ...")
    rating_tb = Msp430System(msp430_conv(halt=False), halt_on_cpuoff=False)
    rating = simulator.run(rating_tb, max_cycles=1500)
    assert rating.trace is not None
    replay = replay_mates(mates, rating.trace, list(wires))
    top = select_top_n(replay, args.top_n)
    selected = [mates[i] for i in top]
    print(f"  selected top-{len(selected)} MATEs")

    cost = estimate_mate_cost(selected)
    print(f"  hardware cost: {cost.format()}")

    print(f"\nrunning {args.cycles} cycles with online pruning ...")
    run = simulate_online_pruning(
        netlist,
        selected,
        Msp430System(msp430_conv(halt=False), halt_on_cpuoff=False),
        cycles=args.cycles,
        simulator=simulator,
    )
    space = run.fault_space
    print(f"  fault space  : {space.size} (ff, cycle) points")
    print(f"  pruned online: {space.num_benign} "
          f"({100 * space.benign_fraction:.1f}%)")
    print(f"  fault list   : {len(run.fault_list())} injections remain")

    plan = plan_campaign(
        fault_space_size=space.size,
        pruned_points=space.num_benign,
        workload_cycles=args.cycles,
        mate_cost=cost,
    )
    print("\ncampaign plan:")
    print(plan.format())


if __name__ == "__main__":
    main()
