#!/usr/bin/env python3
"""Quickstart: MATEs on the paper's Figure-1 example circuit.

Builds the five-gate example circuit from the paper, computes the fault
cone of input ``d``, runs the MATE search for all five fault sites, replays
an 8-cycle stimulus, and prints the pruned fault-space grid of Figure 1b.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro.core import FaultSpace, compute_fault_cone, find_mates, replay_mates
from repro.eval.example_circuit import (
    FIGURE1_FAULT_WIRES,
    figure1_netlist,
    figure1_testbench_rows,
)
from repro.sim import Simulator, TableTestbench


def main() -> None:
    netlist = figure1_netlist()
    print(f"example circuit: {netlist}")

    # --- Figure 1a: the fault cone of input d -------------------------
    cone = compute_fault_cone(netlist, "d")
    print(f"\nfault cone of 'd': wires={sorted(cone.cone_wires)}")
    print(f"  gates touched : {sorted(g.name for g in cone.cone_gates)}")
    print(f"  border wires  : {sorted(cone.border_wires)}")

    # --- MATE search ---------------------------------------------------
    search = find_mates(netlist, faulty_wires={w: w for w in FIGURE1_FAULT_WIRES})
    print("\nMATE search:")
    for result in search.wire_results:
        if result.status == "unmaskable":
            print(f"  {result.wire}: unmaskable (a path no gate can mask)")
        else:
            terms = [
                " & ".join(w if v else f"!{w}" for w, v in m.literals)
                for m in result.mates
            ]
            print(f"  {result.wire}: {', '.join(terms)}")

    # --- Figure 1b: replay a stimulus and prune the fault space --------
    rows = figure1_testbench_rows()
    trace = Simulator(netlist).run(TableTestbench(rows), max_cycles=len(rows)).trace
    mates = search.mate_set().mates()
    replay = replay_mates(mates, trace, list(FIGURE1_FAULT_WIRES))

    space = FaultSpace(list(FIGURE1_FAULT_WIRES), len(rows))
    for wire in FIGURE1_FAULT_WIRES:
        space.mark_benign_cycles(
            wire, np.unpackbits(replay.masked_vector(wire))[: len(rows)]
        )
    print("\nfault space after pruning (● inject, ○ benign):")
    print(space.render_grid())
    print(
        f"\n{space.num_benign} of {space.size} injection points pruned "
        f"({100 * space.benign_fraction:.0f}%)"
    )


if __name__ == "__main__":
    main()
