#!/usr/bin/env python3
"""Bring your own circuit: RTL DSL → synthesis → MATE analysis → validation.

Shows the full library surface on a small user-defined design (a gated
streaming accumulator): describe it in the RTL DSL, synthesize to the
standard-cell netlist, export/import structural Verilog, search MATEs, and
*prove* each one sound against exact fault simulation.

Run with::

    python examples/custom_circuit.py
"""

from repro.cells import nangate15_library
from repro.core import find_mates, verify_mate_on_trace
from repro.netlist import netlist_stats, netlist_to_verilog, parse_verilog
from repro.rtl import RtlCircuit, mux
from repro.sim import Simulator, TableTestbench
from repro.synth import synthesize


def build_design():
    """A streaming accumulator with a validity-gated output bus."""
    c = RtlCircuit("stream_acc")
    enable = c.input("enable")
    clear = c.input("clear")
    sample = c.input("sample", 8)

    acc = c.reg("acc", 12)
    count = c.reg("count", 4)

    added = (acc + sample.zext(12)).trunc(12)
    acc.next = mux(clear, mux(enable, acc, added), 0)
    count.next = mux(clear, mux(enable, count, (count + 1).trunc(4)), 0)

    ready = count.eq(15)
    c.output("total", acc & ready.replicate(12))
    c.output("ready", ready)
    return c


def main() -> None:
    circuit = build_design()
    netlist = synthesize(circuit)
    print(netlist_stats(netlist).format())

    # Round-trip through structural Verilog (what you would hand to a HAFI
    # platform's instrumentation flow).
    verilog = netlist_to_verilog(netlist)
    reparsed = parse_verilog(verilog, nangate15_library())
    print(f"\nVerilog round-trip: {len(verilog.splitlines())} lines, "
          f"{len(reparsed.gates)} gates parsed back")

    print("\nsearching MATEs for every flip-flop ...")
    search = find_mates(netlist)
    for result in search.wire_results:
        label = {"found": f"{len(result.mates)} MATE(s)"}.get(
            result.status, result.status
        )
        print(f"  {result.dff_name:10s} cone={result.cone_gates:3d} gates  {label}")

    # Validate every MATE against exact simulation on a random-ish workload.
    rows = []
    for cycle in range(64):
        rows.append({
            "enable": int(cycle % 7 != 0),
            "clear": int(cycle % 19 == 0),
            "sample": (cycle * 37) % 256,
        })
    simulator = Simulator(netlist)
    trace = simulator.run(TableTestbench(rows), max_cycles=len(rows)).trace

    mates = search.mate_set().mates()
    print(f"\nvalidating {len(mates)} unique MATEs against exact simulation ...")
    for mate in mates:
        violations = verify_mate_on_trace(simulator.compiled, trace, mate)
        assert not violations, f"unsound MATE {mate}: {violations}"
    print("all MATEs sound ✓")

    triggered = sum(
        1 for mate in mates
        if any(mate.holds(trace.cycle_values(c)) for c in range(len(rows)))
    )
    print(f"{triggered} of {len(mates)} MATEs triggered on this workload")


if __name__ == "__main__":
    main()
