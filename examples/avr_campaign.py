#!/usr/bin/env python3
"""A full MATE-accelerated fault-injection campaign on the AVR core.

Pipeline (the paper's intended use):

1. synthesize the AVR core and run the MATE search for its flip-flops;
2. record an execution trace of the ``fib()`` workload;
3. replay the MATEs to prune the (flip-flop × cycle) fault space;
4. inject SEUs — but only at the *remaining* points — and classify them;
5. verify the safety claim: sampled *pruned* points are all benign.

Run with::

    python examples/avr_campaign.py [--samples N]
"""

import argparse

from repro.core import FaultSpace, replay_mates
from repro.core.search import SearchParameters, faulty_wires_for_dffs, find_mates
from repro.cpu.avr import AvrSystem, synthesize_avr
from repro.fi import Campaign, Outcome, avr_target
from repro.programs import avr_fib
from repro.sim import Simulator

import numpy as np


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--samples", type=int, default=60,
                        help="injections to run from the pruned fault list")
    args = parser.parse_args()

    print("synthesizing AVR core ...")
    netlist = synthesize_avr()
    simulator = Simulator(netlist)

    print("searching MATEs (non-register-file flip-flops) ...")
    wires = faulty_wires_for_dffs(netlist, exclude_register_file=True)
    search = find_mates(netlist, faulty_wires=wires,
                        params=SearchParameters(max_candidates=20_000))
    mates = search.mate_set().mates()
    print(f"  {len(mates)} unique MATEs over {search.num_faulty_wires} wires "
          f"({search.num_unmaskable} unmaskable)")

    print("recording golden fib() trace ...")
    target = avr_target("fib", simulator)
    campaign = Campaign(target)
    tb = AvrSystem(avr_fib(halt=True), halt_on_sleep=True)
    golden = simulator.run(tb, max_cycles=2000)
    assert golden.trace is not None

    print("replaying MATEs over the trace ...")
    replay = replay_mates(mates, golden.trace, list(wires))
    dff_names = [wires[w] for w in wires]
    space = FaultSpace(dff_names, golden.trace.num_cycles)
    for wire, dff_name in wires.items():
        packed = replay.masked_vector(wire)
        space.mark_benign_cycles(
            dff_name, np.unpackbits(packed)[: golden.trace.num_cycles]
        )
    print(f"  fault space: {space.size} points, "
          f"{space.num_benign} pruned ({100 * space.benign_fraction:.1f}%)")

    print(f"\ninjecting {args.samples} SEUs from the remaining fault list ...")
    result, saved = campaign.run_pruned(space, num_samples=args.samples, seed=7)
    print(f"  {result.summary()}")
    print(f"  experiments saved by pruning: {saved}")

    print("\nverifying pruned points are benign (sampled) ...")
    import random

    rng = random.Random(11)
    benign_points = [
        (name, cycle)
        for name in dff_names
        for cycle in range(min(campaign.golden_cycles, space.num_cycles))
        if space.is_benign(name, cycle)
    ]
    sample = rng.sample(benign_points, min(20, len(benign_points)))
    check = campaign.run_points(sample)
    assert check.count(Outcome.BENIGN) == check.num_injections, (
        "a pruned point was not benign!"
    )
    print(f"  all {check.num_injections} sampled pruned points confirmed benign ✓")


if __name__ == "__main__":
    main()
