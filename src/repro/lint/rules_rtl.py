"""RTL- and synthesis-layer lint rules.

The RTL rules re-derive structural facts about a word-level
:class:`~repro.rtl.circuit.RtlCircuit` — expression widths, signal liveness,
register update paths — instead of trusting the widths cached on the
expression objects, so they catch trees corrupted after construction as well
as designs that were never finalized. The synth rule cross-checks the RTL
port map against the synthesized netlist: every observable word-level bit
(primary outputs and architectural registers) must survive lowering.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import LintConfig, LintTarget, rule
from repro.rtl.circuit import Reg, RtlCircuit
from repro.rtl.expr import (
    Add,
    BinOp,
    Cat,
    Const,
    Eq,
    Expr,
    InputExpr,
    Mux,
    Not,
    Reduce,
    Slice,
    Sub,
)
from repro.synth.lower import bit_name

# ----------------------------------------------------------------------
# expression walking
# ----------------------------------------------------------------------


def _children(expr: Expr) -> tuple[Expr, ...]:
    """Sub-expressions of one node (leaves return an empty tuple)."""
    if isinstance(expr, (Const, InputExpr, Reg)):
        return ()
    if isinstance(expr, Not):
        return (expr.operand,)
    if isinstance(expr, BinOp):
        return (expr.lhs, expr.rhs)
    if isinstance(expr, Mux):
        return (expr.sel, expr.if0, expr.if1)
    if isinstance(expr, Cat):
        return expr.parts
    if isinstance(expr, Slice):
        return (expr.operand,)
    if isinstance(expr, (Add, Sub)):
        extra = expr.carry_in if isinstance(expr, Add) else expr.borrow_in
        return (expr.lhs, expr.rhs) if extra is None else (expr.lhs, expr.rhs, extra)
    if isinstance(expr, Eq):
        return (expr.lhs, expr.rhs)
    if isinstance(expr, Reduce):
        return (expr.operand,)
    raise TypeError(f"unknown RTL expression node {type(expr).__name__}")


def _iter_nodes(roots: list[Expr]) -> Iterator[Expr]:
    """Every distinct node reachable from the roots (iterative, id-deduped)."""
    seen: set[int] = set()
    stack = list(roots)
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        stack.extend(_children(node))


def _root_exprs(circuit: RtlCircuit) -> dict[str, Expr]:
    """All expression roots: outputs plus assigned register next-values."""
    roots: dict[str, Expr] = {}
    for name, expr in circuit.outputs.items():
        roots[f"output {name}"] = expr
    for name, reg in circuit.regs.items():
        if reg.has_next:
            roots[f"reg {name}.next"] = reg.next
    return roots


def _leaf_signals(root: Expr) -> set[str]:
    """Names of inputs and registers read anywhere under ``root``."""
    leaves: set[str] = set()
    for node in _iter_nodes([root]):
        if isinstance(node, (InputExpr, Reg)):
            leaves.add(node.name)
    return leaves


def _check_node_width(expr: Expr) -> str | None:
    """Recompute the node's width from its children; describe any mismatch."""
    if isinstance(expr, (Const, InputExpr, Reg)):
        return None if expr.width > 0 else f"declared width {expr.width} <= 0"
    if isinstance(expr, Not):
        expected = expr.operand.width
    elif isinstance(expr, BinOp):
        if expr.lhs.width != expr.rhs.width:
            return (
                f"{expr.kind}: operand widths differ "
                f"({expr.lhs.width} vs {expr.rhs.width})"
            )
        expected = expr.lhs.width
    elif isinstance(expr, Mux):
        if expr.sel.width != 1:
            return f"mux select has width {expr.sel.width}, expected 1"
        if expr.if0.width != expr.if1.width:
            return f"mux arms differ ({expr.if0.width} vs {expr.if1.width})"
        expected = expr.if0.width
    elif isinstance(expr, Cat):
        expected = sum(p.width for p in expr.parts)
    elif isinstance(expr, Slice):
        if not 0 <= expr.start < expr.stop <= expr.operand.width:
            return (
                f"slice [{expr.start}:{expr.stop}] out of range for "
                f"operand width {expr.operand.width}"
            )
        expected = expr.stop - expr.start
    elif isinstance(expr, (Add, Sub)):
        if expr.lhs.width != expr.rhs.width:
            return (
                f"arith operand widths differ "
                f"({expr.lhs.width} vs {expr.rhs.width})"
            )
        extra = expr.carry_in if isinstance(expr, Add) else expr.borrow_in
        if extra is not None and extra.width != 1:
            return f"carry/borrow input has width {extra.width}, expected 1"
        expected = expr.lhs.width + 1
    elif isinstance(expr, Eq):
        if expr.lhs.width != expr.rhs.width:
            return f"eq operand widths differ ({expr.lhs.width} vs {expr.rhs.width})"
        expected = 1
    elif isinstance(expr, Reduce):
        expected = 1
    else:  # pragma: no cover - _children already rejects unknown nodes
        return None
    if expr.width != expected:
        return (
            f"{type(expr).__name__} annotated width {expr.width}, "
            f"recomputed {expected}"
        )
    return None


def _loc(circuit: RtlCircuit, where: str) -> str:
    return f"{circuit.name}:{where}"


# ----------------------------------------------------------------------
# rules
# ----------------------------------------------------------------------


@rule(
    id="rtl.width-mismatch",
    layer="rtl",
    severity=Severity.ERROR,
    summary="expression width annotation disagrees with its operands",
    requires=("circuit",),
)
def check_width_mismatch(
    target: LintTarget, config: LintConfig
) -> Iterator[Diagnostic]:
    circuit = target.circuit
    assert circuit is not None
    rule_def = _self("rtl.width-mismatch")
    for root_name, root in _root_exprs(circuit).items():
        reported = 0
        for node in _iter_nodes([root]):
            problem = _check_node_width(node)
            if problem is None:
                continue
            yield rule_def.diagnostic(
                _loc(circuit, root_name),
                f"{root_name}: {problem}",
                hint="widths are fixed at construction; this tree was corrupted",
            )
            reported += 1
            if reported >= 5:  # one root rarely needs more evidence
                break
    # Declared output widths must match the driving expression.
    for name, expr in circuit.outputs.items():
        if expr.width <= 0:
            yield rule_def.diagnostic(
                _loc(circuit, f"output {name}"),
                f"output {name}: non-positive width {expr.width}",
            )
    for name, reg in circuit.regs.items():
        if reg.has_next and reg.next.width != reg.width:
            yield rule_def.diagnostic(
                _loc(circuit, f"reg {name}"),
                f"register {name}: next-value width {reg.next.width} != "
                f"declared width {reg.width}",
            )


@rule(
    id="rtl.no-next",
    layer="rtl",
    severity=Severity.ERROR,
    summary="register declared but never assigned a next value",
    requires=("circuit",),
)
def check_no_next(target: LintTarget, config: LintConfig) -> Iterator[Diagnostic]:
    circuit = target.circuit
    assert circuit is not None
    rule_def = _self("rtl.no-next")
    for name, reg in circuit.regs.items():
        if not reg.has_next:
            yield rule_def.diagnostic(
                _loc(circuit, f"reg {name}"),
                f"register {name}: no next-value assignment; the register "
                f"has no update path from reset",
                hint="assign reg.next (use a mux with the hold value if needed)",
            )


@rule(
    id="rtl.unused-signal",
    layer="rtl",
    severity=Severity.WARNING,
    summary="input or register that no output can ever observe",
    requires=("circuit",),
)
def check_unused_signal(target: LintTarget, config: LintConfig) -> Iterator[Diagnostic]:
    circuit = target.circuit
    assert circuit is not None
    rule_def = _self("rtl.unused-signal")
    # Liveness fixpoint: a signal is live when an output reads it, or when a
    # live register's next-value reads it. A register feeding only itself
    # (or a clique of dead registers) is dead state.
    next_leaves = {
        name: _leaf_signals(reg.next)
        for name, reg in circuit.regs.items()
        if reg.has_next
    }
    live: set[str] = set()
    for expr in circuit.outputs.values():
        live |= _leaf_signals(expr)
    changed = True
    while changed:
        changed = False
        for name, leaves in next_leaves.items():
            if name in live and not leaves <= live:
                live |= leaves
                changed = True
    for name in circuit.inputs:
        if name not in live:
            yield rule_def.diagnostic(
                _loc(circuit, f"input {name}"),
                f"input {name} is never observable at any output",
            )
    for name in circuit.regs:
        if name not in live:
            yield rule_def.diagnostic(
                _loc(circuit, f"reg {name}"),
                f"register {name} is never observable at any output "
                f"(dead state)",
                hint="dead registers inflate the fault space without effect",
            )


@rule(
    id="synth.dropped-wire",
    layer="synth",
    severity=Severity.ERROR,
    summary="synthesis silently dropped an observable word-level bit",
    requires=("circuit", "netlist"),
)
def check_dropped_wire(target: LintTarget, config: LintConfig) -> Iterator[Diagnostic]:
    circuit = target.circuit
    netlist = target.netlist
    assert circuit is not None and netlist is not None
    rule_def = _self("synth.dropped-wire")
    outputs = set(netlist.outputs)
    for name, expr in circuit.outputs.items():
        missing = [
            bit_name(name, i, expr.width)
            for i in range(expr.width)
            if bit_name(name, i, expr.width) not in outputs
        ]
        if missing:
            yield rule_def.diagnostic(
                f"{netlist.name}:output {name}",
                f"output {name}: {len(missing)}/{expr.width} bits missing "
                f"from netlist ports (e.g. {missing[:4]})",
                hint="the netlist no longer exposes this observable signal",
            )
    q_wires = {dff.q for dff in netlist.dffs.values()}
    for name, reg in circuit.regs.items():
        missing = [
            bit_name(name, i, reg.width)
            for i in range(reg.width)
            if bit_name(name, i, reg.width) not in q_wires
        ]
        if missing:
            yield rule_def.diagnostic(
                f"{netlist.name}:reg {name}",
                f"register {name}: {len(missing)}/{reg.width} state bits have "
                f"no flip-flop in the netlist (e.g. {missing[:4]})",
                hint="faults in dropped state bits can never be injected",
            )


def _self(rule_id: str):
    """The registered rule object for a rule defined in this module."""
    from repro.lint.registry import default_registry

    return default_registry().get(rule_id)
