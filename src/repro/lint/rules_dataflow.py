"""Audit rules for the static dataflow pruning layer (``dataflow.*``).

The same playbook as ``prune.*``, one abstraction level up: the happy path
costs zero simulations (`dataflow.claim-invalid` re-derives *every*
:class:`repro.prune.StaticClaim` with the independent per-path CFG
checker), and `dataflow.dead-refuted` spends a sampled injection budget to
refute the layer outright — each sampled statically-dead (DFF, cycle)
point is actually injected and must come back benign.

All rules require the ``dataflow`` facet — a
:class:`repro.prune.DataflowAudit` attached via ``LintTarget.for_dataflow``
(CLI: ``repro.lint <core> --audit-dataflow``).
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import LintConfig, LintTarget, rule


def _self(rule_id: str):
    from repro.lint.registry import default_registry

    return default_registry().get(rule_id)


def _sample(population: list, count: int, rng: random.Random) -> list:
    if len(population) <= count:
        return list(population)
    return rng.sample(population, count)


@rule(
    id="dataflow.claim-invalid",
    layer="dataflow",
    severity=Severity.ERROR,
    summary="static liveness certificate fails independent re-derivation",
    requires=("dataflow",),
    tags=("dataflow", "audit"),
)
def check_static_claims(
    target: LintTarget, config: LintConfig
) -> Iterator[Diagnostic]:
    """Re-derive every static claim with the per-path CFG checker.

    Zero simulations: the checker walks all paths from the claimed point
    demanding a claimed-writer kill before any read, terminal, or
    kill-free loop — sharing no machinery with the worklist solver that
    produced the claim. Every claim is checked (the program CFGs are tiny
    next to a trace).
    """
    from repro.prune import verify_static_claim

    rule_def = _self("dataflow.claim-invalid")
    audit = target.dataflow
    cfg = audit.cfg
    for claim in audit.map.claims:
        for problem in verify_static_claim(cfg, claim):
            yield rule_def.diagnostic(
                location=f"{target.name}:r{claim.register}@{claim.point:#x}",
                message=problem,
                hint="the liveness fixpoint and the per-path checker "
                "disagree — distrust the static layer until the decoder "
                "and CFG edges are reconciled",
            )


@rule(
    id="dataflow.dead-refuted",
    layer="dataflow",
    severity=Severity.ERROR,
    summary="a statically-dead (DFF, cycle) point is not benign",
    requires=("dataflow",),
    tags=("dataflow", "audit", "ground-truth"),
)
def check_static_dead_points(
    target: LintTarget, config: LintConfig
) -> Iterator[Diagnostic]:
    """Ground-truth injections at sampled statically-dead points.

    Samples (register, cycle) cells from the anchored dead map, expands
    each to a random bit of that register's flip-flops, injects for real,
    and demands a benign outcome — a single non-benign result refutes the
    whole static argument for that claim.
    """
    from repro.fi.classify import Outcome

    rule_def = _self("dataflow.dead-refuted")
    audit = target.dataflow
    static_map = audit.map
    rng = random.Random(config.dataflow_seed)
    cells = [
        (register, int(cycle))
        for register in static_map.registers()
        for cycle in static_map.dead_cycles(register).nonzero()[0]
    ]
    for register, cycle in _sample(cells, config.dataflow_samples, rng):
        bit = rng.randrange(static_map.register_width)
        dff = f"rf_r{register}_b{bit}"
        outcome = audit.campaign().inject(dff, cycle)
        if outcome is not Outcome.BENIGN:
            claim = static_map.claim_at(dff, cycle)
            described = claim.describe() if claim else f"r{register}"
            yield rule_def.diagnostic(
                location=f"{target.name}:{dff}@{cycle}",
                message=(
                    f"static claim {described} proves every path kills "
                    f"r{register} before a read, but injecting "
                    f"({dff}, {cycle}) yields {outcome.value}"
                ),
                hint="counterexample to the all-paths-kill argument — a "
                "read, edge, or anchor the decoder missed lets this bit "
                "escape",
            )
