"""Formal-engine-backed cross-layer rules.

Both rules here lean on the :mod:`repro.formal` SAT engine:

- ``synth.not-equivalent`` re-synthesizes the RTL with every bit-graph
  optimization disabled and proves the optimized netlist combinationally
  equivalent to that reference — a miscompiled optimizer rewrite is
  reported with a concrete distinguishing input/state assignment.
- ``mate.missed-coverage`` takes the fault wires the MATE search gave up
  on (``no_mate``) and decides *exactly* whether any single-cycle masking
  condition over the cone border exists; a maskable wire means the search
  missed coverage the hardware could in principle have.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import LintConfig, LintTarget, rule


@rule(
    id="synth.not-equivalent",
    layer="synth",
    severity=Severity.ERROR,
    summary="optimized netlist is not equivalent to the unoptimized RTL",
    requires=("circuit", "netlist"),
)
def check_synth_equivalence(
    target: LintTarget, config: LintConfig
) -> Iterator[Diagnostic]:
    circuit = target.circuit
    netlist = target.netlist
    assert circuit is not None and netlist is not None
    from repro.synth import verify_synthesis

    rule_def = _self("synth.not-equivalent")
    try:
        result = verify_synthesis(circuit, netlist)
    except ValueError as error:
        yield rule_def.diagnostic(
            f"{netlist.name}:interface",
            f"equivalence check impossible: {error}",
            hint="the netlist port/state interface diverged from the RTL",
        )
        return
    if result.equivalent:
        return
    yield rule_def.diagnostic(
        f"{netlist.name}:{','.join(result.failing_endpoints[:3]) or '?'}",
        f"optimizer miscompile: {result.describe()}",
        hint="the optimized and unoptimized netlists compute different "
        "functions; the distinguishing assignment reproduces it",
    )


@rule(
    id="mate.missed-coverage",
    layer="mate",
    severity=Severity.INFO,
    summary="search found no MATE but a masking condition provably exists",
    requires=("netlist", "unmatched"),
)
def check_missed_coverage(
    target: LintTarget, config: LintConfig
) -> Iterator[Diagnostic]:
    netlist = target.netlist
    assert netlist is not None
    from repro.core.coverage import exact_maskability

    rule_def = _self("mate.missed-coverage")
    for wire in target.unmatched:
        verdict = exact_maskability(
            netlist, wire, max_conflicts=config.coverage_max_conflicts
        )
        if not verdict.is_maskable:
            continue
        yield rule_def.diagnostic(
            f"{target.name}:coverage@{wire}",
            f"fault wire {wire} is maskable but uncovered: "
            f"{verdict.describe(config.counterexample_wires)}",
            hint="the greedy candidate generation missed a valid trigger "
            "term; the witness is one",
        )


def _self(rule_id: str):
    """The registered rule object for a rule defined in this module."""
    from repro.lint.registry import default_registry

    return default_registry().get(rule_id)
