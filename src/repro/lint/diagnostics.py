"""Diagnostics data model of the static-analysis layer.

A :class:`Diagnostic` is one finding: a stable rule id, a severity, the
layer the rule reasons about (``netlist``/``rtl``/``synth``/``mate``), a
human-readable location, the message, and an optional fix hint. Findings are
collected into a :class:`LintReport`, which knows severity counts and the
process exit code the CLI should produce.

Every diagnostic has a stable :meth:`~Diagnostic.fingerprint` derived from
(rule, location, message); baseline suppression files store fingerprints so
known findings can be acknowledged without silencing the rule.
"""

from __future__ import annotations

import enum
import hashlib
from collections import Counter
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """Finding severity; ``ERROR`` makes the lint run fail."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Numeric rank, highest = most severe (for sorting)."""
        return {"error": 3, "warning": 2, "info": 1}[self.value]

    @classmethod
    def parse(cls, text: str) -> "Severity":
        """Parse a severity name (case-insensitive)."""
        try:
            return cls(text.lower())
        except ValueError:
            raise ValueError(
                f"unknown severity {text!r} (expected error/warning/info)"
            ) from None

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding."""

    rule: str
    severity: Severity
    layer: str
    location: str
    message: str
    hint: str = ""

    def fingerprint(self) -> str:
        """Stable id of this finding, used by baseline suppression files."""
        blob = f"{self.rule}|{self.location}|{self.message}"
        return hashlib.sha256(blob.encode()).hexdigest()[:12]

    def to_dict(self) -> dict[str, str]:
        """JSON-ready representation (reporters and ``--format json``)."""
        doc = {
            "rule": self.rule,
            "severity": self.severity.value,
            "layer": self.layer,
            "location": self.location,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }
        if self.hint:
            doc["hint"] = self.hint
        return doc

    def __str__(self) -> str:
        return f"{self.severity}: [{self.rule}] {self.location}: {self.message}"


def _sort_key(diagnostic: Diagnostic) -> tuple:
    return (-diagnostic.severity.rank, diagnostic.rule, diagnostic.location,
            diagnostic.message)


@dataclass
class LintReport:
    """All findings of one lint run over one target."""

    target: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Findings dropped because their fingerprint is in the baseline file.
    suppressed: int = 0
    #: Rule ids that were skipped because the target lacks a required facet.
    skipped_rules: list[str] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        """Append one finding."""
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        """Append several findings."""
        self.diagnostics.extend(diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.sorted())

    def __len__(self) -> int:
        return len(self.diagnostics)

    def sorted(self) -> list[Diagnostic]:
        """Findings ordered most-severe-first, then by rule and location."""
        return sorted(self.diagnostics, key=_sort_key)

    def count(self, severity: Severity) -> int:
        """Number of findings at one severity."""
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def num_errors(self) -> int:
        return self.count(Severity.ERROR)

    @property
    def num_warnings(self) -> int:
        return self.count(Severity.WARNING)

    @property
    def num_infos(self) -> int:
        return self.count(Severity.INFO)

    @property
    def has_errors(self) -> bool:
        """True when the CLI must exit nonzero."""
        return self.num_errors > 0

    def by_rule(self) -> dict[str, int]:
        """Finding counts per rule id."""
        return dict(Counter(d.rule for d in self.diagnostics))

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        """All findings at one severity, sorted."""
        return [d for d in self.sorted() if d.severity is severity]

    def fingerprints(self) -> list[str]:
        """Fingerprints of all findings (baseline-file content)."""
        return sorted(d.fingerprint() for d in self.diagnostics)

    def to_dict(self) -> dict:
        """JSON-ready representation of the whole report."""
        return {
            "target": self.target,
            "summary": {
                "errors": self.num_errors,
                "warnings": self.num_warnings,
                "infos": self.num_infos,
                "suppressed": self.suppressed,
            },
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }

    def __repr__(self) -> str:
        return (
            f"LintReport({self.target!r}: {self.num_errors} errors, "
            f"{self.num_warnings} warnings, {self.num_infos} infos, "
            f"{self.suppressed} suppressed)"
        )
