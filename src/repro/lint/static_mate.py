"""Static MATE soundness checker (the cross-layer headline rule).

A MATE claims: *whenever its literal conjunction holds, an SEU on the
covered fault wire is masked within the current clock cycle*. The dynamic
path (:mod:`repro.core.verify`) checks this by simulating flipped states;
this module proves or refutes it **without any trace or simulation**, by
reasoning over the fault cone alone:

- **Stage 0 — implication closure.** Propagate the (non-cone) literals
  through the :class:`~repro.core.implication.ImplicationEngine` with the
  cone tainted. Every derived fact holds in the golden *and* the faulty
  circuit: non-cone wires carry equal values in both, and tainted wires are
  only learned forward (output forced irrespective of all unknown pins).
  An unsatisfiable term masks vacuously.
- **Stage 1 — difference propagation.** Walk the cone gates in topological
  order tracking which wires can still carry a golden/faulty difference.
  A gate output is *clean* when the closure forces it, or when the cell
  function cofactored by all closure-known pins is independent of every
  difference-carrying pin. This strictly subsumes the gate-masking
  conditions the search proves, so every search-produced MATE is confirmed
  here without enumeration.
- **Stage 2 — exhaustive border enumeration.** If difference-carrying
  endpoints remain, back-slice their cone support, assign every free
  border/fault wire a bit-parallel truth-table column (one big integer with
  ``2**k`` rows), evaluate golden and faulty columns through the slice, and
  OR the endpoint XORs. A nonzero row is a **concrete counterexample**
  assignment; zero rows prove soundness exhaustively. The stage is capped
  by ``mate_budget_bits`` free wires and reports *skipped* beyond it.
- **Stage 2' — SAT decision (``engine="sat"``).** The same slice is
  instead compiled to CNF with the dual-rail
  :class:`~repro.formal.encode.DualConeEncoder` and handed to the
  :mod:`repro.formal` CDCL solver: one satisfiability query asks whether
  *any* free-border assignment satisfying the cone-internal literals
  drives a golden/faulty difference into an endpoint. UNSAT is an
  unbounded soundness proof (no budget, so ``skipped`` is unreachable);
  SAT yields a model that is decoded into a concrete counterexample and
  re-validated by evaluating the slice with the cell truth tables.

The verdict is relative to the border cut — free border wires range over
all values, the same criterion the search itself proves — so *sound* here
implies *masked* on every reachable state (the property the dynamic ground
truth samples).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.cells.functions import BoolFunc
from repro.core.cone import FaultCone, compute_fault_cone
from repro.core.implication import ImplicationEngine
from repro.core.mate import Mate
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import LintConfig, LintTarget, rule
from repro.netlist.netlist import CONST0, CONST1, Gate, Netlist
from repro.obs import counter, histogram

#: Verdict statuses.
SOUND = "sound"
REFUTED = "refuted"
SKIPPED = "skipped"
VACUOUS = "vacuous"


@dataclass(frozen=True)
class StaticMateVerdict:
    """Outcome of statically checking one MATE against one fault wire."""

    fault_wire: str
    literals: tuple[tuple[str, int], ...]
    #: ``sound`` / ``refuted`` / ``skipped`` / ``vacuous``.
    status: str
    #: Which stage decided: ``endpoint``, ``closure``, ``propagation``,
    #: or ``enumeration``.
    method: str
    #: Free variables the enumeration stage would have to (or did) cover.
    free_wires: int = 0
    #: Rows exhaustively enumerated (``2**free_wires`` when enumerating).
    assignments: int = 0
    #: Golden values of the free wires exhibiting a propagated difference.
    counterexample: tuple[tuple[str, int], ...] | None = None
    #: Endpoints where golden and faulty values diverge (refutations).
    diff_endpoints: tuple[str, ...] = ()

    @property
    def is_sound(self) -> bool:
        """True when the MATE is proven (vacuous counts as proven)."""
        return self.status in (SOUND, VACUOUS)

    def describe(self, max_wires: int = 12) -> str:
        """One-line human summary (used by the lint diagnostics)."""
        if self.status == REFUTED:
            shown = list(self.counterexample or ())[:max_wires]
            assignment = ", ".join(f"{w}={v}" for w, v in shown)
            if self.counterexample and len(self.counterexample) > max_wires:
                assignment += ", …"
            where = ",".join(self.diff_endpoints[:3]) or "?"
            return (
                f"refuted ({self.method}): difference reaches {where} "
                f"under {{{assignment or 'any state'}}}"
            )
        if self.status == SKIPPED:
            return (
                f"skipped: {self.free_wires} free border wires exceed the "
                f"enumeration budget"
            )
        if self.status == VACUOUS:
            return "vacuously sound: the masking term is unsatisfiable"
        return f"sound ({self.method}, {self.assignments} assignments checked)"


def _eval_columns(
    function: BoolFunc, inputs: dict[str, int], mask: int
) -> int:
    """Evaluate a cell function over bit-parallel value columns.

    Each input pin maps to an integer whose bit ``r`` is the pin's value in
    enumeration row ``r``; the result follows the same convention.
    """
    result = 0
    num_pins = len(function.pins)
    for row in range(1 << num_pins):
        if not (function.table >> row) & 1:
            continue
        term = mask
        for j, pin in enumerate(function.pins):
            column = inputs[pin]
            term &= column if (row >> j) & 1 else ~column & mask
            if not term:
                break
        result |= term
    return result


#: A back-slice of the fault cone: the gates feeding the live endpoints
#: plus the base-wire partition both decision procedures share.
@dataclass(frozen=True)
class _Slice:
    fault_wire: str
    gates: tuple[Gate, ...]
    #: Unconstrained base wires (the free border support).
    free: tuple[str, ...]
    #: Closure-forced base wires and their values.
    fixed: tuple[tuple[str, int], ...]
    #: Base wires flipped by the SEU.
    fault_vars: tuple[str, ...]


class StaticMateChecker:
    """Proves MATE soundness per fault wire, purely statically.

    ``engine`` selects the stage-2 decision procedure: ``"enum"``
    (bit-parallel exhaustive enumeration, capped by ``budget_bits``) or
    ``"sat"`` (CDCL proof via :mod:`repro.formal`, unbounded).
    """

    def __init__(
        self,
        netlist: Netlist,
        implications: ImplicationEngine | None = None,
        budget_bits: int = 16,
        engine: str = "enum",
    ) -> None:
        if engine not in ("enum", "sat"):
            raise ValueError(f"unknown MATE engine {engine!r}")
        self.netlist = netlist
        self.implications = implications or ImplicationEngine(netlist)
        self.budget_bits = budget_bits
        self.engine = engine
        self._cones: dict[str, FaultCone] = {}

    # ------------------------------------------------------------------
    def check(self, fault_wire: str, mate: Mate) -> StaticMateVerdict:
        """Statically verify that ``mate`` masks an SEU on ``fault_wire``."""
        counter("lint.mate.checked").inc()
        verdict = self._check(fault_wire, mate)
        counter(f"lint.mate.{verdict.status}").inc()
        if verdict.free_wires:
            histogram("lint.mate.free_wires").observe(verdict.free_wires)
        return verdict

    def check_all(
        self, pairs: Iterable[tuple[str, Mate]]
    ) -> list[StaticMateVerdict]:
        """Check a ``(fault wire, mate)`` stream; one verdict per pair."""
        return [self.check(wire, mate) for wire, mate in pairs]

    # ------------------------------------------------------------------
    def _cone(self, fault_wire: str) -> FaultCone:
        cone = self._cones.get(fault_wire)
        if cone is None:
            cone = compute_fault_cone(self.netlist, fault_wire)
            self._cones[fault_wire] = cone
        return cone

    def _check(self, fault_wire: str, mate: Mate) -> StaticMateVerdict:
        cone = self._cone(fault_wire)
        if cone.fault_wire_is_endpoint:
            # The flipped wire itself crosses the cycle boundary; no term
            # over other wires can ever mask it.
            return StaticMateVerdict(
                fault_wire=fault_wire,
                literals=mate.literals,
                status=REFUTED,
                method="endpoint",
                counterexample=mate.literals,
                diff_endpoints=tuple(sorted(cone.fault_wires & cone.endpoint_wires)),
            )

        # Literals on cone wires constrain only the *golden* circuit (their
        # faulty values may differ); they must not seed the closure and are
        # applied as row filters during enumeration instead.
        seed = {w: v for w, v in mate.literals if w not in cone.cone_wires}
        golden_only = tuple(
            (w, v) for w, v in mate.literals if w in cone.cone_wires
        )
        closure = self.implications.propagate(
            seed, tainted=frozenset(cone.cone_wires)
        )
        if closure is None:
            return StaticMateVerdict(
                fault_wire=fault_wire,
                literals=mate.literals,
                status=VACUOUS,
                method="closure",
            )

        live = self._propagate_difference(cone, closure)
        live_endpoints = sorted(live & cone.endpoint_wires)
        if not live_endpoints:
            return StaticMateVerdict(
                fault_wire=fault_wire,
                literals=mate.literals,
                status=SOUND,
                method="propagation",
            )
        cut = self._slice(cone, closure, golden_only, live_endpoints)
        if self.engine == "sat":
            return self._sat_decide(cut, golden_only, live_endpoints, mate)
        return self._enumerate(cut, golden_only, live_endpoints, mate)

    # ------------------------------------------------------------------
    def _propagate_difference(
        self, cone: FaultCone, closure: dict[str, int]
    ) -> set[str]:
        """Stage 1: wires that may still differ between golden and faulty.

        The closure holds in both circuits (see module docstring), so a
        known non-faulted pin value may be substituted before asking
        whether the cell output can see any difference-carrying pin.
        """
        live: set[str] = set(cone.fault_wires)
        for gate in cone.cone_gates:
            live_pins = [
                pin for pin, wire in gate.inputs.items() if wire in live
            ]
            if not live_pins:
                continue  # every mistrusted input was already proven clean
            if gate.output in closure:
                continue  # forward-forced in both circuits
            function = self.netlist.library[gate.cell].function
            assert function is not None
            restricted = function
            for pin, wire in gate.inputs.items():
                if wire in live:
                    continue
                value = self._known_value(wire, closure)
                if value is not None:
                    restricted = restricted.cofactor(pin, value)
            if restricted.is_independent_of(live_pins):
                continue
            live.add(gate.output)
        return live

    @staticmethod
    def _known_value(wire: str, closure: dict[str, int]) -> int | None:
        if wire == CONST0:
            return 0
        if wire == CONST1:
            return 1
        return closure.get(wire)

    # ------------------------------------------------------------------
    def _slice(
        self,
        cone: FaultCone,
        closure: dict[str, int],
        golden_only: tuple[tuple[str, int], ...],
        live_endpoints: list[str],
    ) -> _Slice:
        """Back-slice the cone to what stage 2 must actually decide.

        Keeps the gates feeding a live endpoint or a golden-only
        constrained wire, stopping at closure-forced wires, and splits the
        base wires (read but not driven inside the slice) into free /
        fixed / fault-site sets.
        """
        needed: set[str] = set(live_endpoints)
        needed.update(w for w, _ in golden_only)
        slice_gates: list[Gate] = []
        for gate in reversed(cone.cone_gates):
            if gate.output not in needed or gate.output in closure:
                continue
            slice_gates.append(gate)
            needed.update(gate.inputs.values())
        slice_gates.reverse()
        sliced_outputs = {gate.output for gate in slice_gates}

        free: list[str] = []
        fixed: list[tuple[str, int]] = []
        fault_vars: list[str] = []
        for wire in sorted(needed):
            if wire in sliced_outputs or wire in (CONST0, CONST1):
                continue
            value = self._known_value(wire, closure)
            if wire in cone.fault_wires:
                fault_vars.append(wire)
                if value is None:
                    free.append(wire)
                else:
                    fixed.append((wire, value))
            elif value is not None:
                fixed.append((wire, value))
            else:
                free.append(wire)
        return _Slice(
            fault_wire=cone.fault_wire,
            gates=tuple(slice_gates),
            free=tuple(free),
            fixed=tuple(fixed),
            fault_vars=tuple(fault_vars),
        )

    # ------------------------------------------------------------------
    def _enumerate(
        self,
        cut: _Slice,
        golden_only: tuple[tuple[str, int], ...],
        live_endpoints: list[str],
        mate: Mate,
    ) -> StaticMateVerdict:
        """Stage 2: exhaustively enumerate the free support of the slice."""
        netlist = self.netlist
        fault_wire = cut.fault_wire
        slice_gates = cut.gates
        free = list(cut.free)
        fixed = dict(cut.fixed)
        fault_vars = cut.fault_vars

        if len(free) > self.budget_bits:
            return StaticMateVerdict(
                fault_wire=fault_wire,
                literals=mate.literals,
                status=SKIPPED,
                method="enumeration",
                free_wires=len(free),
            )

        rows = 1 << len(free)
        mask = (1 << rows) - 1
        golden: dict[str, int] = {CONST0: 0, CONST1: mask}
        for wire, value in fixed.items():
            golden[wire] = mask if value else 0
        for i, wire in enumerate(free):
            # Bit r of the column is (r >> i) & 1: the truth-table pattern.
            period, half = 1 << (i + 1), 1 << i
            chunk = ((1 << half) - 1) << half
            column = 0
            for j in range(rows // period):
                column |= chunk << (j * period)
            golden[wire] = column

        faulty = dict(golden)
        for wire in fault_vars:
            faulty[wire] = golden[wire] ^ mask  # the SEU flips the fault site

        for gate in slice_gates:
            function = netlist.library[gate.cell].function
            assert function is not None
            golden[gate.output] = _eval_columns(
                function,
                {pin: golden[wire] for pin, wire in gate.inputs.items()},
                mask,
            )
            faulty[gate.output] = _eval_columns(
                function,
                {pin: faulty[wire] for pin, wire in gate.inputs.items()},
                mask,
            )

        # Rows where the golden-only literals (cone-wire literals) hold.
        valid = mask
        for wire, value in golden_only:
            valid &= golden[wire] if value else ~golden[wire] & mask

        diff = 0
        diff_where: list[str] = []
        for endpoint in live_endpoints:
            endpoint_diff = (golden[endpoint] ^ faulty[endpoint]) & valid
            if endpoint_diff:
                diff_where.append(endpoint)
            diff |= endpoint_diff

        if not diff:
            if not valid:
                # No golden state satisfies the full term at all.
                return StaticMateVerdict(
                    fault_wire=fault_wire,
                    literals=mate.literals,
                    status=VACUOUS,
                    method="enumeration",
                    free_wires=len(free),
                    assignments=rows,
                )
            return StaticMateVerdict(
                fault_wire=fault_wire,
                literals=mate.literals,
                status=SOUND,
                method="enumeration",
                free_wires=len(free),
                assignments=rows,
            )

        row = (diff & -diff).bit_length() - 1  # lowest differing row
        witness = tuple(
            (wire, (row >> i) & 1) for i, wire in enumerate(free)
        ) + tuple(sorted(fixed.items()))
        return StaticMateVerdict(
            fault_wire=fault_wire,
            literals=mate.literals,
            status=REFUTED,
            method="enumeration",
            free_wires=len(free),
            assignments=rows,
            counterexample=tuple(sorted(witness)),
            diff_endpoints=tuple(diff_where),
        )

    # ------------------------------------------------------------------
    def _sat_decide(
        self,
        cut: _Slice,
        golden_only: tuple[tuple[str, int], ...],
        live_endpoints: list[str],
        mate: Mate,
    ) -> StaticMateVerdict:
        """Stage 2': decide the slice with the CDCL solver (no budget).

        Two incremental queries on one CNF: first *can the golden-only
        literals hold at all* (UNSAT ⇒ vacuous), then — after adding the
        endpoint-difference disjunction — *can a difference escape*
        (UNSAT ⇒ sound, SAT ⇒ refuted with a model-derived, re-validated
        counterexample).
        """
        from repro.formal import CnfBuilder, DualConeEncoder

        fault_wire = cut.fault_wire
        builder = CnfBuilder()
        encoder = DualConeEncoder(self.netlist, builder)
        for wire in cut.fault_vars:
            encoder.inject_fault(wire)
        for wire, value in cut.fixed:
            encoder.fix(wire, value)
        encoder.encode_gates(cut.gates)
        for wire, value in golden_only:
            encoder.fix(wire, value)

        if golden_only and builder.solver.solve() is False:
            return StaticMateVerdict(
                fault_wire=fault_wire,
                literals=mate.literals,
                status=VACUOUS,
                method="sat",
                free_wires=len(cut.free),
            )

        escape = [
            lit
            for lit in (encoder.diff_lit(w) for w in live_endpoints)
            if lit is not None
        ]
        if escape:
            builder.add(*escape)
        outcome = builder.solver.solve() if escape else False
        if outcome is False:
            return StaticMateVerdict(
                fault_wire=fault_wire,
                literals=mate.literals,
                status=SOUND,
                method="sat",
                free_wires=len(cut.free),
            )

        solver = builder.solver
        witness: list[tuple[str, int]] = list(cut.fixed)
        for wire in cut.free:
            lit = encoder.golden_lit(wire)
            value = solver.model_value(abs(lit))
            witness.append((wire, value ^ 1 if lit < 0 else value))
        counterexample = tuple(sorted(witness))
        diff_where = self.verify_counterexample(
            cut, golden_only, live_endpoints, counterexample
        )
        if not diff_where:
            raise RuntimeError(
                f"SAT model for {fault_wire} does not reproduce a "
                f"difference at any live endpoint"
            )
        return StaticMateVerdict(
            fault_wire=fault_wire,
            literals=mate.literals,
            status=REFUTED,
            method="sat",
            free_wires=len(cut.free),
            counterexample=counterexample,
            diff_endpoints=diff_where,
        )

    # ------------------------------------------------------------------
    def verify_counterexample(
        self,
        cut: _Slice,
        golden_only: tuple[tuple[str, int], ...],
        live_endpoints: list[str],
        assignment: tuple[tuple[str, int], ...],
    ) -> tuple[str, ...]:
        """Replay *assignment* through the slice with the cell truth tables.

        Returns the live endpoints where golden and faulty diverge while
        every golden-only literal holds — empty when the assignment is
        *not* a valid counterexample. Used both to re-validate SAT models
        and by tests to cross-check enumeration witnesses.
        """
        golden: dict[str, int] = {CONST0: 0, CONST1: 1}
        golden.update(assignment)
        faulty = dict(golden)
        for wire in cut.fault_vars:
            faulty[wire] = golden[wire] ^ 1
        library = self.netlist.library
        for gate in cut.gates:
            function = library[gate.cell].function
            assert function is not None
            golden[gate.output] = function.evaluate(
                {pin: golden[wire] for pin, wire in gate.inputs.items()}
            )
            faulty[gate.output] = function.evaluate(
                {pin: faulty[wire] for pin, wire in gate.inputs.items()}
            )
        if any(golden[wire] != value for wire, value in golden_only):
            return ()
        return tuple(
            w for w in live_endpoints if golden[w] != faulty[w]
        )


# ----------------------------------------------------------------------
# search-audit convenience
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MateAudit:
    """Aggregate result of statically auditing a MATE collection."""

    checked: int
    sound: int
    refuted: int
    skipped: int
    vacuous: int
    refutations: tuple[StaticMateVerdict, ...] = ()

    @property
    def all_sound(self) -> bool:
        """True when no MATE was refuted (skipped ones are undecided)."""
        return self.refuted == 0

    def to_dict(self) -> dict:
        return {
            "checked": self.checked,
            "sound": self.sound,
            "refuted": self.refuted,
            "skipped": self.skipped,
            "vacuous": self.vacuous,
        }


def audit_mates(
    netlist: Netlist,
    pairs: Iterable[tuple[str, Mate]],
    implications: ImplicationEngine | None = None,
    budget_bits: int = 16,
    engine: str = "enum",
) -> MateAudit:
    """Audit ``(fault wire, mate)`` pairs; used by the post-search hook."""
    checker = StaticMateChecker(
        netlist,
        implications=implications,
        budget_bits=budget_bits,
        engine=engine,
    )
    verdicts = checker.check_all(pairs)
    by_status = {status: 0 for status in (SOUND, REFUTED, SKIPPED, VACUOUS)}
    for verdict in verdicts:
        by_status[verdict.status] += 1
    return MateAudit(
        checked=len(verdicts),
        sound=by_status[SOUND],
        refuted=by_status[REFUTED],
        skipped=by_status[SKIPPED],
        vacuous=by_status[VACUOUS],
        refutations=tuple(v for v in verdicts if v.status == REFUTED),
    )


# ----------------------------------------------------------------------
# lint rules over the ``mates`` facet
# ----------------------------------------------------------------------


def _verdicts_for(
    target: LintTarget, config: LintConfig
) -> list[StaticMateVerdict]:
    """Run the checker once per target; the mate.* rules share the result.

    The cache key must identify the *whole* checker configuration — keying
    on the budget alone would alias ``engine="enum"`` and ``engine="sat"``
    runs of the same target and serve stale verdicts.
    """
    key = (config.mate_engine, config.mate_budget_bits)
    cache = getattr(target, "_mate_verdicts", None)
    if cache is not None and cache[0] == key:
        return cache[1]
    assert target.netlist is not None
    checker = StaticMateChecker(
        target.netlist,
        budget_bits=config.mate_budget_bits,
        engine=config.mate_engine,
    )
    verdicts = checker.check_all(target.mates)
    target._mate_verdicts = (key, verdicts)  # type: ignore[attr-defined]
    return verdicts


def _mate_location(target: LintTarget, verdict: StaticMateVerdict) -> str:
    term = " & ".join(
        wire if value else f"!{wire}" for wire, value in verdict.literals
    )
    return f"{target.name}:mate[{term or 'true'}]@{verdict.fault_wire}"


@rule(
    id="mate.unsound",
    layer="mate",
    severity=Severity.ERROR,
    summary="MATE fails the static soundness proof (counterexample found)",
    requires=("netlist", "mates"),
)
def check_mate_unsound(target: LintTarget, config: LintConfig) -> Iterator[Diagnostic]:
    rule_def = _self("mate.unsound")
    for verdict in _verdicts_for(target, config):
        if verdict.status != REFUTED:
            continue
        yield rule_def.diagnostic(
            _mate_location(target, verdict),
            f"MATE does not mask fault wire {verdict.fault_wire}: "
            f"{verdict.describe(config.counterexample_wires)}",
            hint="the term admits a state where the flip reaches an endpoint",
        )


@rule(
    id="mate.budget-exceeded",
    layer="mate",
    severity=Severity.INFO,
    summary="MATE proof skipped: free border support exceeds the budget",
    requires=("netlist", "mates"),
)
def check_mate_budget(target: LintTarget, config: LintConfig) -> Iterator[Diagnostic]:
    rule_def = _self("mate.budget-exceeded")
    for verdict in _verdicts_for(target, config):
        if verdict.status != SKIPPED:
            continue
        yield rule_def.diagnostic(
            _mate_location(target, verdict),
            f"static proof skipped for fault wire {verdict.fault_wire}: "
            f"{verdict.free_wires} free border wires > budget "
            f"{config.mate_budget_bits}",
            hint="raise --mate-budget to enumerate larger cones",
        )


@rule(
    id="mate.vacuous",
    layer="mate",
    severity=Severity.INFO,
    summary="MATE term is unsatisfiable (masks only vacuously)",
    requires=("netlist", "mates"),
)
def check_mate_vacuous(target: LintTarget, config: LintConfig) -> Iterator[Diagnostic]:
    rule_def = _self("mate.vacuous")
    for verdict in _verdicts_for(target, config):
        if verdict.status != VACUOUS:
            continue
        yield rule_def.diagnostic(
            _mate_location(target, verdict),
            f"MATE for fault wire {verdict.fault_wire} is vacuous: "
            f"its literal conjunction can never hold",
            hint="a trigger that never fires wastes hardware checker slots",
        )


def _self(rule_id: str):
    """The registered rule object for a rule defined in this module."""
    from repro.lint.registry import default_registry

    return default_registry().get(rule_id)
