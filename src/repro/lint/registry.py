"""Rule registry and lint targets.

A :class:`LintRule` couples a stable id with the layer it reasons about, a
default severity, the target facets it needs (``netlist``, ``circuit``,
``mates``), and a check function ``check(target, config) -> iterable of
Diagnostic``. Rules register themselves into the process-global registry via
the :func:`rule` decorator at import time; :func:`default_registry` imports
all built-in rule modules and returns that registry.

A :class:`LintTarget` bundles whatever artifacts are available for one
design — the gate-level netlist, the word-level RTL circuit it came from,
and discovered MATEs — so cross-layer rules can correlate them. Rules whose
required facets are missing are skipped (and recorded on the report).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.lint.diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.core.mate import Mate
    from repro.core.search import SearchResult
    from repro.netlist.netlist import Netlist
    from repro.rtl.circuit import RtlCircuit


@dataclass(frozen=True)
class LintConfig:
    """Tunable knobs shared by all rules."""

    #: Budget for the static MATE checker's exhaustive stage: the check is
    #: skipped (``info``) when more than this many free variables survive
    #: the implication closure and the difference-propagation pruning.
    mate_budget_bits: int = 16
    #: Stage-2 decision procedure for the static MATE checker: ``"enum"``
    #: (budget-capped enumeration) or ``"sat"`` (unbounded CDCL proof).
    mate_engine: str = "enum"
    #: Maximum literals printed per MATE counterexample before eliding.
    counterexample_wires: int = 12
    #: Conflict cap per exact-coverage SAT query (``None`` = unbounded).
    coverage_max_conflicts: int | None = None
    #: Interval claims the ``prune.*`` ground-truth rules sample per kind
    #: (dead intervals, equivalence pairs); each sampled claim costs one or
    #: two real injections.
    prune_samples: int = 12
    #: Interval certificates the zero-simulation checker re-derives.
    prune_cert_samples: int = 24
    #: Cycles re-derived per sampled certificate (ends always included).
    prune_cert_cycles: int = 4
    #: RNG seed for all ``prune.*`` sampling.
    prune_seed: int = 0
    #: Statically-dead (register, cycle) points the ``dataflow.dead-refuted``
    #: ground-truth rule injects per target; the ``dataflow.claim-invalid``
    #: re-derivation checks *every* claim (it costs zero simulations).
    dataflow_samples: int = 12
    #: RNG seed for ``dataflow.*`` sampling.
    dataflow_seed: int = 0


@dataclass
class LintTarget:
    """The artifacts one lint run reasons about."""

    name: str
    netlist: "Netlist | None" = None
    circuit: "RtlCircuit | None" = None
    #: ``(fault_wire, mate)`` pairs to audit with the static MATE checker.
    mates: tuple[tuple[str, "Mate"], ...] = ()
    #: Fault wires the search left uncovered (``no_mate``); the exact
    #: coverage rule decides whether a masking condition exists at all.
    unmatched: tuple[str, ...] = ()
    #: Def-use pruning audit bundle (:class:`repro.prune.PruneAudit`):
    #: equivalence map, golden trace/reads, and a lazy ground-truth
    #: campaign for the ``prune.*`` rules.
    prune: "object | None" = None
    #: Static dataflow audit bundle (:class:`repro.prune.DataflowAudit`):
    #: program CFG, static prune map, and a lazy ground-truth campaign for
    #: the ``dataflow.*`` rules.
    dataflow: "object | None" = None

    @classmethod
    def for_netlist(cls, netlist: "Netlist", name: str | None = None) -> "LintTarget":
        """Target holding only a gate-level netlist."""
        return cls(name=name or netlist.name, netlist=netlist)

    @classmethod
    def for_circuit(
        cls,
        circuit: "RtlCircuit",
        netlist: "Netlist | None" = None,
        name: str | None = None,
    ) -> "LintTarget":
        """Target holding an RTL circuit (plus its synthesized netlist, if
        available, which enables the cross-layer synth rules)."""
        return cls(name=name or circuit.name, circuit=circuit, netlist=netlist)

    @classmethod
    def for_mates(
        cls,
        netlist: "Netlist",
        mates: Iterable["Mate"],
        name: str | None = None,
    ) -> "LintTarget":
        """Target auditing a MATE collection against its netlist.

        Each MATE is checked once per fault wire it covers.
        """
        pairs = tuple(
            (wire, mate) for mate in mates for wire in sorted(mate.fault_wires)
        )
        return cls(name=name or netlist.name, netlist=netlist, mates=pairs)

    @classmethod
    def for_search(
        cls,
        netlist: "Netlist",
        search: "SearchResult",
        name: str | None = None,
    ) -> "LintTarget":
        """Target auditing every MATE a search produced, per fault wire."""
        pairs = tuple(
            (result.wire, mate)
            for result in search.wire_results
            for mate in result.mates
        )
        unmatched = tuple(
            result.wire
            for result in search.wire_results
            if result.status == "no_mate"
        )
        return cls(
            name=name or search.netlist_name,
            netlist=netlist,
            mates=pairs,
            unmatched=unmatched,
        )

    @classmethod
    def for_prune(
        cls,
        audit: "object",
        netlist: "Netlist | None" = None,
        name: str | None = None,
    ) -> "LintTarget":
        """Target auditing a def-use equivalence map against ground truth."""
        target_name = name or getattr(audit, "target_name", "prune")
        return cls(name=target_name, netlist=netlist, prune=audit)

    @classmethod
    def for_dataflow(
        cls,
        audit: "object",
        netlist: "Netlist | None" = None,
        name: str | None = None,
    ) -> "LintTarget":
        """Target auditing a static dataflow map against ground truth."""
        target_name = name or getattr(audit, "target_name", "dataflow")
        return cls(name=target_name, netlist=netlist, dataflow=audit)

    def facets(self) -> frozenset[str]:
        """Which facets this target can offer to rules."""
        present = set()
        if self.netlist is not None:
            present.add("netlist")
        if self.circuit is not None:
            present.add("circuit")
        if self.mates:
            present.add("mates")
        if self.unmatched:
            present.add("unmatched")
        if self.prune is not None:
            present.add("prune")
        if self.dataflow is not None:
            present.add("dataflow")
        return frozenset(present)


CheckFunction = Callable[[LintTarget, LintConfig], Iterable[Diagnostic]]


@dataclass(frozen=True)
class LintRule:
    """One registered static-analysis rule."""

    id: str
    layer: str
    severity: Severity
    summary: str
    requires: tuple[str, ...]
    check: CheckFunction
    #: Free-form grouping labels; ``validate`` marks the structural rules
    #: the legacy :func:`repro.netlist.validate.validate_netlist` runs.
    tags: frozenset[str] = field(default_factory=frozenset)

    def applicable(self, target: LintTarget) -> bool:
        """True when the target offers every facet this rule needs."""
        return set(self.requires) <= target.facets()

    def diagnostic(
        self,
        location: str,
        message: str,
        hint: str = "",
        severity: Severity | None = None,
    ) -> Diagnostic:
        """Build a finding attributed to this rule."""
        return Diagnostic(
            rule=self.id,
            severity=severity or self.severity,
            layer=self.layer,
            location=location,
            message=message,
            hint=hint,
        )


class RuleRegistry:
    """An ordered, id-indexed collection of lint rules."""

    def __init__(self) -> None:
        self._rules: dict[str, LintRule] = {}

    def register(self, rule: LintRule) -> LintRule:
        """Add a rule; duplicate ids are rejected."""
        if rule.id in self._rules:
            raise ValueError(f"duplicate lint rule id {rule.id!r}")
        self._rules[rule.id] = rule
        return rule

    def __iter__(self) -> Iterator[LintRule]:
        return iter(self._rules.values())

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def get(self, rule_id: str) -> LintRule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError(
                f"unknown lint rule {rule_id!r} (known: {sorted(self._rules)})"
            ) from None

    def ids(self) -> list[str]:
        """All registered rule ids, in registration order."""
        return list(self._rules)

    def expand(self, patterns: Iterable[str]) -> list[str]:
        """Expand ids and ``fnmatch`` globs to concrete rule ids, in order.

        Exact ids pass through; a pattern containing ``*``/``?``/``[`` is
        matched against every registered id. Unknown ids and globs that
        match nothing both raise, so typos fail loudly instead of silently
        skipping a rule.
        """
        from fnmatch import fnmatchcase

        expanded: list[str] = []
        for pattern in patterns:
            if any(ch in pattern for ch in "*?["):
                matched = [
                    rule_id
                    for rule_id in self._rules
                    if fnmatchcase(rule_id, pattern)
                ]
                if not matched:
                    raise KeyError(
                        f"lint rule pattern {pattern!r} matches nothing "
                        f"(known: {sorted(self._rules)})"
                    )
                expanded.extend(
                    rule_id for rule_id in matched if rule_id not in expanded
                )
            elif pattern not in self._rules:
                raise KeyError(
                    f"unknown lint rule {pattern!r} (known: {sorted(self._rules)})"
                )
            elif pattern not in expanded:
                expanded.append(pattern)
        return expanded

    def select(
        self,
        enable: Iterable[str] | None = None,
        disable: Iterable[str] = (),
        tags: Iterable[str] | None = None,
    ) -> list[LintRule]:
        """Resolve an enable/disable selection to a concrete rule list.

        ``enable=None`` means "all rules". Entries in either list may be
        exact ids or glob patterns (see :meth:`expand`); unknown ids and
        globs matching nothing raise. ``tags`` restricts the result to
        rules carrying at least one of the tags.
        """
        enabled = None if enable is None else self.expand(enable)
        banned = set(self.expand(disable))
        chosen = (
            list(self._rules.values())
            if enabled is None
            else [self._rules[rule_id] for rule_id in enabled]
        )
        chosen = [rule for rule in chosen if rule.id not in banned]
        if tags is not None:
            wanted = set(tags)
            chosen = [rule for rule in chosen if rule.tags & wanted]
        return chosen


#: Process-global registry the built-in rule modules register into.
_DEFAULT_REGISTRY = RuleRegistry()


def rule(
    id: str,  # noqa: A002 - mirrors the diagnostic field name
    layer: str,
    severity: Severity,
    summary: str,
    requires: tuple[str, ...],
    tags: Iterable[str] = (),
    registry: RuleRegistry | None = None,
) -> Callable[[CheckFunction], CheckFunction]:
    """Decorator: register ``check(target, config)`` as a lint rule."""

    def decorate(check: CheckFunction) -> CheckFunction:
        (registry or _DEFAULT_REGISTRY).register(
            LintRule(
                id=id,
                layer=layer,
                severity=severity,
                summary=summary,
                requires=requires,
                check=check,
                tags=frozenset(tags),
            )
        )
        return check

    return decorate


def default_registry() -> RuleRegistry:
    """The registry holding every built-in rule (imports rule modules)."""
    # Importing the rule modules has the side effect of registering their
    # rules; repeat imports are no-ops.
    from repro.lint import (  # noqa: F401
        rules_dataflow,
        rules_netlist,
        rules_prune,
        rules_rtl,
        rules_synth,
        static_mate,
    )

    return _DEFAULT_REGISTRY
