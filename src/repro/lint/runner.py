"""The lint runner: rule selection, execution, baseline filtering.

Instrumented through :mod:`repro.obs`: the whole run is a ``lint.run``
span, per-rule cost lands in ``lint.rule`` child spans, and every emitted
finding increments a ``lint.findings.<rule id>`` counter so campaigns can
chart findings-per-rule over time.
"""

from __future__ import annotations

from collections.abc import Iterable
from pathlib import Path

from repro.lint.baseline import load_baseline
from repro.lint.diagnostics import LintReport
from repro.lint.registry import (
    LintConfig,
    LintTarget,
    RuleRegistry,
    default_registry,
)
from repro.obs import counter, span


def run_lint(
    target: LintTarget,
    config: LintConfig | None = None,
    enable: Iterable[str] | None = None,
    disable: Iterable[str] = (),
    tags: Iterable[str] | None = None,
    baseline: str | Path | frozenset[str] | None = None,
    registry: RuleRegistry | None = None,
) -> LintReport:
    """Run the (selected) rules over one target and collect a report.

    ``enable=None`` runs every registered rule; rules whose required facets
    the target lacks are skipped and recorded on the report. ``baseline``
    accepts a fingerprint set or a baseline-file path; matching findings
    are dropped and counted as suppressed.
    """
    config = config or LintConfig()
    registry = registry or default_registry()
    rules = registry.select(enable=enable, disable=disable, tags=tags)
    if isinstance(baseline, (str, Path)):
        baseline = load_baseline(baseline)
    suppressed_fingerprints = baseline or frozenset()

    report = LintReport(target=target.name)
    with span("lint.run", target=target.name, rules=len(rules)):
        for rule in rules:
            if not rule.applicable(target):
                report.skipped_rules.append(rule.id)
                continue
            with span("lint.rule", rule=rule.id):
                findings = list(rule.check(target, config))
            for diagnostic in findings:
                if diagnostic.fingerprint() in suppressed_fingerprints:
                    report.suppressed += 1
                    continue
                counter(f"lint.findings.{diagnostic.rule}").inc()
                report.add(diagnostic)
    return report
