"""Command-line lint runner.

Usage::

    python -m repro.lint figure1                  # named example circuit
    python -m repro.lint avr --audit-mates        # core + cached MATE audit
    python -m repro.lint avr msp430 --mate-engine sat   # SAT-backed audit
    python -m repro.lint avr --audit-prune        # def-use pruning audit
    python -m repro.lint avr --audit-dataflow --rules 'dataflow.*'
    python -m repro.lint design.json              # netlist in JSON form
    python -m repro.lint design.v --format json   # structural Verilog
    python -m repro.lint avr --write-baseline lint-baseline.json
    python -m repro.lint avr --baseline lint-baseline.json
    python -m repro.lint --list-rules

Exits 1 when any error-severity finding remains after baseline
suppression, 0 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.baseline import write_baseline
from repro.lint.registry import LintConfig, LintTarget, default_registry
from repro.lint.reporters import render_json, render_text
from repro.lint.runner import run_lint

#: Designs loadable by name (the evaluation circuits).
NAMED_TARGETS = ("figure1", "avr", "msp430")


def _load_target(
    name: str, audit_mates: bool, audit_prune: bool = False,
    prune_program: str = "fib", audit_dataflow: bool = False,
) -> LintTarget:
    """Resolve a CLI target argument to a :class:`LintTarget`."""
    if name == "figure1":
        if audit_prune or audit_dataflow:
            raise ValueError(
                "--audit-prune/--audit-dataflow need a sequential design "
                "(avr, msp430); figure1 has no flip-flops"
            )
        from repro.eval.example_circuit import (
            FIGURE1_FAULT_WIRES,
            figure1_netlist,
        )

        netlist = figure1_netlist()
        if not audit_mates:
            return LintTarget.for_netlist(netlist)
        from repro.core.search import find_mates

        search = find_mates(
            netlist, faulty_wires={w: "" for w in FIGURE1_FAULT_WIRES}
        )
        return LintTarget.for_search(netlist, search)
    if name in ("avr", "msp430"):
        from repro.eval.context import get_netlist, get_search

        netlist = get_netlist(name)
        if audit_prune or audit_dataflow:
            target = LintTarget(name=f"{name}-{prune_program}", netlist=netlist)
            if audit_prune:
                from repro.prune import get_prune_audit

                target.prune = get_prune_audit(f"{name}-{prune_program}")
            if audit_dataflow:
                from repro.prune import get_dataflow_audit

                target.dataflow = get_dataflow_audit(f"{name}-{prune_program}")
            if audit_mates:
                search_target = LintTarget.for_search(
                    netlist, get_search(name, False)
                )
                target.mates = search_target.mates
                target.unmatched = search_target.unmatched
            return target
        if not audit_mates:
            return LintTarget.for_netlist(netlist)
        return LintTarget.for_search(netlist, get_search(name, False))

    path = Path(name)
    if not path.is_file():
        raise ValueError(
            f"target {name!r} is neither a named design "
            f"({', '.join(NAMED_TARGETS)}) nor an existing file"
        )
    if audit_mates:
        raise ValueError("--audit-mates requires a named design target")
    if audit_prune:
        raise ValueError("--audit-prune requires avr or msp430")
    if audit_dataflow:
        raise ValueError("--audit-dataflow requires avr or msp430")
    from repro.cells.nangate15 import nangate15_library

    text = path.read_text(encoding="utf-8")
    if path.suffix == ".json":
        from repro.netlist.json_io import netlist_from_json

        return LintTarget.for_netlist(netlist_from_json(text, nangate15_library()))
    if path.suffix == ".v":
        from repro.netlist.verilog import parse_verilog

        return LintTarget.for_netlist(parse_verilog(text, nangate15_library()))
    raise ValueError(f"unsupported netlist file type {path.suffix!r} (.json/.v)")


def _split_ids(text: str | None) -> list[str] | None:
    if text is None:
        return None
    return [item.strip() for item in text.split(",") if item.strip()]


def _rule_catalog() -> str:
    registry = default_registry()
    rows = [("RULE", "LAYER", "SEVERITY", "REQUIRES", "TAGS", "SUMMARY")]
    rows += [
        (
            rule.id,
            rule.layer,
            str(rule.severity),
            ",".join(rule.requires) or "-",
            ",".join(sorted(rule.tags)) or "-",
            rule.summary,
        )
        for rule in sorted(registry, key=lambda r: r.id)
    ]
    widths = [max(len(row[i]) for row in rows) for i in range(5)]
    return "\n".join(
        "  ".join(
            [*(f"{row[i]:<{widths[i]}}" for i in range(5)), row[5]]
        )
        for row in rows
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Cross-layer static analysis over netlists, RTL, and MATEs.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        metavar="target",
        help=f"named design ({', '.join(NAMED_TARGETS)}) or a .json/.v netlist file",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        metavar="ID[,ID...]",
        help="run only these rule ids or glob patterns, e.g. 'dataflow.*' "
        "(default: all)",
    )
    parser.add_argument(
        "--disable",
        metavar="ID[,ID...]",
        help="skip these rule ids or glob patterns",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="suppress findings fingerprinted in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="accept all current findings into a new baseline file and exit 0",
    )
    parser.add_argument(
        "--mate-budget",
        type=int,
        default=LintConfig.mate_budget_bits,
        metavar="BITS",
        help="free-wire budget of the static MATE enumeration (default: %(default)s)",
    )
    parser.add_argument(
        "--audit-mates",
        action="store_true",
        help="audit the design's (cached) MATE search with the static checker",
    )
    parser.add_argument(
        "--mate-engine",
        choices=("enum", "sat"),
        default=LintConfig.mate_engine,
        help="stage-2 MATE decision procedure: budget-capped enumeration or "
        "an unbounded SAT proof (implies --audit-mates for named designs; "
        "default: %(default)s)",
    )
    parser.add_argument(
        "--audit-prune",
        action="store_true",
        help="audit the def-use equivalence map (repro.prune) with the "
        "prune.* rules: certificate re-derivation plus sampled "
        "ground-truth injections (avr/msp430 only)",
    )
    parser.add_argument(
        "--audit-dataflow",
        action="store_true",
        help="audit the binary-level static dataflow layer "
        "(repro.prune.dataflow) with the dataflow.* rules: full "
        "certificate re-derivation plus sampled ground-truth injections "
        "(avr/msp430 only)",
    )
    parser.add_argument(
        "--prune-program",
        choices=("fib", "conv"),
        default="fib",
        help="workload for --audit-prune / --audit-dataflow "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--dataflow-samples",
        type=int,
        default=LintConfig.dataflow_samples,
        metavar="N",
        help="sampled statically-dead points injected by "
        "dataflow.dead-refuted (default: %(default)s)",
    )
    parser.add_argument(
        "--prune-samples",
        type=int,
        default=LintConfig.prune_samples,
        metavar="N",
        help="sampled claims per ground-truth prune rule (default: %(default)s)",
    )
    parser.add_argument(
        "--prune-seed",
        type=int,
        default=LintConfig.prune_seed,
        help="RNG seed for prune.* sampling (default: %(default)s)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_rule_catalog())
        return 0
    if not args.targets:
        parser.error("a target is required (or use --list-rules)")
    if args.write_baseline and len(args.targets) > 1:
        parser.error("--write-baseline accepts a single target")

    config = LintConfig(
        mate_budget_bits=args.mate_budget,
        mate_engine=args.mate_engine,
        prune_samples=args.prune_samples,
        prune_seed=args.prune_seed,
        dataflow_samples=args.dataflow_samples,
    )
    reports = []
    for name in args.targets:
        # The SAT engine only matters when MATEs are audited; asking for it
        # on a named design implies the audit.
        audit = args.audit_mates or (
            args.mate_engine == "sat" and name in NAMED_TARGETS
        )
        try:
            target = _load_target(
                name, audit,
                audit_prune=args.audit_prune,
                prune_program=args.prune_program,
                audit_dataflow=args.audit_dataflow,
            )
            reports.append(
                run_lint(
                    target,
                    config=config,
                    enable=_split_ids(args.rules),
                    disable=_split_ids(args.disable) or (),
                    baseline=args.baseline,
                )
            )
        except (ValueError, KeyError, OSError) as error:
            print(f"repro-lint: {error}", file=sys.stderr)
            return 2

    if args.write_baseline:
        count = write_baseline(args.write_baseline, reports[0])
        print(f"baseline: accepted {count} finding(s) into {args.write_baseline}")
        return 0

    for i, report in enumerate(reports):
        if args.format == "json":
            print(render_json(report))
        else:
            if len(reports) > 1:
                if i:
                    print()
                print(f"== {args.targets[i]} ==")
            print(render_text(report))
    return 1 if any(report.has_errors for report in reports) else 0


if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:  # e.g. `... --list-rules | head`
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    sys.exit(code)
