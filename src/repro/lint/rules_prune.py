"""Audit rules for the def-use pruning layer (``prune.*``).

The static-MATE playbook, applied to `repro.prune`: the happy path costs
zero injection simulations (`prune.cert-invalid` re-derives sampled
certificates with the independent scalar checker), and the ground-truth
rules (`prune.dead-refuted`, `prune.equiv-refuted`) spend a *sampled*
injection budget to try to refute the analysis outright — every refutation
comes back as a concrete counterexample naming the flip-flop, cycle, and
observed outcome.

All rules require the ``prune`` facet — a :class:`repro.prune.PruneAudit`
attached via ``LintTarget.for_prune`` (CLI: ``repro.lint <core>
--audit-prune``).
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import LintConfig, LintTarget, rule


def _self(rule_id: str):
    from repro.lint.registry import default_registry

    return default_registry().get(rule_id)


def _sample(population: list, count: int, rng: random.Random) -> list:
    if len(population) <= count:
        return list(population)
    return rng.sample(population, count)


@rule(
    id="prune.cert-invalid",
    layer="prune",
    severity=Severity.ERROR,
    summary="def-use interval certificate fails independent re-derivation",
    requires=("prune",),
    tags=("prune", "audit"),
)
def check_certificates(
    target: LintTarget, config: LintConfig
) -> Iterator[Diagnostic]:
    """Re-check sampled certificates with the scalar full-netlist checker.

    Zero injection simulations: every sampled claim's structure is
    validated and a handful of its cycles (always including both ends) are
    re-derived from first principles.
    """
    from repro.prune import verify_claim

    rule_def = _self("prune.cert-invalid")
    audit = target.prune
    analysis = audit.analysis
    rng = random.Random(config.prune_seed)
    claims = _sample(list(audit.map.claims()), config.prune_cert_samples, rng)
    for claim in claims:
        cycles = {claim.start, claim.end}
        while (
            len(cycles) < min(claim.num_points, config.prune_cert_cycles)
        ):
            cycles.add(rng.randint(claim.start, claim.end))
        problems = verify_claim(
            analysis.netlist,
            analysis.trace,
            analysis.reads,
            claim,
            cycles=sorted(cycles),
        )
        for problem in problems:
            yield rule_def.diagnostic(
                location=f"{target.name}:{claim.dff}",
                message=problem,
                hint="the vectorized analysis and the scalar checker "
                "disagree — rerun with a fresh equivalence map before "
                "trusting either",
            )


@rule(
    id="prune.dead-refuted",
    layer="prune",
    severity=Severity.ERROR,
    summary="a statically-benign (dead) interval point is not benign",
    requires=("prune",),
    tags=("prune", "audit", "ground-truth"),
)
def check_dead_intervals(
    target: LintTarget, config: LintConfig
) -> Iterator[Diagnostic]:
    """Ground-truth injections at sampled points of dead intervals."""
    from repro.fi.classify import Outcome
    from repro.prune.defuse import KIND_DEAD

    rule_def = _self("prune.dead-refuted")
    audit = target.prune
    rng = random.Random(config.prune_seed + 1)
    dead = [claim for claim in audit.map.claims() if claim.kind == KIND_DEAD]
    for claim in _sample(dead, config.prune_samples, rng):
        cycle = rng.randint(claim.start, claim.end)
        outcome = audit.campaign().inject(claim.dff, cycle)
        if outcome is not Outcome.BENIGN:
            yield rule_def.diagnostic(
                location=f"{target.name}:{claim.dff}@{cycle}",
                message=(
                    f"{claim.describe()} claims every point benign, but "
                    f"injecting ({claim.dff}, {cycle}) yields "
                    f"{outcome.value}"
                ),
                hint="counterexample to the kill-reconvergence argument — "
                "the analysis missed an escape path for this bit",
            )


@rule(
    id="prune.equiv-refuted",
    layer="prune",
    severity=Severity.ERROR,
    summary="an interval member's outcome differs from its representative",
    requires=("prune",),
    tags=("prune", "audit", "ground-truth"),
)
def check_equivalence_intervals(
    target: LintTarget, config: LintConfig
) -> Iterator[Diagnostic]:
    """Ground-truth pairs: representative vs. random member per interval."""
    from repro.prune.defuse import KIND_DEAD

    rule_def = _self("prune.equiv-refuted")
    audit = target.prune
    rng = random.Random(config.prune_seed + 2)
    multi = [
        claim
        for claim in audit.map.claims()
        if claim.kind != KIND_DEAD and claim.num_points >= 2
    ]
    for claim in _sample(multi, config.prune_samples, rng):
        rep = claim.representative
        member = rng.randint(claim.start, claim.end - 1)
        rep_outcome = audit.campaign().inject(claim.dff, rep)
        member_outcome = audit.campaign().inject(claim.dff, member)
        if rep_outcome is not member_outcome:
            yield rule_def.diagnostic(
                location=f"{target.name}:{claim.dff}@{member}",
                message=(
                    f"{claim.describe()} claims ({claim.dff}, {member}) "
                    f"equivalent to its representative cycle {rep}, but "
                    f"ground truth yields {member_outcome.value} vs "
                    f"{rep_outcome.value}"
                ),
                hint="counterexample to the hold-chain argument — the "
                "flipped bit must have escaped between these cycles",
            )
