"""Report rendering: aligned text for terminals, JSON for archival."""

from __future__ import annotations

import json

from repro.lint.diagnostics import LintReport


def render_json(report: LintReport, indent: int = 2) -> str:
    """The report as a JSON document (``--format json``)."""
    return json.dumps(report.to_dict(), indent=indent, sort_keys=False)


def render_text(report: LintReport, show_hints: bool = True) -> str:
    """The report as an aligned, severity-sorted text table."""
    lines = [f"lint: {report.target}"]
    diagnostics = report.sorted()
    if diagnostics:
        severity_width = max(len(str(d.severity)) for d in diagnostics)
        rule_width = max(len(d.rule) for d in diagnostics)
        location_width = max(len(d.location) for d in diagnostics)
        for diagnostic in diagnostics:
            lines.append(
                f"{str(diagnostic.severity):<{severity_width}}  "
                f"{diagnostic.rule:<{rule_width}}  "
                f"{diagnostic.location:<{location_width}}  "
                f"{diagnostic.message}"
            )
            if show_hints and diagnostic.hint:
                pad = " " * (severity_width + rule_width + 4)
                lines.append(f"{pad}hint: {diagnostic.hint}")
    else:
        lines.append("  no findings")
    summary = (
        f"summary: {report.num_errors} error(s), "
        f"{report.num_warnings} warning(s), {report.num_infos} info(s)"
    )
    extras = []
    if report.suppressed:
        extras.append(f"{report.suppressed} suppressed by baseline")
    if report.skipped_rules:
        extras.append(f"{len(report.skipped_rules)} rule(s) not applicable")
    if extras:
        summary += f" [{'; '.join(extras)}]"
    lines.append(summary)
    return "\n".join(lines)
