"""repro.lint — cross-layer static analysis for the pruning pipeline.

The subsystem has four parts:

- a diagnostics model (:mod:`repro.lint.diagnostics`): rule id, severity,
  layer, location, message, fix hint, and stable fingerprints;
- a rule registry (:mod:`repro.lint.registry`) with per-rule
  enable/disable and facet-based applicability (netlist / RTL circuit /
  MATE collections);
- rules across three layers: netlist structure
  (:mod:`repro.lint.rules_netlist`), RTL and synthesis cross-checks
  (:mod:`repro.lint.rules_rtl`), and the static MATE soundness checker
  (:mod:`repro.lint.static_mate`) that proves masking terms without
  simulation;
- a runner (:mod:`repro.lint.runner`) with baseline suppression files and
  text/JSON reporters, exposed as ``python -m repro.lint``.

Typical library use::

    from repro import lint

    report = lint.run_lint(lint.LintTarget.for_netlist(netlist))
    if report.has_errors:
        print(lint.render_text(report))
"""

from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.registry import (
    LintConfig,
    LintRule,
    LintTarget,
    RuleRegistry,
    default_registry,
    rule,
)
from repro.lint.reporters import render_json, render_text
from repro.lint.runner import run_lint
from repro.lint.static_mate import (
    MateAudit,
    StaticMateChecker,
    StaticMateVerdict,
    audit_mates,
)

__all__ = [
    "Diagnostic",
    "LintConfig",
    "LintReport",
    "LintRule",
    "LintTarget",
    "MateAudit",
    "RuleRegistry",
    "Severity",
    "StaticMateChecker",
    "StaticMateVerdict",
    "audit_mates",
    "default_registry",
    "load_baseline",
    "render_json",
    "render_text",
    "rule",
    "run_lint",
    "write_baseline",
]
