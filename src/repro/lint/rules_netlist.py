"""Netlist-layer lint rules.

These absorb the fatal checks of :mod:`repro.netlist.validate` as non-fatal
diagnostics (the legacy ``validate_netlist`` now runs the ``validate``-tagged
subset and raises on error findings) and add structural-quality rules the
pipeline previously had no home for: combinational loops with the cycle path
printed, dead gates, constant or never-read flip-flops, logic unreachable
from any input, and cells with no masking capability at all.

All analyses here are *tolerant*: they must produce diagnostics for broken
netlists (double-driven wires, cycles) that would make the strict graph
queries of :class:`~repro.netlist.netlist.Netlist` raise.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.cells.masking import gate_masking_terms
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import LintConfig, LintTarget, rule
from repro.netlist.netlist import CONST_WIRES, Gate, Netlist

# ----------------------------------------------------------------------
# tolerant graph analyses (never raise on broken netlists)
# ----------------------------------------------------------------------


def _driver_labels(netlist: Netlist) -> dict[str, list[str]]:
    """Map wire -> descriptions of everything driving it (may be several)."""
    drivers: dict[str, list[str]] = {wire: ["const"] for wire in CONST_WIRES}
    for wire in netlist.inputs:
        drivers.setdefault(wire, []).append("primary input")
    for gate in netlist.gates.values():
        drivers.setdefault(gate.output, []).append(f"gate {gate.name}")
    for dff in netlist.dffs.values():
        drivers.setdefault(dff.q, []).append(f"DFF {dff.name}")
    return drivers


def _tolerant_topo(netlist: Netlist) -> tuple[list[Gate], list[str]]:
    """Kahn's algorithm that reports stuck gates instead of raising.

    Returns ``(placed gates in topological order, names of unplaced
    gates)``; unplaced gates sit on or behind a combinational cycle.
    """
    produced_by: dict[str, Gate] = {}
    for gate in netlist.gates.values():
        # On double-driven wires the last gate wins here; the multi-driver
        # rule reports the conflict itself.
        produced_by[gate.output] = gate
    readers: dict[str, list[Gate]] = {}
    indegree: dict[str, int] = {}
    for gate in netlist.gates.values():
        count = 0
        for wire in gate.inputs.values():
            if wire in produced_by:
                count += 1
                readers.setdefault(wire, []).append(gate)
        indegree[gate.name] = count
    ready = [g for g in netlist.gates.values() if indegree[g.name] == 0]
    order: list[Gate] = []
    while ready:
        gate = ready.pop()
        order.append(gate)
        for reader in readers.get(gate.output, ()):
            indegree[reader.name] -= 1
            if indegree[reader.name] == 0:
                ready.append(reader)
    stuck = sorted(name for name, deg in indegree.items() if deg > 0)
    return order, stuck


def _find_cycle(netlist: Netlist, stuck: list[str]) -> list[Gate]:
    """One concrete combinational cycle among the stuck gates.

    Walks gate -> (a predecessor that is itself stuck) until a gate repeats;
    the walk must close a cycle because every stuck gate has at least one
    stuck predecessor.
    """
    stuck_set = set(stuck)
    produced_by = {
        gate.output: gate
        for gate in netlist.gates.values()
        if gate.name in stuck_set
    }
    current = netlist.gates[stuck[0]]
    seen: dict[str, int] = {}
    path: list[Gate] = []
    while current.name not in seen:
        seen[current.name] = len(path)
        path.append(current)
        for wire in current.inputs.values():
            predecessor = produced_by.get(wire)
            if predecessor is not None:
                current = predecessor
                break
        else:  # pragma: no cover - stuck gates always have a stuck parent
            return path
    cycle = path[seen[current.name]:]
    cycle.reverse()  # walk went backwards through drivers
    return cycle


def _reachable_wires(netlist: Netlist) -> set[str]:
    """Forward closure from all cycle sources (inputs, DFF Qs, constants)."""
    reachable = set(netlist.sources())
    changed = True
    gates = list(netlist.gates.values())
    while changed:
        changed = False
        remaining = []
        for gate in gates:
            if all(wire in reachable for wire in gate.inputs.values()):
                reachable.add(gate.output)
                changed = True
            else:
                remaining.append(gate)
        gates = remaining
    return reachable


def _loc(netlist: Netlist, where: str) -> str:
    return f"{netlist.name}:{where}"


# ----------------------------------------------------------------------
# structural rules (the legacy validate_netlist set, tag "validate")
# ----------------------------------------------------------------------


@rule(
    id="net.unknown-cell",
    layer="netlist",
    severity=Severity.ERROR,
    summary="gate instantiates a cell the library does not define",
    requires=("netlist",),
    tags=("validate",),
)
def check_unknown_cell(target: LintTarget, config: LintConfig) -> Iterator[Diagnostic]:
    netlist = target.netlist
    assert netlist is not None
    rule_def = _self("net.unknown-cell")
    for gate in netlist.gates.values():
        if gate.cell not in netlist.library:
            yield rule_def.diagnostic(
                _loc(netlist, f"gate {gate.name}"),
                f"gate {gate.name}: unknown cell {gate.cell}",
                hint=f"add {gate.cell} to library {netlist.library.name} or remap",
            )


@rule(
    id="net.pin-mismatch",
    layer="netlist",
    severity=Severity.ERROR,
    summary="gate pin map misses required pins or names unknown pins",
    requires=("netlist",),
    tags=("validate",),
)
def check_pin_mismatch(target: LintTarget, config: LintConfig) -> Iterator[Diagnostic]:
    netlist = target.netlist
    assert netlist is not None
    rule_def = _self("net.pin-mismatch")
    for gate in netlist.gates.values():
        if gate.cell not in netlist.library:
            continue  # reported by net.unknown-cell
        cell = netlist.library[gate.cell]
        missing = sorted(set(cell.inputs) - set(gate.inputs))
        extra = sorted(set(gate.inputs) - set(cell.inputs))
        if missing:
            yield rule_def.diagnostic(
                _loc(netlist, f"gate {gate.name}"),
                f"gate {gate.name} ({gate.cell}): unconnected pins {missing}",
                hint=f"cell {gate.cell} requires pins {list(cell.inputs)}",
            )
        if extra:
            yield rule_def.diagnostic(
                _loc(netlist, f"gate {gate.name}"),
                f"gate {gate.name} ({gate.cell}): unknown pins {extra} "
                f"not in cell definition",
                hint=f"cell {gate.cell} defines pins {list(cell.inputs)}",
            )


@rule(
    id="net.multi-driven",
    layer="netlist",
    severity=Severity.ERROR,
    summary="wire driven by more than one gate/DFF/input",
    requires=("netlist",),
    tags=("validate",),
)
def check_multi_driven(target: LintTarget, config: LintConfig) -> Iterator[Diagnostic]:
    netlist = target.netlist
    assert netlist is not None
    rule_def = _self("net.multi-driven")
    for wire, labels in sorted(_driver_labels(netlist).items()):
        if len(labels) > 1:
            yield rule_def.diagnostic(
                _loc(netlist, f"wire {wire}"),
                f"wire {wire} driven more than once by {', '.join(labels)}",
                hint="every wire must have exactly one driver",
            )


@rule(
    id="net.undriven",
    layer="netlist",
    severity=Severity.ERROR,
    summary="a read wire (gate pin, DFF D, primary output) has no driver",
    requires=("netlist",),
    tags=("validate",),
)
def check_undriven(target: LintTarget, config: LintConfig) -> Iterator[Diagnostic]:
    netlist = target.netlist
    assert netlist is not None
    rule_def = _self("net.undriven")
    driven = set(_driver_labels(netlist))
    for gate in netlist.gates.values():
        for pin, wire in sorted(gate.inputs.items()):
            if wire not in driven:
                yield rule_def.diagnostic(
                    _loc(netlist, f"gate {gate.name}.{pin}"),
                    f"gate {gate.name}.{pin}: undriven wire {wire}",
                )
    for dff in netlist.dffs.values():
        if dff.d not in driven:
            yield rule_def.diagnostic(
                _loc(netlist, f"DFF {dff.name}.D"),
                f"DFF {dff.name}.D: undriven wire {dff.d}",
            )
    for wire in netlist.outputs:
        if wire not in driven:
            yield rule_def.diagnostic(
                _loc(netlist, f"output {wire}"),
                f"primary output {wire} undriven",
            )


@rule(
    id="net.input-driven",
    layer="netlist",
    severity=Severity.ERROR,
    summary="primary input also driven by internal logic",
    requires=("netlist",),
    tags=("validate",),
)
def check_input_driven(target: LintTarget, config: LintConfig) -> Iterator[Diagnostic]:
    netlist = target.netlist
    assert netlist is not None
    rule_def = _self("net.input-driven")
    for wire, labels in sorted(_driver_labels(netlist).items()):
        internal = [label for label in labels if label != "primary input"]
        if wire in netlist.inputs and internal:
            yield rule_def.diagnostic(
                _loc(netlist, f"input {wire}"),
                f"primary input {wire} also driven by {', '.join(internal)}",
            )


@rule(
    id="net.const-driven",
    layer="netlist",
    severity=Severity.ERROR,
    summary="gate or DFF drives a reserved constant wire",
    requires=("netlist",),
    tags=("validate",),
)
def check_const_driven(target: LintTarget, config: LintConfig) -> Iterator[Diagnostic]:
    netlist = target.netlist
    assert netlist is not None
    rule_def = _self("net.const-driven")
    for gate in netlist.gates.values():
        if gate.output in CONST_WIRES:
            yield rule_def.diagnostic(
                _loc(netlist, f"gate {gate.name}"),
                f"gate {gate.name} drives constant {gate.output}",
            )
    for dff in netlist.dffs.values():
        if dff.q in CONST_WIRES:
            yield rule_def.diagnostic(
                _loc(netlist, f"DFF {dff.name}"),
                f"DFF {dff.name} drives constant {dff.q}",
            )


@rule(
    id="net.comb-loop",
    layer="netlist",
    severity=Severity.ERROR,
    summary="combinational cycle through gates (cycle path reported)",
    requires=("netlist",),
    tags=("validate",),
)
def check_comb_loop(target: LintTarget, config: LintConfig) -> Iterator[Diagnostic]:
    netlist = target.netlist
    assert netlist is not None
    rule_def = _self("net.comb-loop")
    _, stuck = _tolerant_topo(netlist)
    remaining = list(stuck)
    while remaining:
        cycle = _find_cycle(netlist, remaining)
        path = " -> ".join(f"{g.name}({g.output})" for g in cycle)
        path += f" -> {cycle[0].name}"
        yield rule_def.diagnostic(
            _loc(netlist, f"gate {cycle[0].name}"),
            f"combinational cycle in netlist {netlist.name}: {path} "
            f"({len(remaining)} gates stuck behind cycles)",
            hint="break the loop with a flip-flop or remove the feedback arc",
        )
        in_cycle = {g.name for g in cycle}
        remaining = [name for name in remaining if name not in in_cycle]


# ----------------------------------------------------------------------
# quality rules (new; not part of the legacy validate set)
# ----------------------------------------------------------------------


@rule(
    id="net.dead-gate",
    layer="netlist",
    severity=Severity.WARNING,
    summary="gate output is never read and is not a cycle endpoint",
    requires=("netlist",),
    tags=("quality", "strict-validate"),
)
def check_dead_gate(target: LintTarget, config: LintConfig) -> Iterator[Diagnostic]:
    netlist = target.netlist
    assert netlist is not None
    rule_def = _self("net.dead-gate")
    read: set[str] = set()
    for gate in netlist.gates.values():
        read.update(gate.inputs.values())
    sinks = set(netlist.outputs) | netlist.dff_d_wires()
    for gate in netlist.gates.values():
        if gate.output not in read and gate.output not in sinks:
            yield rule_def.diagnostic(
                _loc(netlist, f"gate {gate.name}"),
                f"dead gate {gate.name}: dangling output {gate.output} is "
                f"never read and reaches no endpoint",
                hint="remove the gate or connect its output",
            )


@rule(
    id="net.dff-const-d",
    layer="netlist",
    severity=Severity.WARNING,
    summary="flip-flop next-state is a constant (or its own output)",
    requires=("netlist",),
    tags=("quality",),
)
def check_dff_const_d(target: LintTarget, config: LintConfig) -> Iterator[Diagnostic]:
    netlist = target.netlist
    assert netlist is not None
    rule_def = _self("net.dff-const-d")
    for dff in netlist.dffs.values():
        if dff.d in CONST_WIRES:
            yield rule_def.diagnostic(
                _loc(netlist, f"DFF {dff.name}"),
                f"DFF {dff.name}: D tied to constant {dff.d}; the register "
                f"freezes after the first cycle",
                hint="replace the flip-flop with the constant wire",
            )
        elif dff.d == dff.q:
            yield rule_def.diagnostic(
                _loc(netlist, f"DFF {dff.name}"),
                f"DFF {dff.name}: D wired to its own Q; the register can "
                f"never leave its reset value {dff.init}",
                hint="replace the flip-flop with a constant",
            )


@rule(
    id="net.dff-unread",
    layer="netlist",
    severity=Severity.WARNING,
    summary="flip-flop output is never read anywhere",
    requires=("netlist",),
    tags=("quality",),
)
def check_dff_unread(target: LintTarget, config: LintConfig) -> Iterator[Diagnostic]:
    netlist = target.netlist
    assert netlist is not None
    rule_def = _self("net.dff-unread")
    read: set[str] = set()
    for gate in netlist.gates.values():
        read.update(gate.inputs.values())
    read.update(netlist.dff_d_wires())
    read.update(netlist.outputs)
    for dff in netlist.dffs.values():
        if dff.q not in read:
            yield rule_def.diagnostic(
                _loc(netlist, f"DFF {dff.name}"),
                f"DFF {dff.name}: output {dff.q} is never read",
                hint="state that feeds nothing is dead area and fault-space noise",
            )


@rule(
    id="net.unreachable",
    layer="netlist",
    severity=Severity.WARNING,
    summary="logic not reachable from any input, flip-flop, or constant",
    requires=("netlist",),
    tags=("quality",),
)
def check_unreachable(target: LintTarget, config: LintConfig) -> Iterator[Diagnostic]:
    netlist = target.netlist
    assert netlist is not None
    rule_def = _self("net.unreachable")
    reachable = _reachable_wires(netlist)
    driven = set(_driver_labels(netlist))
    for gate in netlist.gates.values():
        if gate.output in reachable:
            continue
        if any(wire not in driven for wire in gate.inputs.values()):
            continue  # reported by net.undriven, not a reachability issue
        yield rule_def.diagnostic(
            _loc(netlist, f"gate {gate.name}"),
            f"gate {gate.name}: not reachable from any primary input, "
            f"flip-flop, or constant (fed only by cyclic logic)",
            hint="its value is undefined in a synchronous single-driver model",
        )


@rule(
    id="net.no-masking-cell",
    layer="netlist",
    severity=Severity.INFO,
    summary="cell type has no gate-masking term for any single faulty pin",
    requires=("netlist",),
    tags=("masking",),
)
def check_no_masking_cell(
    target: LintTarget, config: LintConfig
) -> Iterator[Diagnostic]:
    netlist = target.netlist
    assert netlist is not None
    rule_def = _self("net.no-masking-cell")
    instances: dict[str, int] = {}
    for gate in netlist.gates.values():
        instances[gate.cell] = instances.get(gate.cell, 0) + 1
    for cell_name in sorted(instances):
        if cell_name not in netlist.library:
            continue  # reported by net.unknown-cell
        cell = netlist.library[cell_name]
        if cell.sequential or not cell.inputs:
            continue
        if any(
            gate_masking_terms(cell, frozenset({pin})) for pin in cell.inputs
        ):
            continue
        yield rule_def.diagnostic(
            _loc(netlist, f"cell {cell_name}"),
            f"cell {cell_name} ({instances[cell_name]} instances) has no "
            f"gate-masking term for any single faulty pin; faults always "
            f"pass through it",
            hint="MATE search cannot block propagation at these gates",
        )


def _self(rule_id: str):
    """The registered rule object for a rule defined in this module."""
    from repro.lint.registry import default_registry

    return default_registry().get(rule_id)
