"""Baseline suppression files.

A baseline is a JSON file of diagnostic fingerprints that are *known and
accepted*. The runner drops findings whose fingerprint appears in the
baseline (counting them as ``suppressed``), so a legacy design can be
linted for regressions without first fixing every historical finding.
Fingerprints are content-derived (rule + location + message), so a finding
that moves or changes its message resurfaces automatically.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.diagnostics import LintReport

#: Schema version of the baseline file format.
BASELINE_VERSION = 1


def load_baseline(path: str | Path) -> frozenset[str]:
    """Read the suppressed fingerprints from a baseline file."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or "suppress" not in doc:
        raise ValueError(f"baseline file {path} is not a suppression document")
    version = doc.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"baseline file {path} has version {version!r}, "
            f"expected {BASELINE_VERSION}"
        )
    suppress = doc["suppress"]
    if not isinstance(suppress, list) or not all(
        isinstance(item, str) for item in suppress
    ):
        raise ValueError(f"baseline file {path}: 'suppress' must be a string list")
    return frozenset(suppress)


def write_baseline(path: str | Path, report: LintReport) -> int:
    """Write a baseline accepting every finding of ``report``.

    Returns the number of fingerprints written. Suppressed findings of the
    producing run are *not* re-listed — re-run without a baseline first to
    capture everything.
    """
    fingerprints = report.fingerprints()
    doc = {
        "version": BASELINE_VERSION,
        "target": report.target,
        "suppress": fingerprints,
    }
    Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return len(fingerprints)
