"""RTL circuit container: inputs, registers, outputs."""

from __future__ import annotations

from repro.rtl.expr import Const, Expr, InputExpr


class Reg(Expr):
    """A register (bank of D flip-flops) usable as an expression.

    The current-cycle value is the expression itself; the next-cycle value
    is assigned through the ``next`` property exactly once per register
    (use :func:`repro.rtl.expr.mux` chains for conditional updates).
    """

    __slots__ = ("name", "width", "init", "register_file", "_next")

    def __init__(
        self, name: str, width: int, init: int = 0, register_file: bool = False
    ) -> None:
        self.name = name
        self.width = width
        self.init = init & ((1 << width) - 1)
        self.register_file = register_file
        self._next: Expr | None = None

    @property
    def next(self) -> Expr:
        if self._next is None:
            raise ValueError(f"register {self.name} has no next-value assigned")
        return self._next

    @next.setter
    def next(self, expr: Expr | int) -> None:
        if self._next is not None:
            raise ValueError(f"register {self.name} assigned twice")
        if isinstance(expr, int):
            expr = Const(expr, self.width)
        if expr.width != self.width:
            raise ValueError(
                f"register {self.name}: next width {expr.width} != {self.width}"
            )
        self._next = expr

    @property
    def has_next(self) -> bool:
        """True once the next-cycle value has been assigned."""
        return self._next is not None

    def __repr__(self) -> str:
        return f"Reg({self.name}, w={self.width}, init={self.init:#x})"


class RtlCircuit:
    """A synchronous RTL design: named inputs, registers, and outputs."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.inputs: dict[str, InputExpr] = {}
        self.regs: dict[str, Reg] = {}
        self.outputs: dict[str, Expr] = {}

    def _check_name(self, name: str) -> None:
        if name in self.inputs or name in self.regs or name in self.outputs:
            raise ValueError(f"name {name!r} already used in circuit {self.name}")
        if not name.isidentifier():
            raise ValueError(f"signal name {name!r} is not an identifier")

    def input(self, name: str, width: int = 1) -> InputExpr:
        """Declare a primary input of the given width."""
        self._check_name(name)
        signal = InputExpr(name, width)
        self.inputs[name] = signal
        return signal

    def reg(
        self, name: str, width: int = 1, init: int = 0, register_file: bool = False
    ) -> Reg:
        """Declare a register; ``register_file=True`` tags its DFFs as RF state."""
        self._check_name(name)
        reg = Reg(name, width, init, register_file)
        self.regs[name] = reg
        return reg

    def output(self, name: str, expr: Expr | int, width: int | None = None) -> None:
        """Declare a primary output driven by ``expr``."""
        if name in self.inputs or name in self.regs or name in self.outputs:
            raise ValueError(f"name {name!r} already used in circuit {self.name}")
        if isinstance(expr, int):
            if width is None:
                raise ValueError("integer output needs an explicit width")
            expr = Const(expr, width)
        self.outputs[name] = expr

    def finalize(self) -> None:
        """Check that every register has a next-value."""
        missing = [name for name, reg in self.regs.items() if not reg.has_next]
        if missing:
            raise ValueError(
                f"circuit {self.name}: registers without next-value: {missing}"
            )

    def __repr__(self) -> str:
        return (
            f"RtlCircuit({self.name!r}: {len(self.inputs)} in, "
            f"{len(self.regs)} regs, {len(self.outputs)} out)"
        )
