"""Word-level RTL expression trees.

Expressions are immutable, width-annotated trees. Integers are coerced to
:class:`Const` where a width can be inferred from the other operand.
Comparison helpers are methods (``a.eq(b)``, ``a.lt(b)``) so that Python's
``==`` keeps its normal identity semantics for use in dicts and sets.

Arithmetic convention: ``a + b`` requires equal widths and yields
``width + 1`` bits — the MSB is the carry-out. Use ``.trunc(n)`` / slicing
to drop it. ``a - b`` likewise yields ``width + 1`` bits whose MSB is the
*carry* (i.e. NOT borrow), matching the AVR/MSP430 flag conventions.
"""

from __future__ import annotations

from collections.abc import Sequence


def _coerce(value: "Expr | int", width: int) -> "Expr":
    if isinstance(value, Expr):
        return value
    return Const(value, width)


class Expr:
    """Base class of all RTL expressions."""

    width: int

    # -- bitwise ------------------------------------------------------
    def __and__(self, other: "Expr | int") -> "Expr":
        return BinOp("and", self, _coerce(other, self.width))

    def __rand__(self, other: int) -> "Expr":
        return BinOp("and", _coerce(other, self.width), self)

    def __or__(self, other: "Expr | int") -> "Expr":
        return BinOp("or", self, _coerce(other, self.width))

    def __ror__(self, other: int) -> "Expr":
        return BinOp("or", _coerce(other, self.width), self)

    def __xor__(self, other: "Expr | int") -> "Expr":
        return BinOp("xor", self, _coerce(other, self.width))

    def __rxor__(self, other: int) -> "Expr":
        return BinOp("xor", _coerce(other, self.width), self)

    def __invert__(self) -> "Expr":
        return Not(self)

    # -- arithmetic ---------------------------------------------------
    def __add__(self, other: "Expr | int") -> "Expr":
        return Add(self, _coerce(other, self.width))

    def __sub__(self, other: "Expr | int") -> "Expr":
        return Sub(self, _coerce(other, self.width))

    def add_with_carry(self, other: "Expr | int", carry_in: "Expr") -> "Expr":
        """``self + other + carry_in``; result has ``width + 1`` bits."""
        return Add(self, _coerce(other, self.width), carry_in)

    def sub_with_borrow(self, other: "Expr | int", borrow_in: "Expr") -> "Expr":
        """``self - other - borrow_in``; MSB of the result is NOT borrow."""
        return Sub(self, _coerce(other, self.width), borrow_in)

    # -- comparisons (methods, not dunders) ----------------------------
    def eq(self, other: "Expr | int") -> "Expr":
        """Equality comparison (1 bit)."""
        return Eq(self, _coerce(other, self.width))

    def ne(self, other: "Expr | int") -> "Expr":
        """Inequality comparison (1 bit)."""
        return Not(Eq(self, _coerce(other, self.width)))

    def lt(self, other: "Expr | int") -> "Expr":
        """Unsigned less-than (1 bit)."""
        other = _coerce(other, self.width)
        return Not(Sub(self, other)[self.width])

    def ge(self, other: "Expr | int") -> "Expr":
        """Unsigned greater-or-equal (1 bit)."""
        other = _coerce(other, self.width)
        return Sub(self, other)[self.width]

    # -- structure ------------------------------------------------------
    def __getitem__(self, index: int | slice) -> "Expr":
        if isinstance(index, int):
            if index < 0:
                index += self.width
            return Slice(self, index, index + 1)
        start = index.start if index.start is not None else 0
        stop = index.stop if index.stop is not None else self.width
        if index.step is not None:
            raise ValueError("slices with step are not supported")
        return Slice(self, start, stop)

    def trunc(self, width: int) -> "Expr":
        """Keep the low ``width`` bits."""
        return Slice(self, 0, width)

    def zext(self, width: int) -> "Expr":
        """Zero-extend to ``width`` bits."""
        if width < self.width:
            raise ValueError(f"zext to {width} narrower than {self.width}")
        if width == self.width:
            return self
        return Cat(self, Const(0, width - self.width))

    def sext(self, width: int) -> "Expr":
        """Sign-extend to ``width`` bits."""
        if width < self.width:
            raise ValueError(f"sext to {width} narrower than {self.width}")
        if width == self.width:
            return self
        sign = self[self.width - 1]
        return Cat(self, *([sign] * (width - self.width)))

    def replicate(self, count: int) -> "Expr":
        """Repeat this expression ``count`` times (concatenated)."""
        return Cat(*([self] * count))

    def reduce_or(self) -> "Expr":
        """OR of all bits."""
        return Reduce("or", self)

    def reduce_and(self) -> "Expr":
        """AND of all bits."""
        return Reduce("and", self)

    def reduce_xor(self) -> "Expr":
        """Parity of all bits."""
        return Reduce("xor", self)

    def is_zero(self) -> "Expr":
        """1 when every bit is 0."""
        return Not(Reduce("or", self))

    def _require_bool(self) -> None:
        if self.width != 1:
            raise ValueError(f"expected a 1-bit expression, got width {self.width}")


class Const(Expr):
    """A constant of a given width."""

    __slots__ = ("value", "width")

    def __init__(self, value: int, width: int) -> None:
        if width <= 0:
            raise ValueError(f"constant width must be positive, got {width}")
        self.width = width
        self.value = value & ((1 << width) - 1)

    def __repr__(self) -> str:
        return f"Const({self.value:#x}, w={self.width})"


class InputExpr(Expr):
    """A primary input signal."""

    __slots__ = ("name", "width")

    def __init__(self, name: str, width: int) -> None:
        self.name = name
        self.width = width

    def __repr__(self) -> str:
        return f"Input({self.name}, w={self.width})"


class Not(Expr):
    """Bitwise complement."""

    __slots__ = ("operand", "width")

    def __init__(self, operand: Expr) -> None:
        self.operand = operand
        self.width = operand.width


class BinOp(Expr):
    """Bitwise and/or/xor over equal widths."""

    __slots__ = ("kind", "lhs", "rhs", "width")

    def __init__(self, kind: str, lhs: Expr, rhs: Expr) -> None:
        if kind not in ("and", "or", "xor"):
            raise ValueError(f"unknown binop {kind!r}")
        if lhs.width != rhs.width:
            raise ValueError(f"{kind}: width mismatch {lhs.width} vs {rhs.width}")
        self.kind = kind
        self.lhs = lhs
        self.rhs = rhs
        self.width = lhs.width


class Mux(Expr):
    """2:1 select: ``sel == 0`` yields ``if0``, ``sel == 1`` yields ``if1``."""

    __slots__ = ("sel", "if0", "if1", "width")

    def __init__(self, sel: Expr, if0: Expr, if1: Expr) -> None:
        sel._require_bool()
        if if0.width != if1.width:
            raise ValueError(f"mux arms differ: {if0.width} vs {if1.width}")
        self.sel = sel
        self.if0 = if0
        self.if1 = if1
        self.width = if0.width


class Cat(Expr):
    """Concatenation, LSB-first: ``Cat(lo, hi)``."""

    __slots__ = ("parts", "width")

    def __init__(self, *parts: Expr) -> None:
        if not parts:
            raise ValueError("Cat needs at least one part")
        self.parts = tuple(parts)
        self.width = sum(p.width for p in parts)


class Slice(Expr):
    """Bit range ``[start, stop)`` of an expression."""

    __slots__ = ("operand", "start", "stop", "width")

    def __init__(self, operand: Expr, start: int, stop: int) -> None:
        if not 0 <= start < stop <= operand.width:
            raise ValueError(
                f"slice [{start}:{stop}] out of range for width {operand.width}"
            )
        self.operand = operand
        self.start = start
        self.stop = stop
        self.width = stop - start


class Add(Expr):
    """Ripple-carry addition; result width is ``width + 1`` (MSB = carry)."""

    __slots__ = ("lhs", "rhs", "carry_in", "width")

    def __init__(self, lhs: Expr, rhs: Expr, carry_in: Expr | None = None) -> None:
        if lhs.width != rhs.width:
            raise ValueError(f"add: width mismatch {lhs.width} vs {rhs.width}")
        if carry_in is not None:
            carry_in._require_bool()
        self.lhs = lhs
        self.rhs = rhs
        self.carry_in = carry_in
        self.width = lhs.width + 1


class Sub(Expr):
    """``lhs - rhs - borrow_in``; MSB of the result is the carry (NOT borrow)."""

    __slots__ = ("lhs", "rhs", "borrow_in", "width")

    def __init__(self, lhs: Expr, rhs: Expr, borrow_in: Expr | None = None) -> None:
        if lhs.width != rhs.width:
            raise ValueError(f"sub: width mismatch {lhs.width} vs {rhs.width}")
        if borrow_in is not None:
            borrow_in._require_bool()
        self.lhs = lhs
        self.rhs = rhs
        self.borrow_in = borrow_in
        self.width = lhs.width + 1


class Eq(Expr):
    """Word equality (1-bit result)."""

    __slots__ = ("lhs", "rhs", "width")

    def __init__(self, lhs: Expr, rhs: Expr) -> None:
        if lhs.width != rhs.width:
            raise ValueError(f"eq: width mismatch {lhs.width} vs {rhs.width}")
        self.lhs = lhs
        self.rhs = rhs
        self.width = 1


class Reduce(Expr):
    """and/or/xor reduction of all bits (1-bit result)."""

    __slots__ = ("kind", "operand", "width")

    def __init__(self, kind: str, operand: Expr) -> None:
        if kind not in ("and", "or", "xor"):
            raise ValueError(f"unknown reduction {kind!r}")
        self.kind = kind
        self.operand = operand
        self.width = 1


# ----------------------------------------------------------------------
# convenience constructors
# ----------------------------------------------------------------------
def const(value: int, width: int) -> Const:
    """Shorthand constant constructor."""
    return Const(value, width)


def mux(sel: Expr, if0: Expr | int, if1: Expr | int) -> Expr:
    """2:1 mux; integer arms are coerced using the other arm's width."""
    if isinstance(if0, int) and isinstance(if1, int):
        raise ValueError("at least one mux arm must be an Expr (width unknown)")
    if isinstance(if0, int):
        assert isinstance(if1, Expr)
        if0 = Const(if0, if1.width)
    if isinstance(if1, int):
        if1 = Const(if1, if0.width)
    return Mux(sel, if0, if1)


def cat(*parts: Expr) -> Expr:
    """LSB-first concatenation."""
    return Cat(*parts)


def onehot_case(
    selectors_and_values: Sequence[tuple[Expr, Expr | int]],
    default: Expr | int,
    width: int | None = None,
) -> Expr:
    """Priority mux chain: first selector that is 1 wins, else ``default``.

    Builds the datapath idiom used all over the CPU cores: a cascade of
    2:1 muxes, lowest priority at the bottom. For *mutually exclusive*
    selectors prefer :func:`parallel_case`, which synthesizes to a shallow
    AND-OR structure (what a priority-free case statement maps to).
    """
    if width is None:
        candidates = [v for _, v in selectors_and_values if isinstance(v, Expr)]
        if isinstance(default, Expr):
            candidates.append(default)
        if not candidates:
            raise ValueError("cannot infer width: all values are ints")
        width = candidates[0].width
    result: Expr = _coerce(default, width)
    for selector, value in reversed(list(selectors_and_values)):
        result = Mux(selector, result, _coerce(value, width))
    return result


def _balanced(op, items: list[Expr]) -> Expr:
    """Balanced binary reduction tree (logarithmic logic depth)."""
    level = list(items)
    if not level:
        raise ValueError("cannot reduce zero items")
    while len(level) > 1:
        nxt = [op(level[i], level[i + 1]) for i in range(0, len(level) - 1, 2)]
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def parallel_case(
    selectors_and_values: Sequence[tuple[Expr, Expr | int]],
    default: Expr | int,
    width: int | None = None,
) -> Expr:
    """Priority-free case: ``OR of (sel_i AND value_i)`` plus the default
    when no selector fires.

    Selectors MUST be mutually exclusive (a full_case/parallel_case
    pragma in synthesis terms); two active selectors OR their values
    together. The resulting AND-OR structure is shallow — logic depth grows
    logarithmically in the number of arms instead of linearly — matching
    what an area/timing-optimizing synthesis run makes of decoded one-hot
    selects.
    """
    if width is None:
        candidates = [v for _, v in selectors_and_values if isinstance(v, Expr)]
        if isinstance(default, Expr):
            candidates.append(default)
        if not candidates:
            raise ValueError("cannot infer width: all values are ints")
        width = candidates[0].width
    terms: list[Expr] = []
    selectors: list[Expr] = []
    for selector, value in selectors_and_values:
        selector._require_bool()
        selectors.append(selector)
        gate = selector if width == 1 else selector.replicate(width)
        terms.append(gate & _coerce(value, width))
    none_active = ~_balanced(lambda a, b: a | b, selectors)
    gate = none_active if width == 1 else none_active.replicate(width)
    terms.append(gate & _coerce(default, width))
    return _balanced(lambda a, b: a | b, terms)
