"""A small word-level RTL DSL.

The two CPU cores are described with this DSL and then *synthesized*
(``repro.synth``) onto the standard-cell library, yielding the gate-level
netlists that the MATE analysis consumes — our stand-in for the paper's
Design Compiler ASIC synthesis flow.
"""

from repro.rtl.circuit import Reg, RtlCircuit
from repro.rtl.expr import (
    Cat,
    Const,
    Expr,
    InputExpr,
    Mux,
    cat,
    const,
    mux,
    onehot_case,
    parallel_case,
)
from repro.rtl.evaluate import evaluate_expr, run_circuit, step_circuit

__all__ = [
    "evaluate_expr",
    "run_circuit",
    "step_circuit",
    "Cat",
    "Const",
    "Expr",
    "InputExpr",
    "Mux",
    "Reg",
    "RtlCircuit",
    "cat",
    "const",
    "mux",
    "onehot_case",
    "parallel_case",
]
