"""Reference (interpretive) evaluator for RTL expressions.

Used as the golden model when testing synthesis: the synthesized netlist
must agree with direct expression evaluation on every stimulus.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.rtl.circuit import Reg, RtlCircuit
from repro.rtl.expr import (
    Add,
    BinOp,
    Cat,
    Const,
    Eq,
    Expr,
    InputExpr,
    Mux,
    Not,
    Reduce,
    Slice,
    Sub,
)


def evaluate_expr(expr: Expr, env: Mapping[str, int]) -> int:
    """Evaluate an expression; ``env`` maps input/register names to words."""
    mask = (1 << expr.width) - 1
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, (InputExpr, Reg)):
        return env[expr.name] & mask
    if isinstance(expr, Not):
        return ~evaluate_expr(expr.operand, env) & mask
    if isinstance(expr, BinOp):
        lhs = evaluate_expr(expr.lhs, env)
        rhs = evaluate_expr(expr.rhs, env)
        if expr.kind == "and":
            return lhs & rhs
        if expr.kind == "or":
            return lhs | rhs
        return lhs ^ rhs
    if isinstance(expr, Mux):
        sel = evaluate_expr(expr.sel, env)
        return evaluate_expr(expr.if1 if sel else expr.if0, env)
    if isinstance(expr, Cat):
        value = 0
        shift = 0
        for part in expr.parts:
            value |= evaluate_expr(part, env) << shift
            shift += part.width
        return value
    if isinstance(expr, Slice):
        inner = evaluate_expr(expr.operand, env)
        return (inner >> expr.start) & mask
    if isinstance(expr, Add):
        carry = evaluate_expr(expr.carry_in, env) if expr.carry_in is not None else 0
        return (
            evaluate_expr(expr.lhs, env) + evaluate_expr(expr.rhs, env) + carry
        ) & mask
    if isinstance(expr, Sub):
        borrow = evaluate_expr(expr.borrow_in, env) if expr.borrow_in is not None else 0
        lhs = evaluate_expr(expr.lhs, env)
        rhs = evaluate_expr(expr.rhs, env)
        # Two's-complement: a - b - bin == a + ~b + 1 - bin, in width+1 bits.
        width = expr.lhs.width
        return (lhs + ((~rhs) & ((1 << width) - 1)) + 1 - borrow) & mask
    if isinstance(expr, Eq):
        return int(
            evaluate_expr(expr.lhs, env) == evaluate_expr(expr.rhs, env)
        )
    if isinstance(expr, Reduce):
        value = evaluate_expr(expr.operand, env)
        bits = [(value >> i) & 1 for i in range(expr.operand.width)]
        if expr.kind == "and":
            result = 1
            for bit in bits:
                result &= bit
        elif expr.kind == "or":
            result = 0
            for bit in bits:
                result |= bit
        else:
            result = 0
            for bit in bits:
                result ^= bit
        return result
    raise TypeError(f"cannot evaluate {type(expr).__name__}")


def step_circuit(
    circuit: RtlCircuit, state: Mapping[str, int], inputs: Mapping[str, int]
) -> tuple[dict[str, int], dict[str, int]]:
    """One golden-model clock cycle: (next register state, output words)."""
    env: dict[str, int] = {}
    for name, signal in circuit.inputs.items():
        env[name] = inputs.get(name, 0) & ((1 << signal.width) - 1)
    for name, reg in circuit.regs.items():
        env[name] = state.get(name, reg.init) & ((1 << reg.width) - 1)
    outputs = {name: evaluate_expr(expr, env) for name, expr in circuit.outputs.items()}
    next_state = {
        name: evaluate_expr(reg.next, env) for name, reg in circuit.regs.items()
    }
    return next_state, outputs


def run_circuit(
    circuit: RtlCircuit,
    input_rows: list[Mapping[str, int]],
) -> list[dict[str, int]]:
    """Golden-model multi-cycle run; returns the output words per cycle."""
    state = {name: reg.init for name, reg in circuit.regs.items()}
    trace: list[dict[str, int]] = []
    for row in input_rows:
        state, outputs = step_circuit(circuit, state, row)
        trace.append(outputs)
    return trace
