"""Cross-layer combination experiment (paper Sec. 6.3's vision).

The paper argues for combining HAFI flip-flop-level pruning (MATEs) with
ISA-level software pruning taking over for architectural state. This
experiment quantifies exactly that on our cores:

- MATEs prune intra-cycle-masked faults (strong on pipeline/FSM state);
- def-use pruning removes register-file faults that die overwritten-unread
  (strong exactly where MATEs are weak, Sec. 6.3);
- the union is the combined campaign fault-list reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.faultspace import FaultSpace
from repro.core.intercycle import prune_fault_space
from repro.core.replay import replay_mates
from repro.cpu.avr.access import avr_access_model
from repro.cpu.msp430.access import msp430_access_model
from repro.eval import context


@dataclass
class CombinedRow:
    """One (core, program) row of the cross-layer experiment."""

    core: str
    program: str
    fault_space: int
    mate_benign: int
    defuse_benign: int
    combined_benign: int

    @property
    def mate_fraction(self) -> float:
        """Fault-space share pruned by MATEs alone."""
        return self.mate_benign / self.fault_space

    @property
    def defuse_fraction(self) -> float:
        """Fault-space share pruned by def-use alone."""
        return self.defuse_benign / self.fault_space

    @property
    def combined_fraction(self) -> float:
        """Fault-space share pruned by the union."""
        return self.combined_benign / self.fault_space


@dataclass
class CombinedReport:
    """The assembled cross-layer pruning comparison."""

    rows: list[CombinedRow]

    def format(self) -> str:
        """Render as aligned text."""
        lines = [
            "Cross-layer pruning: MATEs (intra-cycle) + def-use (inter-cycle)",
            "",
            f"{'core/program':<16s}{'MATEs':>10s}{'def-use':>10s}{'combined':>10s}",
            "-" * 46,
        ]
        for row in self.rows:
            lines.append(
                f"{row.core}/{row.program:<10s}"
                f"{100 * row.mate_fraction:9.2f}%"
                f"{100 * row.defuse_fraction:9.2f}%"
                f"{100 * row.combined_fraction:9.2f}%"
            )
        return "\n".join(lines)


def _access_model(core: str):
    if core == "avr":
        return avr_access_model(context.get_netlist(core))
    return msp430_access_model(context.get_netlist(core))


def build_combined(cores=context.CORES, programs=context.PROGRAMS) -> CombinedReport:
    """MATE vs def-use vs combined benign fractions over the full FF space."""
    rows = []
    for core in cores:
        netlist = context.get_netlist(core)
        mates = context.get_mates(core, exclude_register_file=False)
        fault_wires = context.get_fault_wires(core, exclude_register_file=False)
        model = _access_model(core)
        for program in programs:
            trace = context.get_trace(core, program)
            replay = replay_mates(mates, trace, fault_wires)

            combined = FaultSpace(fault_wires, trace.num_cycles)
            mate_count = 0
            for wire in fault_wires:
                benign = np.unpackbits(replay.masked_vector(wire))[
                    : trace.num_cycles
                ]
                mate_count += int(benign.sum())
                combined.mark_benign_cycles(wire, benign)

            defuse_space = prune_fault_space(trace, model)
            defuse_count = defuse_space.num_benign
            for wire in defuse_space.fault_wires:
                if wire in fault_wires:
                    row_index = defuse_space._row[wire]  # noqa: SLF001
                    combined.mark_benign_cycles(
                        wire, defuse_space.benign[row_index]
                    )

            rows.append(
                CombinedRow(
                    core=core,
                    program=program,
                    fault_space=combined.size,
                    mate_benign=mate_count,
                    defuse_benign=defuse_count,
                    combined_benign=combined.num_benign,
                )
            )
    return CombinedReport(rows)
