"""Experiment harness regenerating the paper's tables and figures."""

from repro.eval.example_circuit import figure1_netlist, figure1_testbench_rows

__all__ = ["figure1_netlist", "figure1_testbench_rows"]
