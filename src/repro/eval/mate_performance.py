"""Tables 2 and 3 — MATE performance and top-N selection/cross-validation.

For one core (Table 2 = AVR, Table 3 = MSP430), per FF set and per trace:

- the *complete* MATE set: number of effective MATEs (triggered at least
  once), average number of MATE inputs, and masked fault-space fraction;
- top-N subsets (N ∈ {10, 50, 100, 200}) selected by hit-counter rating on
  one trace (``fib`` or ``conv``) and evaluated on **both** traces — the
  paper's transferability cross-validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.replay import ReplayResult, replay_mates
from repro.core.selection import select_top_n
from repro.eval import context

TOP_N_VALUES = (10, 50, 100, 200)


@dataclass
class FfSetPerformance:
    """Results for one (core, FF set) across both traces."""

    core: str
    ff_set: str
    num_fault_wires: int
    #: Per evaluation trace: effective count, avg inputs (mean, std), masked %.
    effective: dict[str, int] = field(default_factory=dict)
    avg_inputs: dict[str, tuple[float, float]] = field(default_factory=dict)
    masked_complete: dict[str, float] = field(default_factory=dict)
    #: masked[(selected_on, top_n, evaluated_on)] -> fraction
    masked_topn: dict[tuple[str, int, str], float] = field(default_factory=dict)


@dataclass
class MatePerformanceTable:
    """Table 2 (AVR) or Table 3 (MSP430)."""

    core: str
    ff_sets: list[FfSetPerformance]

    def format(self) -> str:
        """Render as aligned text in the paper's layout."""
        number = {"avr": "2", "msp430": "3"}.get(self.core, "?")
        lines = [
            f"Table {number}: {self.core.upper()} MATE performance "
            f"(fault space = fault wires x {context.TRACE_CYCLES} cycles)",
            "",
        ]
        headers = []
        for program in context.PROGRAMS:
            for ff in self.ff_sets:
                headers.append(f"{program}() {ff.ff_set}")
        width = max(len(h) for h in headers) + 2
        label_width = 26

        def row(label: str, cells: list[str]) -> str:
            return label.ljust(label_width) + "".join(c.rjust(width) for c in cells)

        lines.append(row("", headers))
        lines.append("-" * (label_width + width * len(headers)))
        cells = []
        for program in context.PROGRAMS:
            for ff in self.ff_sets:
                cells.append(str(ff.effective[program]))
        lines.append(row("#Effective MATEs", cells))
        cells = []
        for program in context.PROGRAMS:
            for ff in self.ff_sets:
                mean, std = ff.avg_inputs[program]
                cells.append(f"{mean:.1f}±{std:.1f}")
        lines.append(row("Avg. #inputs", cells))
        cells = []
        for program in context.PROGRAMS:
            for ff in self.ff_sets:
                cells.append(f"{100 * ff.masked_complete[program]:.2f}%")
        lines.append(row("Masked Faults", cells))
        for selected_on in context.PROGRAMS:
            lines.append("")
            lines.append(f"selected for {selected_on}():")
            for top_n in TOP_N_VALUES:
                cells = []
                for program in context.PROGRAMS:
                    for ff in self.ff_sets:
                        fraction = ff.masked_topn[(selected_on, top_n, program)]
                        cells.append(f"{100 * fraction:.2f}%")
                lines.append(row(f"  Top {top_n}", cells))
        return "\n".join(lines)


def build_mate_performance(core: str) -> MatePerformanceTable:
    """Assemble Table 2 (AVR) or Table 3 (MSP430)."""
    ff_sets: list[FfSetPerformance] = []
    for ff_label, exclude in (("FF", False), ("FF w/o RF", True)):
        mates = context.get_mates(core, exclude)
        fault_wires = context.get_fault_wires(core, exclude)
        replays: dict[str, ReplayResult] = {}
        for program in context.PROGRAMS:
            trace = context.get_trace(core, program)
            replays[program] = replay_mates(mates, trace, fault_wires)

        perf = FfSetPerformance(
            core=core, ff_set=ff_label, num_fault_wires=len(fault_wires)
        )
        for program, replay in replays.items():
            perf.effective[program] = len(replay.effective_indices())
            perf.avg_inputs[program] = replay.average_inputs()
            perf.masked_complete[program] = replay.masked_fraction()
        for selected_on in context.PROGRAMS:
            for top_n in TOP_N_VALUES:
                subset = select_top_n(replays[selected_on], top_n)
                for program, replay in replays.items():
                    perf.masked_topn[(selected_on, top_n, program)] = (
                        replay.masked_fraction(subset)
                    )
        ff_sets.append(perf)
    return MatePerformanceTable(core=core, ff_sets=ff_sets)
