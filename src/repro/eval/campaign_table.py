"""Ground-truth campaign table, executed through the resilient runner.

Runs a sampled SEU campaign per (core, program) workload and tabulates the
outcome distribution — the ground truth the MATE pruning claims are checked
against. Campaigns route through :class:`~repro.fi.runner.CampaignRunner`,
so every injection is journaled under the artifact cache: an interrupted
``python -m repro.eval campaign`` resumes exactly where it stopped, and a
warm re-run replays the journal instead of re-injecting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval import context
from repro.fi.classify import Outcome
from repro.fi.runner import CampaignRunner, RunnerConfig, RunReport, TargetSpec

#: Default sample size per workload — small enough that the table stays a
#: minutes-scale experiment, large enough for a stable outcome mix.
DEFAULT_SAMPLES = 50


@dataclass
class CampaignTableRow:
    """One (core, program) row: sampled injection outcome distribution."""

    core: str
    program: str
    injections: int
    benign: int
    sdc: int
    timeout: int
    error: int
    resumed: int
    retries: int

    @property
    def sdc_fraction(self) -> float:
        """Share of sampled injections that silently corrupted data."""
        return self.sdc / self.injections if self.injections else 0.0


@dataclass
class CampaignTableReport:
    """The assembled ground-truth campaign table."""

    rows: list[CampaignTableRow]

    def format(self) -> str:
        """Render as aligned text."""
        lines = [
            "Sampled SEU campaign ground truth (resilient runner, journaled)",
            "",
            f"{'core/program':<16s}{'inj':>6s}{'benign':>8s}{'sdc':>6s}"
            f"{'timeout':>8s}{'error':>6s}{'resumed':>8s}",
            "-" * 58,
        ]
        for row in self.rows:
            label = f"{row.core}/{row.program}"
            lines.append(
                f"{label:<16s}{row.injections:6d}"
                f"{row.benign:8d}{row.sdc:6d}{row.timeout:8d}"
                f"{row.error:6d}{row.resumed:8d}"
            )
        return "\n".join(lines)


def _row_from_report(core: str, program: str, report: RunReport) -> CampaignTableRow:
    tally = dict.fromkeys(Outcome, 0)
    for record in report.result.records:
        tally[record.outcome] += 1
    return CampaignTableRow(
        core=core,
        program=program,
        injections=len(report.result.records),
        benign=tally[Outcome.BENIGN],
        sdc=tally[Outcome.SDC],
        timeout=tally[Outcome.TIMEOUT],
        error=tally[Outcome.ERROR],
        resumed=report.skipped,
        retries=report.retries,
    )


def build_campaign_table(
    cores=context.CORES,
    programs=context.PROGRAMS,
    samples: int = DEFAULT_SAMPLES,
    seed: int = 0,
    workers: int = 1,
    store_path=None,
) -> CampaignTableReport:
    """Sampled ground-truth campaigns for every (core, program) workload.

    Journals live in :func:`repro.eval.context.cache_dir`, keyed like every
    other cached artifact by the netlist content hash (plus sample size and
    seed) — so changing the core invalidates the campaign, while a repeat
    run with identical inputs resumes/replays the existing journal.
    ``store_path`` additionally warehouses each completed campaign
    (:mod:`repro.store`); the CLI passes the default warehouse.
    """
    rows = []
    for core in cores:
        for program in programs:
            name = f"{core}-{program}"
            spec = TargetSpec(
                factory="repro.fi.targets:named_target", kwargs={"name": name}
            )
            runner = CampaignRunner(
                spec, RunnerConfig(workers=workers, store_path=store_path)
            )
            journal = context.cache_dir() / (
                f"campaign_{name}_{samples}_{seed}_{context.netlist_hash(core)}.jsonl"
            )
            points = runner.sample_points(samples, seed=seed)
            report = runner.run(journal_path=journal, points=points,
                                resume=True, seed=seed)
            rows.append(_row_from_report(core, program, report))
    return CampaignTableReport(rows)
