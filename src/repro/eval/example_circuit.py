"""The paper's running example circuit (Figure 1a).

Five fault-site wires ``a..e`` feed five gates ``A..E``:

- ``A = NAND(a, b) -> f``
- ``B = XOR(c, d) -> g``
- ``C = INV(e) -> h``
- ``D = AND(g, f) -> k``
- ``E = OR(g, h) -> l``

with observable outputs ``k``, ``l`` and ``h``. This reproduces every fact
stated in Sec. 3: the fault cone of ``d`` is ``{d, g, k, l}`` with gates
``{B, D, E}`` and border wires ``{c, f, h}``; ``M_d = (¬f ∧ h)``;
``M_a = ¬b``; and input ``e`` has no MATE because the path ``[C]`` contains
no gate with masking capability.
"""

from __future__ import annotations

from repro.cells.nangate15 import nangate15_library
from repro.netlist.netlist import Netlist

#: The five fault-site wires of the example (Figure 1b rows).
FIGURE1_FAULT_WIRES = ("a", "b", "c", "d", "e")


def figure1_netlist() -> Netlist:
    """Build the Figure 1a example circuit."""
    netlist = Netlist("figure1", nangate15_library())
    for wire in FIGURE1_FAULT_WIRES:
        netlist.add_input(wire)
    netlist.add_gate("A", "NAND2", {"A": "a", "B": "b"}, "f")
    netlist.add_gate("B", "XOR2", {"A": "c", "B": "d"}, "g")
    netlist.add_gate("C", "INV", {"A": "e"}, "h")
    netlist.add_gate("D", "AND2", {"A": "g", "B": "f"}, "k")
    netlist.add_gate("E", "OR2", {"A": "g", "B": "h"}, "l")
    for wire in ("k", "l", "h"):
        netlist.add_output(wire)
    return netlist


def figure1_testbench_rows() -> list[dict[str, int]]:
    """An 8-cycle stimulus for the Figure 1b fault-space grid.

    The values are chosen so different MATEs trigger in different cycles
    (e.g. ``¬b`` masks ``a`` early on), giving the checkered pruning
    pattern of the figure.
    """
    rows = []
    patterns = [
        (1, 0, 0, 1, 0),
        (0, 0, 1, 1, 1),
        (1, 1, 0, 0, 0),
        (0, 1, 1, 0, 1),
        (1, 1, 1, 1, 0),
        (0, 0, 0, 0, 0),
        (1, 0, 1, 0, 1),
        (1, 1, 0, 1, 1),
    ]
    for a, b, c, d, e in patterns:
        rows.append({"a": a, "b": b, "c": c, "d": d, "e": e})
    return rows


def figure1_sequential_netlist() -> Netlist:
    """A registered variant of Figure 1a for the def-use analysis.

    The combinational example has no flip-flops, so the architecture-level
    pruning layer (``repro.prune``) needs this sequential wrapper: the
    ``a``/``b`` fault sites become enable-gated registers (``ra``/``rb``
    hold their value while ``en`` is low — the classic write→first-read
    interval structure), the ``k`` output is registered through ``rk``, and
    two pathological state bits exercise the boundary cases — ``rdead`` is
    written every cycle but never read (all its injection points are dead),
    and ``rhold`` feeds back on itself and is never read (one tail
    interval spanning the whole run).
    """
    netlist = Netlist("figure1-seq", nangate15_library())
    for wire in ("a", "b", "c", "d", "e", "en"):
        netlist.add_input(wire)
    # Enable-gated input registers: d = en ? input : q (hold).
    netlist.add_gate("MA", "MUX2", {"A": "ra_q", "S": "en", "B": "a"}, "ra_d")
    netlist.add_dff("ra", "ra_d", "ra_q")
    netlist.add_gate("MB", "MUX2", {"A": "rb_q", "S": "en", "B": "b"}, "rb_d")
    netlist.add_dff("rb", "rb_d", "rb_q")
    # The Figure 1a gate cloud, reading the registered a/b.
    netlist.add_gate("A", "NAND2", {"A": "ra_q", "B": "rb_q"}, "f")
    netlist.add_gate("B", "XOR2", {"A": "c", "B": "d"}, "g")
    netlist.add_gate("C", "INV", {"A": "e"}, "h")
    netlist.add_gate("D", "AND2", {"A": "g", "B": "f"}, "k")
    netlist.add_gate("E", "OR2", {"A": "g", "B": "h"}, "l")
    # Registered k output.
    netlist.add_dff("rk", "k", "rk_q")
    netlist.add_gate("K", "BUF", {"A": "rk_q"}, "kq")
    # Written every cycle, never read: every injection point is dead.
    netlist.add_gate("DD", "AND2", {"A": "a", "B": "b"}, "rdead_d")
    netlist.add_dff("rdead", "rdead_d", "rdead_q")
    # Holds itself forever, never read: one tail interval.
    netlist.add_dff("rhold", "rhold_q", "rhold_q")
    for wire in ("kq", "l"):
        netlist.add_output(wire)
    return netlist
