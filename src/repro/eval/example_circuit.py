"""The paper's running example circuit (Figure 1a).

Five fault-site wires ``a..e`` feed five gates ``A..E``:

- ``A = NAND(a, b) -> f``
- ``B = XOR(c, d) -> g``
- ``C = INV(e) -> h``
- ``D = AND(g, f) -> k``
- ``E = OR(g, h) -> l``

with observable outputs ``k``, ``l`` and ``h``. This reproduces every fact
stated in Sec. 3: the fault cone of ``d`` is ``{d, g, k, l}`` with gates
``{B, D, E}`` and border wires ``{c, f, h}``; ``M_d = (¬f ∧ h)``;
``M_a = ¬b``; and input ``e`` has no MATE because the path ``[C]`` contains
no gate with masking capability.
"""

from __future__ import annotations

from repro.cells.nangate15 import nangate15_library
from repro.netlist.netlist import Netlist

#: The five fault-site wires of the example (Figure 1b rows).
FIGURE1_FAULT_WIRES = ("a", "b", "c", "d", "e")


def figure1_netlist() -> Netlist:
    """Build the Figure 1a example circuit."""
    netlist = Netlist("figure1", nangate15_library())
    for wire in FIGURE1_FAULT_WIRES:
        netlist.add_input(wire)
    netlist.add_gate("A", "NAND2", {"A": "a", "B": "b"}, "f")
    netlist.add_gate("B", "XOR2", {"A": "c", "B": "d"}, "g")
    netlist.add_gate("C", "INV", {"A": "e"}, "h")
    netlist.add_gate("D", "AND2", {"A": "g", "B": "f"}, "k")
    netlist.add_gate("E", "OR2", {"A": "g", "B": "h"}, "l")
    for wire in ("k", "l", "h"):
        netlist.add_output(wire)
    return netlist


def figure1_testbench_rows() -> list[dict[str, int]]:
    """An 8-cycle stimulus for the Figure 1b fault-space grid.

    The values are chosen so different MATEs trigger in different cycles
    (e.g. ``¬b`` masks ``a`` early on), giving the checkered pruning
    pattern of the figure.
    """
    rows = []
    patterns = [
        (1, 0, 0, 1, 0),
        (0, 0, 1, 1, 1),
        (1, 1, 0, 0, 0),
        (0, 1, 1, 0, 1),
        (1, 1, 1, 1, 0),
        (0, 0, 0, 0, 0),
        (1, 0, 1, 0, 1),
        (1, 1, 0, 1, 1),
    ]
    for a, b, c, d, e in patterns:
        rows.append({"a": a, "b": b, "c": c, "d": d, "e": e})
    return rows
