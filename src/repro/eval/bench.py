"""Perf snapshots: ``python -m repro.eval bench --out-dir .``.

Runs a fixed set of pipeline workloads — MATE *search*, masking *replay*,
and a small inline injection *campaign* — several rounds each, records the
minimum wall time per workload (min-of-rounds is robust to scheduler
noise), and writes a schema-versioned JSON snapshot::

    {"schema": "repro-bench", "schema_version": 1,
     "quick": false, "rounds": 5,
     "workloads": {"search": {"seconds": ..., "units": ...,
                              "units_per_second": ..., "rounds": [...]},
                   ...}}

``--out-dir DIR`` appends the next free ``BENCH_<n>.json`` in that
directory (``--out FILE`` still writes an exact path), and every written
snapshot is auto-ingested into the results warehouse (``--store``
overrides the database, ``--no-store`` opts out) so ``python -m
repro.store trend`` can gate the perf trajectory across history.

Snapshots from different commits are comparable: ``--baseline OLD.json``
exits non-zero when any workload slowed down by more than
``--max-slowdown`` (default 2x — generous enough for CI-runner jitter,
tight enough to catch real regressions). :func:`validate_bench` checks a
document against the schema; CI runs ``bench --quick`` and fails the build
if the output does not validate.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import tempfile
import time
from pathlib import Path

SCHEMA = "repro-bench"
SCHEMA_VERSION = 1

#: Versioned snapshot file names: BENCH_1.json, BENCH_2.json, ...
BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")


def next_bench_path(directory: str | Path) -> Path:
    """Next free ``BENCH_<n>.json`` in ``directory`` (append, never clobber).

    Snapshot history is append-only so ``python -m repro.store trend`` can
    chart the whole perf trajectory; overwriting one file would erase it.
    """
    directory = Path(directory)
    taken = [
        int(m.group(1))
        for p in directory.glob("BENCH_*.json")
        if (m := BENCH_NAME.match(p.name))
    ]
    return directory / f"BENCH_{max(taken, default=0) + 1}.json"


# ----------------------------------------------------------------------
# Workloads — each callable returns the number of work units it performed.
# ----------------------------------------------------------------------
def _workload_search(iterations: int) -> int:
    """MATE search over the Figure 1 example circuit, repeated."""
    from repro.core.search import find_mates
    from repro.eval.example_circuit import FIGURE1_FAULT_WIRES, figure1_netlist

    netlist = figure1_netlist()
    for _ in range(iterations):
        find_mates(netlist, faulty_wires={w: w for w in FIGURE1_FAULT_WIRES})
    return iterations


def _workload_replay(iterations: int) -> int:
    """Golden simulation + MATE replay over the Figure 1 stimulus."""
    from repro.core.replay import replay_mates
    from repro.core.search import find_mates
    from repro.eval.example_circuit import (
        FIGURE1_FAULT_WIRES,
        figure1_netlist,
        figure1_testbench_rows,
    )
    from repro.sim.simulator import Simulator
    from repro.sim.testbench import TableTestbench

    netlist = figure1_netlist()
    rows = figure1_testbench_rows()
    mates = find_mates(
        netlist, faulty_wires={w: w for w in FIGURE1_FAULT_WIRES}
    ).mate_set().mates()
    for _ in range(iterations):
        result = Simulator(netlist).run(TableTestbench(rows), max_cycles=len(rows))
        assert result.trace is not None
        replay_mates(mates, result.trace, list(FIGURE1_FAULT_WIRES))
    return iterations


def bench_campaign_target():
    """Spawn-importable factory for the bench accumulator target."""
    from repro.fi.campaign import CampaignTarget
    from repro.rtl import RtlCircuit, mux
    from repro.sim import Simulator, Testbench
    from repro.synth import synthesize

    c = RtlCircuit("bench-accum")
    data = c.input("data", 4)
    acc = c.reg("acc", 8)
    count = c.reg("count", 4)
    done = count.eq(8)
    acc.next = mux(done, (acc + data.zext(8)).trunc(8), acc)
    count.next = mux(done, (count + 1).trunc(4), count)
    c.output("acc_out", acc)
    c.output("done", done)
    netlist = synthesize(c)

    class _Bench(Testbench):
        def __init__(self) -> None:
            self.result = None

        def drive(self, cycle, state):
            return {"data": (cycle * 3 + 1) % 16}

        def observe(self, cycle, outputs):
            if outputs["done"]:
                self.result = outputs["acc_out"]
                return True
            return False

    return CampaignTarget(
        name="bench-accum",
        simulator=Simulator(netlist),
        make_testbench=_Bench,
        observables=lambda tb, result: tb.result,
    )


def _workload_campaign(points: int) -> int:
    """Inline resilient-runner campaign on a tiny accumulator circuit."""
    from repro.fi.runner import CampaignRunner, RunnerConfig, TargetSpec

    spec = TargetSpec(factory="repro.eval.bench:bench_campaign_target")
    config = RunnerConfig(
        workers=0, max_cycles=100, install_signal_handlers=False
    )
    runner = CampaignRunner(spec, config)
    with tempfile.TemporaryDirectory() as tmp:
        report = runner.run(
            runner.sample_points(points, seed=0),
            Path(tmp) / "bench.jsonl",
            seed=0,
        )
    assert report.executed == points
    return points


#: name -> (callable, full-size units, quick-size units)
WORKLOADS = {
    "search": (_workload_search, 20, 3),
    "replay": (_workload_replay, 20, 3),
    "campaign": (_workload_campaign, 24, 6),
}


# ----------------------------------------------------------------------
# Measurement, schema, comparison
# ----------------------------------------------------------------------
def run_bench(quick: bool = False, rounds: int | None = None) -> dict:
    """Execute every workload and return the snapshot document."""
    from repro import obs

    rounds = rounds if rounds is not None else (3 if quick else 5)
    workloads: dict[str, dict] = {}
    for name, (func, full_units, quick_units) in WORKLOADS.items():
        units = quick_units if quick else full_units
        timings: list[float] = []
        with obs.span(f"bench/{name}", units=units, rounds=rounds):
            for _ in range(rounds):
                start = time.perf_counter()
                func(units)
                timings.append(time.perf_counter() - start)
        best = min(timings)
        workloads[name] = {
            "seconds": round(best, 6),
            "units": units,
            "units_per_second": round(units / best, 3) if best > 0 else 0.0,
            "rounds": [round(t, 6) for t in timings],
        }
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "quick": quick,
        "rounds": rounds,
        "python": ".".join(str(v) for v in sys.version_info[:3]),
        "workloads": workloads,
    }


def validate_bench(doc: object) -> None:
    """Raise ``ValueError`` unless ``doc`` is a valid bench snapshot."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        raise ValueError("bench document is not a JSON object")
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    if doc.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version is {doc.get('schema_version')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    workloads = doc.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        problems.append("workloads must be a non-empty object")
    else:
        for name, entry in workloads.items():
            if not isinstance(entry, dict):
                problems.append(f"workload {name!r} is not an object")
                continue
            seconds = entry.get("seconds")
            if not isinstance(seconds, (int, float)) or seconds <= 0:
                problems.append(f"workload {name!r} has invalid seconds")
            if not isinstance(entry.get("rounds"), list) or not entry["rounds"]:
                problems.append(f"workload {name!r} has no rounds")
            if not isinstance(entry.get("units"), int) or entry["units"] <= 0:
                problems.append(f"workload {name!r} has invalid units")
    if problems:
        raise ValueError("invalid bench snapshot: " + "; ".join(problems))


def compare_to_baseline(
    current: dict, baseline: dict, max_slowdown: float = 2.0
) -> list[str]:
    """Regression messages for workloads slower than ``max_slowdown``x.

    Comparison is per-unit (seconds/units), so snapshots taken at
    different sizes (e.g. ``--quick`` vs full) still compare meaningfully.
    """
    regressions: list[str] = []
    for name, entry in current["workloads"].items():
        base = baseline["workloads"].get(name)
        if base is None:
            continue
        per_unit = entry["seconds"] / entry["units"]
        base_per_unit = base["seconds"] / base["units"]
        if base_per_unit <= 0:
            continue
        ratio = per_unit / base_per_unit
        if ratio > max_slowdown:
            regressions.append(
                f"{name}: {ratio:.2f}x slower than baseline "
                f"({per_unit * 1e3:.3f}ms/unit vs {base_per_unit * 1e3:.3f}ms/unit)"
            )
    return regressions


# ----------------------------------------------------------------------
# CLI (dispatched from ``python -m repro.eval bench``)
# ----------------------------------------------------------------------
def _ingest_snapshot(path: Path, store_path: Path | None) -> None:
    """Best effort: warehouse the written snapshot; warn, never fail."""
    try:
        from repro.store import ResultsStore

        with ResultsStore(store_path) as store:
            bid = store.ingest_bench(path)
        print(f"warehoused as bench run #{bid} (python -m repro.store trend)")
    except Exception as exc:
        from repro import obs

        obs.counter("store.ingest.errors").inc()
        print(f"warning: warehouse ingest failed: {exc}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-eval bench",
        description="Measure pipeline workloads and snapshot the timings.",
    )
    out_group = parser.add_mutually_exclusive_group()
    out_group.add_argument(
        "--out", type=Path, default=None, metavar="FILE",
        help="write the snapshot JSON to this exact path",
    )
    out_group.add_argument(
        "--out-dir", type=Path, default=None, metavar="DIR",
        help="append a versioned BENCH_<n>.json snapshot to this directory "
        "(never overwrites earlier snapshots)",
    )
    parser.add_argument(
        "--store", type=Path, default=None, metavar="FILE",
        help="results-warehouse database the snapshot is auto-ingested "
        "into (default: .repro_cache/warehouse.sqlite3)",
    )
    parser.add_argument(
        "--no-store", action="store_true",
        help="skip the results-warehouse auto-ingest",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller workloads and fewer rounds (CI smoke mode)",
    )
    parser.add_argument(
        "--rounds", type=int, default=None,
        help="rounds per workload (default: 5, or 3 with --quick)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help="compare against this snapshot; exit 1 on regression",
    )
    parser.add_argument(
        "--max-slowdown", type=float, default=2.0,
        help="per-unit slowdown ratio that counts as a regression "
        "(default 2.0)",
    )
    args = parser.parse_args(argv)

    doc = run_bench(quick=args.quick, rounds=args.rounds)
    validate_bench(doc)
    for name, entry in doc["workloads"].items():
        print(
            f"{name:10s} {entry['seconds'] * 1e3:9.2f} ms for "
            f"{entry['units']} units "
            f"({entry['units_per_second']:.1f} units/s)"
        )
    out = args.out
    if args.out_dir is not None:
        args.out_dir.mkdir(parents=True, exist_ok=True)
        out = next_bench_path(args.out_dir)
    if out:
        out.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
        print(f"bench snapshot written to {out}")
        if not args.no_store:
            _ingest_snapshot(out, args.store)

    if args.baseline:
        try:
            baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
            validate_bench(baseline)
        except (OSError, ValueError) as exc:
            print(f"error: unusable baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        regressions = compare_to_baseline(doc, baseline, args.max_slowdown)
        if regressions:
            for line in regressions:
                print(f"REGRESSION {line}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.baseline} "
              f"(threshold {args.max_slowdown:.1f}x)")
    return 0
