"""Shared, cached experiment artifacts: cores, traces, MATE searches.

Synthesis is cheap, but 8500-cycle full-wire traces and whole-netlist MATE
searches are not — they are cached in memory (per process) and on disk
(``.repro_cache/``) keyed by the netlist content hash and the heuristic
parameters, so benchmarks and the CLI can re-run instantly.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro.core.mate import Mate, MateSet
from repro.core.search import (
    SearchParameters,
    SearchResult,
    WireSearchResult,
    faulty_wires_for_dffs,
    find_mates,
    record_search_metrics,
)
from repro.cpu.avr import AvrSystem, synthesize_avr
from repro.cpu.msp430 import Msp430System, synthesize_msp430
from repro.netlist.json_io import netlist_content_hash
from repro.netlist.netlist import Netlist
from repro.obs import counter, span
from repro.programs import avr_conv, avr_fib, msp430_conv, msp430_fib
from repro.sim.simulator import Simulator
from repro.trace.trace import Trace

#: The paper's trace length for both test programs.
TRACE_CYCLES = 8500

CORES = ("avr", "msp430")
PROGRAMS = ("fib", "conv")

_CACHE_DIR = Path(__file__).resolve().parents[3] / ".repro_cache"


def cache_dir() -> Path:
    """The on-disk artifact cache directory (created on demand)."""
    _CACHE_DIR.mkdir(exist_ok=True)
    return _CACHE_DIR


def _atomic_write(path: Path, writer) -> None:
    """Write a cache file atomically: temp file in the same dir + rename.

    A crash (or SIGKILL) mid-write must never leave a truncated artifact at
    the final path — readers either see the complete previous version or
    the complete new one. ``writer`` receives the open binary temp file.
    """
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            writer(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _discard_corrupt(path: Path, what: str, exc: Exception) -> None:
    """Warn about, count, and delete an unreadable cache artifact."""
    warnings.warn(
        f"discarding corrupt {what} cache {path.name}: {exc}",
        RuntimeWarning,
        stacklevel=3,
    )
    counter("context.cache.corrupt").inc()
    try:
        path.unlink()
    except OSError:
        pass


@lru_cache(maxsize=None)
def get_netlist(core: str) -> Netlist:
    """Synthesized netlist of one evaluation core (memoized)."""
    if core not in CORES:
        raise ValueError(f"unknown core {core!r} (expected one of {CORES})")
    with span("synthesize", core=core):
        if core == "avr":
            return synthesize_avr()
        return synthesize_msp430()


@lru_cache(maxsize=None)
def get_simulator(core: str) -> Simulator:
    """Compiled simulator of one core (memoized)."""
    return Simulator(get_netlist(core))


@lru_cache(maxsize=None)
def netlist_hash(core: str) -> str:
    """Content hash keying all cached artifacts of a core."""
    return netlist_content_hash(get_netlist(core))


def make_system(core: str, program: str, halt: bool = False):
    """Fresh testbench running the given test program."""
    if core == "avr":
        words = {"fib": avr_fib, "conv": avr_conv}[program](halt=halt)
        return AvrSystem(words, halt_on_sleep=halt)
    words = {"fib": msp430_fib, "conv": msp430_conv}[program](halt=halt)
    return Msp430System(words, halt_on_cpuoff=halt)


@lru_cache(maxsize=None)
def get_trace(core: str, program: str, cycles: int = TRACE_CYCLES) -> Trace:
    """Full-wire execution trace (free-running program), disk-cached."""
    path = cache_dir() / f"trace_{core}_{program}_{cycles}_{netlist_hash(core)}.npz"
    if path.exists():
        try:
            data = np.load(path, allow_pickle=False)
            wires = [str(w) for w in data["wires"]]
            trace = Trace(wires, data["matrix"])
        except Exception as exc:  # truncated zip, missing keys, bad dtype
            _discard_corrupt(path, "trace", exc)
        else:
            counter("context.trace.cache.hit").inc()
            return trace
    counter("context.trace.cache.miss").inc()
    simulator = get_simulator(core)
    with span("trace-record", core=core, program=program, cycles=cycles):
        result = simulator.run(make_system(core, program), max_cycles=cycles)
    assert result.trace is not None
    _atomic_write(
        path,
        lambda fh: np.savez_compressed(
            fh,
            wires=np.array(result.trace.wire_names),
            matrix=result.trace.matrix,
        ),
    )
    return result.trace


# ----------------------------------------------------------------------
# MATE search caching
# ----------------------------------------------------------------------
#: Bump when the search algorithm changes in ways SearchParameters doesn't
#: capture (killer expansion limits, checker semantics, ...).
SEARCH_ALGORITHM_VERSION = 3


def _params_key(params: SearchParameters) -> str:
    blob = json.dumps(
        {**params.__dict__, "_algo": SEARCH_ALGORITHM_VERSION}, sort_keys=True
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:8]


def _search_to_json(result: SearchResult) -> str:
    doc = {
        "netlist": result.netlist_name,
        "runtime_seconds": result.runtime_seconds,
        "wires": [
            {
                "wire": r.wire,
                "dff": r.dff_name,
                "status": r.status,
                "cone_gates": r.cone_gates,
                "num_terms": r.num_terms,
                "num_signatures": r.num_signatures,
                "candidates_tried": r.candidates_tried,
                "exact_checks": r.exact_checks,
                "mates": [list(m.literals) for m in r.mates],
            }
            for r in result.wire_results
        ],
    }
    return json.dumps(doc)


def _search_from_json(text: str, params: SearchParameters) -> SearchResult:
    doc = json.loads(text)
    wires = []
    for r in doc["wires"]:
        mates = [
            Mate([(w, v) for w, v in literals], [r["wire"]])
            for literals in r["mates"]
        ]
        wires.append(
            WireSearchResult(
                wire=r["wire"],
                dff_name=r["dff"],
                status=r["status"],
                cone_gates=r["cone_gates"],
                num_terms=r["num_terms"],
                num_signatures=r["num_signatures"],
                candidates_tried=r["candidates_tried"],
                exact_checks=r["exact_checks"],
                mates=mates,
            )
        )
    return SearchResult(
        netlist_name=doc["netlist"],
        parameters=params,
        wire_results=wires,
        runtime_seconds=doc["runtime_seconds"],
    )


#: Searches completed this process, keyed by (core, FF-set label). The
#: ``--lint-report`` option of ``python -m repro.eval`` audits these so a
#: campaign archives the static-soundness report alongside its metrics.
_COMPLETED_SEARCHES: dict[tuple[str, str], SearchResult] = {}


def completed_searches() -> dict[tuple[str, str], SearchResult]:
    """Searches loaded or run so far: ``(core, "FF"|"noRF") -> result``."""
    return dict(_COMPLETED_SEARCHES)


@lru_cache(maxsize=None)
def get_search(
    core: str,
    exclude_register_file: bool,
    params: SearchParameters | None = None,
) -> SearchResult:
    """MATE search result for one (core, FF-set) input, disk-cached."""
    params = params or SearchParameters()
    suffix = "noRF" if exclude_register_file else "FF"
    path = cache_dir() / (
        f"mates_{core}_{suffix}_{netlist_hash(core)}_{_params_key(params)}.json"
    )
    if path.exists():
        try:
            # Replay the cached aggregates into the registry under the same
            # span path a live search uses, so metrics exports stay
            # meaningful on warm caches (counters then report *loaded*
            # search work).
            with span("mate-search", netlist=core, cached=True):
                result = _search_from_json(path.read_text(), params)
        except Exception as exc:  # truncated/garbled JSON, missing keys
            _discard_corrupt(path, "search", exc)
        else:
            counter("context.search.cache.hit").inc()
            record_search_metrics(result)
            _COMPLETED_SEARCHES[(core, suffix)] = result
            return result
    counter("context.search.cache.miss").inc()
    netlist = get_netlist(core)
    wires = faulty_wires_for_dffs(netlist, exclude_register_file=exclude_register_file)
    result = find_mates(netlist, faulty_wires=wires, params=params)
    text = _search_to_json(result)
    _atomic_write(path, lambda fh: fh.write(text.encode()))
    _COMPLETED_SEARCHES[(core, suffix)] = result
    return result


def get_fault_wires(core: str, exclude_register_file: bool) -> list[str]:
    """Fault-space wires for one (core, FF-set) input."""
    return list(
        faulty_wires_for_dffs(
            get_netlist(core), exclude_register_file=exclude_register_file
        )
    )


def get_mates(core: str, exclude_register_file: bool) -> list[Mate]:
    """Deduplicated MATE list for one (core, FF-set) input."""
    return get_search(core, exclude_register_file).mate_set().mates()


def clear_disk_cache() -> int:
    """Delete all cached artifacts; returns the number of files removed."""
    removed = 0
    if _CACHE_DIR.exists():
        for path in _CACHE_DIR.iterdir():
            path.unlink()
            removed += 1
    return removed


__all__ = [
    "CORES",
    "PROGRAMS",
    "TRACE_CYCLES",
    "MateSet",
    "cache_dir",
    "clear_disk_cache",
    "completed_searches",
    "get_fault_wires",
    "get_mates",
    "get_netlist",
    "get_search",
    "get_simulator",
    "get_trace",
    "make_system",
]
