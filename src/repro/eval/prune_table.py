"""Cross-layer pruning accounting table (`python -m repro.eval prune`).

For each named (core, program) workload the table folds both pruning layers
over the full (flip-flop × cycle) fault space of the campaign's golden run:
the gate-level MATE layer (replayed trigger vectors) and the architecture-
level def-use layer (dead intervals plus equivalence followers), with their
overlap separated out — the cross-layer picture the paper's title promises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval import context
from repro.prune import PruneAccounting, account, get_equivalence_map

#: Workloads tabulated by default (one per core keeps the cold-cache cost
#: of the MATE replay bounded; ``--all-programs`` covers the rest).
DEFAULT_TARGETS = ("avr-fib", "msp430-fib")
ALL_TARGETS = ("avr-fib", "avr-conv", "msp430-fib", "msp430-conv")


def _mate_vectors(core: str, program: str, golden_cycles: int) -> dict:
    """Per-fault-wire MATE trigger vectors truncated to the golden run."""
    from repro.core.replay import replay_mates

    mates = context.get_mates(core, exclude_register_file=False)
    fault_wires = context.get_fault_wires(core, exclude_register_file=False)
    trace = context.get_trace(core, program)
    replay = replay_mates(mates, trace, fault_wires)
    return {
        wire: np.unpackbits(replay.masked_vector(wire))[:golden_cycles]
        for wire in fault_wires
    }


def account_target(target_name: str, with_mates: bool = True) -> PruneAccounting:
    """The accounting row for one named workload."""
    core, _, program = target_name.partition("-")
    equivalence_map = get_equivalence_map(target_name)
    mate_vectors = (
        _mate_vectors(core, program, equivalence_map.golden_cycles)
        if with_mates
        else None
    )
    return account(
        target_name, context.get_netlist(core), equivalence_map, mate_vectors
    )


@dataclass
class PruneTableReport:
    """The assembled cross-layer pruning table."""

    rows: list[PruneAccounting]

    def format(self) -> str:
        """Render as aligned text."""
        lines = [
            "Cross-layer fault-space pruning (gate-level MATE × def-use)",
            "",
            f"{'workload':<14s}{'points':>10s}{'mate':>10s}{'defuse':>10s}"
            f"{'both':>9s}{'dead':>9s}{'collapsed':>11s}{'reps':>8s}"
            f"{'remaining':>11s}",
            "-" * 92,
        ]
        for row in self.rows:
            lines.append(
                f"{row.target:<14s}{row.space_points:>10d}{row.mate_pruned:>10d}"
                f"{row.defuse_pruned:>10d}{row.both:>9d}{row.dead_points:>9d}"
                f"{row.collapsed_points:>11d}{row.representatives:>8d}"
                f"{row.remaining:>11d}"
            )
        lines.append("")
        for row in self.rows:
            lines.append(
                f"{row.target}: def-use prunes {100 * row.defuse_fraction:.1f}% "
                f"alone, both layers {100 * row.union_fraction:.1f}% "
                f"({row.space_points - row.remaining} of {row.space_points})"
            )
        return "\n".join(lines)


def build_prune_table(
    targets: tuple[str, ...] = DEFAULT_TARGETS, with_mates: bool = True
) -> PruneTableReport:
    """Accounting rows for the requested named workloads."""
    return PruneTableReport(
        rows=[account_target(name, with_mates=with_mates) for name in targets]
    )
