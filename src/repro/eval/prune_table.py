"""Cross-layer pruning accounting table (`python -m repro.eval prune`).

For each named (core, program) workload the table folds all three pruning
layers over the full (flip-flop × cycle) fault space of the campaign's
golden run: the gate-level MATE layer (replayed trigger vectors), the
architecture-level def-use layer (dead intervals plus equivalence
followers), and the binary-level static dataflow layer (trace-independent
register liveness anchored onto cycles), with every pairwise overlap and
the triple intersection separated out — the cross-layer picture the
paper's title promises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval import context
from repro.prune import PruneAccounting, account, get_equivalence_map

#: Workloads tabulated by default (one per core keeps the cold-cache cost
#: of the MATE replay bounded; ``--all-programs`` covers the rest).
DEFAULT_TARGETS = ("avr-fib", "msp430-fib")
ALL_TARGETS = ("avr-fib", "avr-conv", "msp430-fib", "msp430-conv")


def _mate_vectors(core: str, program: str, golden_cycles: int) -> dict:
    """Per-fault-wire MATE trigger vectors truncated to the golden run."""
    from repro.core.replay import replay_mates

    mates = context.get_mates(core, exclude_register_file=False)
    fault_wires = context.get_fault_wires(core, exclude_register_file=False)
    trace = context.get_trace(core, program)
    replay = replay_mates(mates, trace, fault_wires)
    return {
        wire: np.unpackbits(replay.masked_vector(wire))[:golden_cycles]
        for wire in fault_wires
    }


def account_target(
    target_name: str, with_mates: bool = True, with_static: bool = True
) -> PruneAccounting:
    """The accounting row for one named workload."""
    core, _, program = target_name.partition("-")
    equivalence_map = get_equivalence_map(target_name)
    mate_vectors = (
        _mate_vectors(core, program, equivalence_map.golden_cycles)
        if with_mates
        else None
    )
    static_map = None
    if with_static:
        from repro.prune import get_static_map

        static_map = get_static_map(target_name)
    return account(
        target_name,
        context.get_netlist(core),
        equivalence_map,
        mate_vectors,
        static_map=static_map,
    )


@dataclass
class PruneTableReport:
    """The assembled cross-layer pruning table."""

    rows: list[PruneAccounting]

    def format(self) -> str:
        """Render as aligned text."""
        lines = [
            "Cross-layer fault-space pruning "
            "(gate-level MATE × def-use × static dataflow)",
            "",
            f"{'workload':<14s}{'points':>10s}{'mate':>10s}{'defuse':>10s}"
            f"{'static':>9s}{'m&d':>9s}{'m&s':>8s}{'d&s':>8s}{'all':>7s}"
            f"{'reps':>8s}{'remaining':>11s}",
            "-" * 104,
        ]
        for row in self.rows:
            lines.append(
                f"{row.target:<14s}{row.space_points:>10d}{row.mate_pruned:>10d}"
                f"{row.defuse_pruned:>10d}{row.static_pruned:>9d}"
                f"{row.both:>9d}{row.static_mate:>8d}{row.static_defuse:>8d}"
                f"{row.all_layers:>7d}{row.representatives:>8d}"
                f"{row.remaining:>11d}"
            )
        lines.append("")
        for row in self.rows:
            lines.append(
                f"{row.target}: def-use prunes {100 * row.defuse_fraction:.1f}% "
                f"alone, static {100 * row.static_fraction:.1f}% alone, "
                f"all layers {100 * row.union_fraction:.1f}% "
                f"({row.space_points - row.remaining} of {row.space_points})"
            )
        return "\n".join(lines)


def build_prune_table(
    targets: tuple[str, ...] = DEFAULT_TARGETS,
    with_mates: bool = True,
    with_static: bool = True,
) -> PruneTableReport:
    """Accounting rows for the requested named workloads."""
    return PruneTableReport(
        rows=[
            account_target(name, with_mates=with_mates, with_static=with_static)
            for name in targets
        ]
    )
