"""Exact masking-coverage table (SAT-backed, beyond the paper's search).

For each core and FF set, the heuristic search partitions the fault wires
into *found* (a MATE exists), *unmaskable* (proved during search), and
*no_mate* (gave up). The :mod:`repro.core.coverage` SAT analysis decides
the ``no_mate`` remainder exactly: wires where a masking condition
provably exists (coverage the search missed) vs. wires that are genuinely
unmaskable at the cone border. The table reports the split plus the exact
coverage ceiling — the fraction of fault wires that *any* single-cycle
trigger hardware could cover.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.coverage import MASKABLE, UNKNOWN, UNMASKABLE, coverage_report
from repro.eval import context
from repro.eval.table1 import _render


@dataclass
class CoverageColumn:
    """One (core, FF-set) column of the exact-coverage table."""

    core: str
    ff_set: str
    faulty_wires: int
    covered: int
    search_unmaskable: int
    uncovered: int
    missed_maskable: int
    exact_unmaskable: int
    undecided: int

    @property
    def coverage_ceiling(self) -> float:
        """Fraction of fault wires any single-cycle trigger could cover."""
        if not self.faulty_wires:
            return 0.0
        return (self.covered + self.missed_maskable) / self.faulty_wires

    @property
    def search_coverage(self) -> float:
        """Fraction the heuristic search actually covered."""
        if not self.faulty_wires:
            return 0.0
        return self.covered / self.faulty_wires


@dataclass
class CoverageTable:
    """The assembled exact-coverage table."""

    columns: list[CoverageColumn]

    def format(self) -> str:
        headers = [f"{c.core} {c.ff_set}" for c in self.columns]
        rows = [
            ("Faulty Wires", [str(c.faulty_wires) for c in self.columns]),
            ("#MATE found", [str(c.covered) for c in self.columns]),
            ("#Unmaskable (search)", [str(c.search_unmaskable) for c in self.columns]),
            ("#No MATE (search)", [str(c.uncovered) for c in self.columns]),
            ("  … maskable (SAT)", [str(c.missed_maskable) for c in self.columns]),
            ("  … unmaskable (SAT)", [str(c.exact_unmaskable) for c in self.columns]),
            ("  … undecided", [str(c.undecided) for c in self.columns]),
            (
                "Search coverage",
                [f"{c.search_coverage:.1%}" for c in self.columns],
            ),
            (
                "Coverage ceiling",
                [f"{c.coverage_ceiling:.1%}" for c in self.columns],
            ),
        ]
        return _render(
            "Exact masking coverage (SAT): search vs. provable ceiling",
            headers,
            rows,
        )


def build_coverage_table(
    cores: tuple[str, ...] = context.CORES,
    max_conflicts: int | None = None,
) -> CoverageTable:
    """Run (or load) the searches and decide every uncovered wire exactly."""
    columns = []
    for core in cores:
        netlist = context.get_netlist(core)
        for ff_label, exclude in (("FF", False), ("FF w/o RF", True)):
            search = context.get_search(core, exclude)
            uncovered = [
                r.wire for r in search.wire_results if r.status == "no_mate"
            ]
            verdicts = coverage_report(
                netlist, uncovered, max_conflicts=max_conflicts
            )
            by_status = {MASKABLE: 0, UNMASKABLE: 0, UNKNOWN: 0}
            for verdict in verdicts:
                by_status[verdict.status] = by_status.get(verdict.status, 0) + 1
            columns.append(
                CoverageColumn(
                    core=core,
                    ff_set=ff_label,
                    faulty_wires=search.num_faulty_wires,
                    covered=sum(
                        1 for r in search.wire_results if r.status == "found"
                    ),
                    search_unmaskable=search.num_unmaskable,
                    uncovered=len(uncovered),
                    missed_maskable=by_status[MASKABLE],
                    exact_unmaskable=by_status[UNMASKABLE],
                    undecided=by_status[UNKNOWN],
                )
            )
    return CoverageTable(columns)
