"""Sec. 6.1 — hardware cost of integrating MATE sets into a HAFI platform."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.replay import replay_mates
from repro.core.selection import select_top_n
from repro.eval import context
from repro.hafi.controller import plan_campaign
from repro.hafi.fpga import estimate_mate_cost


@dataclass
class HafiCostReport:
    """Sec. 6.1 cost figures for selected MATE sets."""

    entries: list[str]

    def format(self) -> str:
        """Render as text."""
        return "\n\n".join(self.entries)


def build_hafi_cost(top_n_values: tuple[int, ...] = (50, 100)) -> HafiCostReport:
    """LUT cost + campaign-plan figures for top-N MATE sets on both cores."""
    entries = []
    for core in context.CORES:
        mates = context.get_mates(core, exclude_register_file=True)
        fault_wires = context.get_fault_wires(core, exclude_register_file=True)
        trace = context.get_trace(core, "fib")
        replay = replay_mates(mates, trace, fault_wires)
        for top_n in top_n_values:
            subset_indices = select_top_n(replay, top_n)
            subset = [mates[i] for i in subset_indices]
            cost = estimate_mate_cost(subset)
            pruned = replay.masked_pairs(subset_indices)
            plan = plan_campaign(
                fault_space_size=replay.fault_space_size,
                pruned_points=pruned,
                workload_cycles=trace.num_cycles,
                mate_cost=cost,
            )
            entries.append(
                f"{core.upper()} top-{top_n} MATE set (FF w/o RF, fib trace)\n"
                f"  {cost.format()}\n{plan.format()}"
            )
    return HafiCostReport(entries)
