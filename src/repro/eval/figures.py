"""Figure 1 — the example fault cone (1a) and the pruned fault-space grid (1b)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cone import compute_fault_cone
from repro.core.faultspace import FaultSpace
from repro.core.replay import replay_mates
from repro.core.search import find_mates
from repro.eval.example_circuit import (
    FIGURE1_FAULT_WIRES,
    figure1_netlist,
    figure1_testbench_rows,
)
from repro.sim.simulator import Simulator
from repro.sim.testbench import TableTestbench


@dataclass
class Figure1:
    """Both halves of the paper's Figure 1."""

    cone_report: str
    mates_report: str
    grid: FaultSpace

    def format(self) -> str:
        """Render as text (grid uses filled/empty dots like the paper)."""
        return "\n".join(
            [
                "Figure 1a: fault cone of input d in the example circuit",
                self.cone_report,
                "",
                "Discovered MATEs:",
                self.mates_report,
                "",
                "Figure 1b: fault-space pruning over an 8-cycle stimulus",
                "(● possibly-effective injection point, ○ pruned as benign)",
                self.grid.render_grid(),
                "",
                f"pruned: {self.grid.num_benign}/{self.grid.size} points "
                f"({100 * self.grid.benign_fraction:.1f}%)",
            ]
        )


def build_figure1() -> Figure1:
    """Reproduce both halves of Figure 1 on the paper's example circuit."""
    netlist = figure1_netlist()
    cone = compute_fault_cone(netlist, "d")
    cone_report = (
        f"  cone wires : {sorted(cone.cone_wires)}\n"
        f"  cone gates : {sorted(g.name for g in cone.cone_gates)}\n"
        f"  border     : {sorted(cone.border_wires)}\n"
        f"  endpoints  : {sorted(cone.endpoint_wires)}"
    )

    search = find_mates(netlist, faulty_wires={w: w for w in FIGURE1_FAULT_WIRES})
    mate_lines = []
    for result in search.wire_results:
        if result.status == "unmaskable":
            mate_lines.append(f"  {result.wire}: unmaskable")
            continue
        terms = [
            " & ".join(w if v else f"!{w}" for w, v in mate.literals)
            for mate in result.mates
        ]
        mate_lines.append(f"  {result.wire}: {', '.join(terms) or '(none)'}")

    rows = figure1_testbench_rows()
    trace = Simulator(netlist).run(TableTestbench(rows), max_cycles=len(rows)).trace
    assert trace is not None
    mates = search.mate_set().mates()
    replay = replay_mates(mates, trace, list(FIGURE1_FAULT_WIRES))
    grid = FaultSpace(list(FIGURE1_FAULT_WIRES), len(rows))
    for wire in FIGURE1_FAULT_WIRES:
        packed = replay.masked_vector(wire)
        grid.mark_benign_cycles(wire, np.unpackbits(packed)[: len(rows)])

    return Figure1(
        cone_report=cone_report,
        mates_report="\n".join(mate_lines),
        grid=grid,
    )
