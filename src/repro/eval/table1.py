"""Table 1 — statistics of the heuristic MATE search.

Rows (per paper): faulty wires, average/median fault-cone size in gates,
run time in seconds, number of unmaskable wires, number of MATE candidates
tried, number of MATEs found. Columns: AVR/MSP430 × FF / FF-without-RF.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval import context


@dataclass
class Table1Column:
    """One (core, FF-set) column of Table 1."""

    core: str
    ff_set: str
    faulty_wires: int
    avg_cone_gates: float
    median_cone_gates: float
    runtime_seconds: float
    num_unmaskable: int
    num_candidates: int
    num_mates: int
    num_unique_mates: int


@dataclass
class Table1:
    """The assembled table."""

    columns: list[Table1Column]

    def format(self) -> str:
        """Render as aligned text."""
        headers = [f"{c.core} {c.ff_set}" for c in self.columns]
        rows = [
            ("Faulty Wires", [str(c.faulty_wires) for c in self.columns]),
            ("Avg. Cone [#gates]", [f"{c.avg_cone_gates:.0f}" for c in self.columns]),
            (
                "Med. Cone [#gates]",
                [f"{c.median_cone_gates:.0f}" for c in self.columns],
            ),
            ("Run Time [s]", [f"{c.runtime_seconds:.0f}" for c in self.columns]),
            ("#Unmaskable", [str(c.num_unmaskable) for c in self.columns]),
            ("#MATE candid.", [f"{c.num_candidates:.1e}" for c in self.columns]),
            ("#MATE", [str(c.num_mates) for c in self.columns]),
            ("#MATE (unique)", [str(c.num_unique_mates) for c in self.columns]),
        ]
        return _render(
            "Table 1: Statistics of the heuristic MATE search", headers, rows
        )


def _render(title: str, headers: list[str], rows: list[tuple[str, list[str]]]) -> str:
    label_width = max(len(r[0]) for r in rows)
    col_widths = [
        max(len(headers[i]), max(len(r[1][i]) for r in rows))
        for i in range(len(headers))
    ]
    lines = [title, ""]
    header = " " * label_width + "  " + "  ".join(
        h.rjust(w) for h, w in zip(headers, col_widths)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label, cells in rows:
        lines.append(
            label.ljust(label_width)
            + "  "
            + "  ".join(c.rjust(w) for c, w in zip(cells, col_widths))
        )
    return "\n".join(lines)


def build_table1(cores: tuple[str, ...] = context.CORES) -> Table1:
    """Run (or load) the four MATE searches and assemble Table 1."""
    columns = []
    for core in cores:
        for ff_label, exclude in (("FF", False), ("FF w/o RF", True)):
            search = context.get_search(core, exclude)
            columns.append(
                Table1Column(
                    core=core,
                    ff_set=ff_label,
                    faulty_wires=search.num_faulty_wires,
                    avg_cone_gates=search.average_cone_gates,
                    median_cone_gates=search.median_cone_gates,
                    runtime_seconds=search.runtime_seconds,
                    num_unmaskable=search.num_unmaskable,
                    num_candidates=search.num_candidates,
                    num_mates=search.num_mates,
                    num_unique_mates=len(search.mate_set()),
                )
            )
    return Table1(columns)
