"""Command-line experiment runner.

Usage::

    python -m repro.eval table1          # MATE search statistics
    python -m repro.eval table2          # AVR MATE performance
    python -m repro.eval table3          # MSP430 MATE performance
    python -m repro.eval figure1         # example circuit + pruning grid
    python -m repro.eval hafi            # Sec. 6.1 hardware-cost figures
    python -m repro.eval coverage        # SAT exact-coverage ceiling
    python -m repro.eval campaign        # sampled ground-truth SEU campaigns
    python -m repro.eval prune           # cross-layer pruning accounting
    python -m repro.eval all             # everything above except campaign/prune
    python -m repro.eval clear-cache     # drop cached traces/searches
    python -m repro.eval bench --out-dir .        # versioned perf snapshot
    #   (see repro.eval.bench; appends BENCH_<n>.json, auto-ingests into
    #   the results warehouse; --baseline compares and fails on regression)

``campaign`` routes through the resilient runner (:mod:`repro.fi.runner`):
injections are journaled under the artifact cache, so an interrupted run
resumes and a warm re-run replays instead of re-injecting; completed
campaigns are warehoused (:mod:`repro.store`) for cross-run diffing. It
stays out of ``all`` because it executes real injection campaigns
(minutes, not seconds, on a cold cache).

Observability (see README "Observability" and :mod:`repro.obs`)::

    python -m repro.eval table1 --metrics-out metrics.json   # JSON snapshot
    python -m repro.eval all --events-out events.jsonl       # span stream
    python -m repro.eval table2 --verbose    # progress lines + summary table
    python -m repro.eval all --prometheus-out metrics.prom   # Prometheus text

Static analysis (see README "Static analysis" and :mod:`repro.lint`)::

    python -m repro.eval table1 --lint-report audit.json   # archive the
    # lint + static-MATE-soundness audit of every search the run used
"""

from __future__ import annotations

import argparse
import sys

from repro import obs


def _run_experiment(name: str) -> str:
    if name == "table1":
        from repro.eval.table1 import build_table1

        return build_table1().format()
    if name == "table2":
        from repro.eval.mate_performance import build_mate_performance

        return build_mate_performance("avr").format()
    if name == "table3":
        from repro.eval.mate_performance import build_mate_performance

        return build_mate_performance("msp430").format()
    if name == "figure1":
        from repro.eval.figures import build_figure1

        return build_figure1().format()
    if name == "hafi":
        from repro.eval.hafi_cost import build_hafi_cost

        return build_hafi_cost().format()
    if name == "combined":
        from repro.eval.combined import build_combined

        return build_combined().format()
    if name == "coverage":
        from repro.eval.coverage_table import build_coverage_table

        return build_coverage_table().format()
    if name == "campaign":
        from repro.eval.campaign_table import build_campaign_table
        from repro.store import default_db_path

        return build_campaign_table(store_path=default_db_path()).format()
    if name == "prune":
        from repro.eval.prune_table import build_prune_table

        return build_prune_table().format()
    raise ValueError(f"unknown experiment {name!r}")


def _write_lint_report(path: str) -> None:
    """Audit every search the run used and archive the reports as JSON."""
    import json
    from pathlib import Path

    from repro.eval.context import completed_searches, get_netlist
    from repro.lint import LintTarget, run_lint

    reports = []
    for (core, suffix), search in sorted(completed_searches().items()):
        target = LintTarget.for_search(
            get_netlist(core), search, name=f"{core}-{suffix}"
        )
        reports.append(run_lint(target).to_dict())
    doc = {"version": 1, "reports": reports}
    Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    print(f"lint report: {len(reports)} search audit(s) written to {path}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = sys.argv[1:] if argv is None else argv
    if argv[:1] == ["bench"]:
        # bench has its own option surface; dispatch before the
        # experiment parser rejects its flags.
        from repro.eval.bench import main as bench_main

        return bench_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-eval",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=["table1", "table2", "table3", "figure1", "hafi", "combined",
                 "coverage", "campaign", "prune", "all", "clear-cache"],
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write a JSON snapshot of all metrics/spans to PATH on exit",
    )
    parser.add_argument(
        "--events-out",
        metavar="PATH",
        help="stream structured span events to PATH as JSON lines",
    )
    parser.add_argument(
        "--prometheus-out",
        metavar="PATH",
        help="write the metrics in Prometheus text format to PATH on exit",
    )
    parser.add_argument(
        "--lint-report",
        metavar="PATH",
        help="write a JSON lint report (netlist rules + static MATE "
        "soundness audit) for every MATE search this run used",
    )
    parser.add_argument(
        "--verbose",
        "-v",
        action="store_true",
        help="show TTY progress for long loops and print the metrics summary",
    )
    args = parser.parse_args(argv)

    # Fail fast on unwritable output paths — not after a long experiment run.
    for path in (args.metrics_out, args.events_out, args.prometheus_out,
                 args.lint_report):
        if path:
            from pathlib import Path

            parent = Path(path).parent
            if not parent.is_dir():
                parser.error(f"output directory does not exist: {parent}")

    if args.experiment == "clear-cache":
        from repro.eval.context import clear_disk_cache

        removed = clear_disk_cache()
        print(f"removed {removed} cached artifact(s)")
        return 0

    obs.configure(
        jsonl_path=args.events_out,
        progress=True if args.verbose else None,
    )

    wanted = (
        ["figure1", "table1", "table2", "table3", "hafi", "combined",
         "coverage"]
        if args.experiment == "all"
        else [args.experiment]
    )
    try:
        for name in wanted:
            with obs.span(f"eval/{name}"):
                text = _run_experiment(name)
            print(text)
            print()
        if args.lint_report:
            _write_lint_report(args.lint_report)
    finally:
        if args.metrics_out:
            obs.write_json(args.metrics_out)
        if args.prometheus_out:
            from pathlib import Path

            Path(args.prometheus_out).write_text(
                obs.prometheus_text(), encoding="utf-8"
            )
        obs.clear_sinks()
    if args.verbose:
        print(obs.summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())
