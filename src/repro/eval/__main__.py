"""Command-line experiment runner.

Usage::

    python -m repro.eval table1          # MATE search statistics
    python -m repro.eval table2          # AVR MATE performance
    python -m repro.eval table3          # MSP430 MATE performance
    python -m repro.eval figure1         # example circuit + pruning grid
    python -m repro.eval hafi            # Sec. 6.1 hardware-cost figures
    python -m repro.eval all             # everything above
    python -m repro.eval clear-cache     # drop cached traces/searches
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-eval",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=["table1", "table2", "table3", "figure1", "hafi", "combined",
                 "all", "clear-cache"],
    )
    args = parser.parse_args(argv)

    if args.experiment == "clear-cache":
        from repro.eval.context import clear_disk_cache

        removed = clear_disk_cache()
        print(f"removed {removed} cached artifact(s)")
        return 0

    wanted = (
        ["figure1", "table1", "table2", "table3", "hafi", "combined"]
        if args.experiment == "all"
        else [args.experiment]
    )
    for name in wanted:
        if name == "table1":
            from repro.eval.table1 import build_table1

            print(build_table1().format())
        elif name == "table2":
            from repro.eval.mate_performance import build_mate_performance

            print(build_mate_performance("avr").format())
        elif name == "table3":
            from repro.eval.mate_performance import build_mate_performance

            print(build_mate_performance("msp430").format())
        elif name == "figure1":
            from repro.eval.figures import build_figure1

            print(build_figure1().format())
        elif name == "hafi":
            from repro.eval.hafi_cost import build_hafi_cost

            print(build_hafi_cost().format())
        elif name == "combined":
            from repro.eval.combined import build_combined

            print(build_combined().format())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
