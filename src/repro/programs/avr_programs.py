"""AVR assembly for the two test programs."""

from __future__ import annotations

from repro.cpu.avr.asm import assemble_avr

#: RAM layout shared by the programs and the result-checking tests.
FIB_BASE = 0x10
FIB_COUNT = 11
CONV_SAMPLES_BASE = 0x20
CONV_KERNEL_BASE = 0x40
CONV_OUT_BASE = 0x50
CONV_SAMPLES = 12
CONV_TAPS = 4


def _epilogue(halt: bool, restart_label: str) -> str:
    if halt:
        return "    sleep\n"
    return f"    rjmp {restart_label}\n"


def avr_fib(halt: bool = True) -> list[int]:
    """Fibonacci sequence: fib(1)..fib(11) stored as bytes at FIB_BASE."""
    source = f"""
; fib(): iterative Fibonacci, 8-bit results, one step per subroutine call
start:
    ldi r26, {FIB_BASE}   ; X = output pointer
    ldi r27, 0
    ldi r16, 1            ; a
    ldi r17, 1            ; b
    ldi r18, {FIB_COUNT}  ; iterations
loop:
    rcall fib_step
    dec r18
    brne loop
    out 0x00, r17         ; publish fib({FIB_COUNT})
{_epilogue(halt, "start")}

fib_step:
    st  x+, r16
    mov r19, r16
    add r16, r17
    mov r17, r19
    ret
"""
    return assemble_avr(source)


def avr_conv(halt: bool = True) -> list[int]:
    """Convolution: 12 samples (x) * 4-tap kernel (h), 16-bit accumulate.

    Samples and kernel are written by the program itself (so the trace is
    self-contained); outputs y[n] = sum_k h[k]*x[n+k] are stored as
    (lo, hi) byte pairs at CONV_OUT_BASE. Multiplication is 8x8 shift-add.
    """
    source = f"""
; conv(): 4-tap FIR over 12 samples, shift-add multiply
start:
    ; ---- write sample buffer: x[i] = 3*i + 5
    ldi r26, {CONV_SAMPLES_BASE}
    ldi r27, 0
    ldi r16, 5
    ldi r18, {CONV_SAMPLES + CONV_TAPS - 1}
fill_x:
    st  x+, r16
    subi r16, 0xFD        ; += 3
    dec r18
    brne fill_x
    ; ---- write kernel: h = [1, 2, 3, 2]
    ldi r26, {CONV_KERNEL_BASE}
    ldi r16, 1
    st  x+, r16
    ldi r16, 2
    st  x+, r16
    ldi r16, 3
    st  x+, r16
    ldi r16, 2
    st  x+, r16
    ; ---- outer loop over output samples: r20 = n
    ldi r20, 0
conv_outer:
    ldi r24, 0            ; acc lo
    ldi r25, 0            ; acc hi
    ldi r21, 0            ; k
conv_inner:
    ; load x[n+k]
    ldi r26, {CONV_SAMPLES_BASE}
    ldi r27, 0
    add r26, r20
    add r26, r21
    ld  r22, x
    ; load h[k]
    ldi r26, {CONV_KERNEL_BASE}
    add r26, r21
    ld  r23, x
    rcall mul8            ; r31:r30 = r22 * r23
    ; ---- accumulate
    add r24, r30
    adc r25, r31
    inc r21
    cpi r21, {CONV_TAPS}
    brne conv_inner
    ; ---- store y[n] (lo, hi)
    ldi r26, {CONV_OUT_BASE}
    ldi r27, 0
    add r26, r20
    add r26, r20
    st  x+, r24
    st  x,  r25
    inc r20
    cpi r20, {CONV_SAMPLES}
    brne conv_outer
    out 0x01, r20
{_epilogue(halt, "start")}

; ---- mul8: r31:r30 = r22 * r23 (shift-add; clobbers r17, r19, r22, r23)
mul8:
    ldi r30, 0
    ldi r31, 0
    ldi r17, 0            ; multiplicand high byte
    ldi r19, 8            ; bit counter
mul_loop:
    lsr r23
    brcc mul_skip
    add r30, r22
    adc r31, r17
mul_skip:
    lsl r22
    rol r17
    dec r19
    brne mul_loop
    ret
"""
    return assemble_avr(source)
