"""The paper's two test programs for both cores.

``fib()`` computes a Fibonacci sequence; ``conv()`` convolves a sample
buffer with a 4-tap kernel using shift-add multiplication (the cores have
no hardware multiplier). Both are provided in a halting variant (ends in
SLEEP / CPUOFF — used by the fault-injection campaigns) and a free-running
variant that restarts forever (used to fill the paper's 8500-cycle traces
with live computation).
"""

from repro.programs.avr_programs import avr_conv, avr_fib
from repro.programs.msp430_programs import msp430_conv, msp430_fib

__all__ = ["avr_conv", "avr_fib", "msp430_conv", "msp430_fib"]
