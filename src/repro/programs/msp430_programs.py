"""MSP430 assembly for the two test programs.

RAM starts at byte address 0x0200 (word index 0 in the testbench RAM).
"""

from __future__ import annotations

from repro.cpu.msp430.asm import assemble_msp430

FIB_BASE = 0x0200
FIB_COUNT = 16
FIB_RESULT = 0x0240
CONV_SAMPLES_BASE = 0x0240
CONV_KERNEL_BASE = 0x0280
CONV_OUT_BASE = 0x02A0
CONV_SAMPLES = 12
CONV_TAPS = 4


def _epilogue(halt: bool, restart_label: str) -> str:
    if halt:
        return "    halt\n"
    return f"    jmp {restart_label}\n"


def msp430_fib(halt: bool = True) -> list[int]:
    """Fibonacci sequence: fib(1)..fib(16) stored as words at 0x0200."""
    source = f"""
; fib(): iterative Fibonacci, 16-bit results
start:
    mov #{FIB_BASE}, r4    ; output pointer
    mov #1, r5             ; a
    mov #1, r6             ; b
    mov #{FIB_COUNT}, r7   ; iterations
loop:
    mov r5, 0(r4)
    add #2, r4
    mov r5, r8
    add r6, r5
    mov r8, r6
    sub #1, r7
    jne loop
    mov r6, &{FIB_RESULT}  ; publish fib({FIB_COUNT})
{_epilogue(halt, "start")}
"""
    return assemble_msp430(source)


def msp430_conv(halt: bool = True) -> list[int]:
    """Convolution: 12 samples * 4-tap kernel, 16-bit shift-add multiply."""
    source = f"""
; conv(): 4-tap FIR over 12 samples
start:
    ; ---- write sample buffer: x[i] = 3*i + 5
    mov #{CONV_SAMPLES_BASE}, r4
    mov #5, r5
    mov #{CONV_SAMPLES + CONV_TAPS - 1}, r6
fill_x:
    mov r5, 0(r4)
    add #2, r4
    add #3, r5
    sub #1, r6
    jne fill_x
    ; ---- write kernel: h = [1, 2, 3, 2]
    mov #1, &{CONV_KERNEL_BASE}
    mov #2, &{CONV_KERNEL_BASE + 2}
    mov #3, &{CONV_KERNEL_BASE + 4}
    mov #2, &{CONV_KERNEL_BASE + 6}
    ; ---- outer loop: r7 = n (byte offset 2n kept in r7)
    mov #0, r7
conv_outer:
    mov #0, r10            ; acc
    mov #0, r8             ; k byte offset
conv_inner:
    ; r11 = x[n+k]
    mov #{CONV_SAMPLES_BASE}, r4
    add r7, r4
    add r8, r4
    mov @r4, r11
    ; r12 = h[k]
    mov #{CONV_KERNEL_BASE}, r4
    add r8, r4
    mov @r4, r12
    ; ---- multiply r11 * r12 -> r13 (low 16 bits, shift-add)
    mov #0, r13
mul_loop:
    bit #1, r12
    jz  mul_skip
    add r11, r13
mul_skip:
    rra r12
    bic #0x8000, r12       ; logical shift right
    add r11, r11           ; multiplicand <<= 1
    tst_r12:
    cmp #0, r12
    jne mul_loop
    ; ---- accumulate
    add r13, r10
    add #2, r8
    cmp #{CONV_TAPS * 2}, r8
    jne conv_inner
    ; ---- store y[n]
    mov #{CONV_OUT_BASE}, r4
    add r7, r4
    mov r10, 0(r4)
    add #2, r7
    cmp #{CONV_SAMPLES * 2}, r7
    jne conv_outer
{_epilogue(halt, "start")}
"""
    return assemble_msp430(source)
