"""Per-cycle wire-value traces and VCD interchange."""

from repro.trace.trace import Trace
from repro.trace.vcd import parse_vcd, write_vcd

__all__ = ["Trace", "parse_vcd", "write_vcd"]
