"""Minimal VCD (value change dump) writer and reader.

The paper records VCD files from netlist simulation and feeds them to the
MATE selection. We reproduce that interchange: :func:`write_vcd` emits one
timestamp per clock cycle with change-only dumps, :func:`parse_vcd` samples
a VCD back into a dense :class:`~repro.trace.trace.Trace`.

Only the subset our own writer produces (plus whitespace variations) is
supported: scalar wires, one scope level, ``0``/``1`` values.
"""

from __future__ import annotations

import numpy as np

from repro.trace.trace import Trace

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _id_code(index: int) -> str:
    """VCD shorthand identifier for a wire index (base-94 printable)."""
    if index < 0:
        raise ValueError("negative wire index")
    code = ""
    while True:
        code = _ID_CHARS[index % 94] + code
        index //= 94
        if index == 0:
            return code


def write_vcd(trace: Trace, module: str = "top", timescale: str = "1ns") -> str:
    """Render a trace as VCD text (change-only dumps per cycle)."""
    lines = [
        "$date reproduction run $end",
        "$version repro.trace.vcd $end",
        f"$timescale {timescale} $end",
        f"$scope module {module} $end",
    ]
    codes = [_id_code(i) for i in range(trace.num_wires)]
    for wire, code in zip(trace.wire_names, codes):
        lines.append(f"$var wire 1 {code} {wire} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    matrix = trace.matrix
    previous: np.ndarray | None = None
    for cycle in range(trace.num_cycles):
        row = matrix[cycle]
        lines.append(f"#{cycle}")
        if previous is None:
            lines.append("$dumpvars")
            changed = np.arange(trace.num_wires)
        else:
            changed = np.nonzero(row != previous)[0]
        for index in changed:
            lines.append(f"{row[index]}{codes[index]}")
        if previous is None:
            lines.append("$end")
        previous = row
    lines.append(f"#{trace.num_cycles}")
    lines.append("")
    return "\n".join(lines)


def parse_vcd(text: str) -> Trace:
    """Parse VCD text into a dense trace (one sample per timestamp)."""
    wires: list[str] = []
    code_to_index: dict[str, int] = {}
    lines = iter(text.splitlines())

    # Header: collect $var declarations until $enddefinitions.
    for line in lines:
        tokens = line.split()
        if not tokens:
            continue
        if tokens[0] == "$var":
            # $var wire 1 <code> <name> $end
            if len(tokens) < 6 or tokens[1] != "wire" or tokens[2] != "1":
                raise ValueError(f"unsupported $var declaration: {line!r}")
            code, name = tokens[3], tokens[4]
            code_to_index[code] = len(wires)
            wires.append(name)
        elif tokens[0] == "$enddefinitions":
            break

    current = np.zeros(len(wires), dtype=np.uint8)
    initialized = np.zeros(len(wires), dtype=bool)
    rows: list[np.ndarray] = []
    have_time = False
    pending_changes = False

    def flush() -> None:
        if have_time:
            rows.append(current.copy())

    for line in lines:
        line = line.strip()
        if not line or line.startswith("$"):
            continue
        if line.startswith("#"):
            flush()
            have_time = True
            pending_changes = False
            continue
        value_char, code = line[0], line[1:]
        if value_char not in "01":
            raise ValueError(f"unsupported value change: {line!r}")
        index = code_to_index.get(code)
        if index is None:
            raise ValueError(f"value change for undeclared wire code {code!r}")
        current[index] = int(value_char)
        initialized[index] = True
        pending_changes = True

    # A trace that ends with dangling changes (no closing timestamp, as some
    # tools emit) still gets its final sample.
    if pending_changes:
        flush()

    if not initialized.all() and rows:
        missing = [wires[i] for i in np.nonzero(~initialized)[0][:5]]
        raise ValueError(f"wires never dumped: {missing}")
    matrix = np.vstack(rows) if rows else np.zeros((0, len(wires)), dtype=np.uint8)
    return Trace(wires, matrix)
