"""The :class:`Trace` container: one bit per (cycle, wire).

A trace is the reproduction of the paper's VCD dumps: for every simulated
clock cycle, the value of every wire of the netlist. Values of flip-flop Q
wires are the state *during* the cycle (i.e. what the combinational logic
saw); D wires therefore hold the next state.

The matrix is dense ``uint8`` (cycles × wires) — a full 8500-cycle CPU trace
is tens of megabytes, which beats bit-packing for vectorized MATE replay.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np


class Trace:
    """Dense per-cycle values for a fixed, ordered set of wires."""

    def __init__(self, wire_names: Sequence[str], matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=np.uint8)
        if matrix.ndim != 2:
            raise ValueError(f"trace matrix must be 2-D, got shape {matrix.shape}")
        if matrix.shape[1] != len(wire_names):
            raise ValueError(
                f"matrix has {matrix.shape[1]} columns but {len(wire_names)} wire names"
            )
        if matrix.size and matrix.max() > 1:
            raise ValueError("trace matrix contains non-binary values")
        self.wire_names: tuple[str, ...] = tuple(wire_names)
        self.matrix = matrix
        self._index: dict[str, int] = {w: i for i, w in enumerate(self.wire_names)}

    @property
    def num_cycles(self) -> int:
        """Number of recorded clock cycles."""
        return self.matrix.shape[0]

    @property
    def num_wires(self) -> int:
        """Number of traced wires (matrix columns)."""
        return self.matrix.shape[1]

    def __contains__(self, wire: str) -> bool:
        return wire in self._index

    def column_index(self, wire: str) -> int:
        """Matrix column of a wire (KeyError if untraced)."""
        try:
            return self._index[wire]
        except KeyError:
            raise KeyError(f"wire {wire!r} not in trace") from None

    def wire(self, wire: str) -> np.ndarray:
        """All per-cycle values of one wire (length ``num_cycles``)."""
        return self.matrix[:, self.column_index(wire)]

    def value(self, cycle: int, wire: str) -> int:
        """Value of one wire in one cycle."""
        return int(self.matrix[cycle, self.column_index(wire)])

    def cycle_values(self, cycle: int) -> dict[str, int]:
        """All wire values of one cycle as a dict (debug/verify helper)."""
        row = self.matrix[cycle]
        return {wire: int(row[i]) for wire, i in self._index.items()}

    def columns(self, wires: Iterable[str]) -> np.ndarray:
        """Sub-matrix for the given wires, in the given order."""
        idx = [self.column_index(w) for w in wires]
        return self.matrix[:, idx]

    def word(self, cycle: int, wires: Sequence[str]) -> int:
        """Assemble an integer from wires given LSB-first (debug helper)."""
        value = 0
        for bit, wire in enumerate(wires):
            value |= self.value(cycle, wire) << bit
        return value

    def slice_cycles(self, start: int, stop: int) -> "Trace":
        """A trace restricted to cycles [start, stop)."""
        return Trace(self.wire_names, self.matrix[start:stop].copy())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self.wire_names == other.wire_names and np.array_equal(
            self.matrix, other.matrix
        )

    def __repr__(self) -> str:
        return f"Trace({self.num_cycles} cycles x {self.num_wires} wires)"
