"""Structural netlist validation.

Checks the invariants the rest of the pipeline (simulation, cone analysis,
MATE search) relies on: single drivers, no dangling wires, no combinational
cycles, known cells, complete pin maps.
"""

from __future__ import annotations

from repro.netlist.netlist import CONST_WIRES, Gate, Netlist


class NetlistError(Exception):
    """Raised when a netlist violates a structural invariant."""

    def __init__(self, problems: list[str]) -> None:
        self.problems = problems
        super().__init__("; ".join(problems))


def validate_netlist(netlist: Netlist, allow_dangling_outputs: bool = True) -> None:
    """Raise :class:`NetlistError` if the netlist is structurally broken.

    ``allow_dangling_outputs`` tolerates gate outputs that nothing reads
    (harmless, and common right after dead-logic elimination keeps observable
    gates only).
    """
    problems: list[str] = []

    # Every cell must exist and (checked at add time, re-checked here for
    # netlists built via i/o paths) every pin must be wired.
    for gate in netlist.gates.values():
        if gate.cell not in netlist.library:
            problems.append(f"gate {gate.name}: unknown cell {gate.cell}")
            continue
        cell = netlist.library[gate.cell]
        missing = set(cell.inputs) - set(gate.inputs)
        if missing:
            problems.append(f"gate {gate.name}: unconnected pins {sorted(missing)}")

    # Single-driver rule (driver_map raises on double drive).
    try:
        drivers = netlist.driver_map()
    except ValueError as exc:
        raise NetlistError([str(exc)]) from exc

    # Every read wire must have a driver.
    for gate in netlist.gates.values():
        for pin, wire in gate.inputs.items():
            if wire not in drivers:
                problems.append(f"gate {gate.name}.{pin}: undriven wire {wire}")
    for dff in netlist.dffs.values():
        if dff.d not in drivers:
            problems.append(f"DFF {dff.name}.D: undriven wire {dff.d}")
    for wire in netlist.outputs:
        if wire not in drivers:
            problems.append(f"primary output {wire} undriven")

    # Primary inputs must not also be driven internally.
    for wire in netlist.inputs:
        driver = drivers.get(wire)
        if driver not in ("input",):
            problems.append(f"primary input {wire} also driven by {driver}")

    # Constants are reserved.
    for gate in netlist.gates.values():
        if gate.output in CONST_WIRES:
            problems.append(f"gate {gate.name} drives constant {gate.output}")

    # No combinational cycles.
    try:
        netlist.topological_gates()
    except ValueError as exc:
        problems.append(str(exc))

    if not allow_dangling_outputs:
        readers = netlist.reader_map()
        sinks = set(netlist.outputs) | netlist.dff_d_wires()
        for gate in netlist.gates.values():
            if gate.output not in sinks and gate.output not in readers:
                problems.append(f"gate {gate.name}: dangling output {gate.output}")

    if problems:
        raise NetlistError(problems)


def check_is_gate(obj: object) -> Gate:
    """Narrowing helper: assert a driver-map entry is a Gate."""
    if not isinstance(obj, Gate):
        raise TypeError(f"expected a Gate driver, got {obj!r}")
    return obj
