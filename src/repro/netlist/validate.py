"""Structural netlist validation.

Checks the invariants the rest of the pipeline (simulation, cone analysis,
MATE search) relies on: single drivers, no dangling wires, no combinational
cycles, known cells, complete pin maps.

Since the introduction of :mod:`repro.lint`, the individual checks live as
``validate``-tagged rules in :mod:`repro.lint.rules_netlist`, where they
report *all* problems as structured diagnostics instead of bailing at the
first batch. :func:`validate_netlist` remains the back-compat entry point:
it runs that rule subset and raises :class:`NetlistError` when anything is
found.
"""

from __future__ import annotations

from repro.netlist.netlist import Gate, Netlist


class NetlistError(Exception):
    """Raised when a netlist violates a structural invariant."""

    def __init__(self, problems: list[str]) -> None:
        self.problems = problems
        super().__init__("; ".join(problems))


def validate_netlist(netlist: Netlist, allow_dangling_outputs: bool = True) -> None:
    """Raise :class:`NetlistError` if the netlist is structurally broken.

    ``allow_dangling_outputs`` tolerates gate outputs that nothing reads
    (harmless, and common right after dead-logic elimination keeps observable
    gates only); strict mode escalates the ``net.dead-gate`` lint rule into
    the fatal set.

    For non-fatal reporting — severities, locations, fix hints, the full
    rule catalog — run :func:`repro.lint.run_lint` (or ``python -m
    repro.lint``) instead.
    """
    # Imported lazily: repro.lint imports the netlist data model, so a
    # module-level import here would be circular via repro.netlist.__init__.
    from repro.lint.registry import LintConfig, LintTarget, default_registry

    tags = {"validate"} if allow_dangling_outputs else {"validate", "strict-validate"}
    target = LintTarget.for_netlist(netlist)
    config = LintConfig()
    problems: list[str] = []
    for rule in default_registry().select(tags=tags):
        problems.extend(d.message for d in rule.check(target, config))
    if problems:
        raise NetlistError(problems)


def check_is_gate(obj: object) -> Gate:
    """Narrowing helper: assert a driver-map entry is a Gate."""
    if not isinstance(obj, Gate):
        raise TypeError(f"expected a Gate driver, got {obj!r}")
    return obj
