"""JSON interchange for netlists (compact, lossless, attribute-preserving)."""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.cells.library import Library
from repro.netlist.netlist import Netlist

FORMAT_VERSION = 1


def netlist_content_hash(netlist: Netlist) -> str:
    """Short content hash of a netlist's full JSON serialization.

    Keys every artifact derived from a netlist (traces, MATE searches,
    campaign journals): two netlists hash equal iff their JSON forms —
    structure *and* attributes — are identical.
    """
    return hashlib.sha256(netlist_to_json(netlist).encode()).hexdigest()[:16]


def netlist_to_json(netlist: Netlist) -> str:
    """Serialize a netlist (including attributes) to a JSON string."""
    doc: dict[str, Any] = {
        "format": FORMAT_VERSION,
        "name": netlist.name,
        "library": netlist.library.name,
        "inputs": list(netlist.inputs),
        "outputs": list(netlist.outputs),
        "gates": [
            {"name": g.name, "cell": g.cell, "inputs": g.inputs, "output": g.output}
            for g in netlist.gates.values()
        ],
        "dffs": [
            {"name": f.name, "d": f.d, "q": f.q, "init": f.init}
            for f in netlist.dffs.values()
        ],
        "attributes": _jsonable_attributes(netlist.attributes),
    }
    return json.dumps(doc, indent=1)


def _jsonable_attributes(attributes: dict[str, object]) -> dict[str, object]:
    out: dict[str, object] = {}
    for key, value in attributes.items():
        if isinstance(value, (set, frozenset)):
            out[key] = sorted(value)  # type: ignore[type-var]
        else:
            out[key] = value
    return out


def netlist_from_json(text: str, library: Library) -> Netlist:
    """Deserialize a netlist produced by :func:`netlist_to_json`."""
    doc = json.loads(text)
    if doc.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported netlist JSON format {doc.get('format')!r}")
    if doc.get("library") != library.name:
        raise ValueError(
            f"netlist was written against library {doc.get('library')!r}, "
            f"got {library.name!r}"
        )
    netlist = Netlist(doc["name"], library)
    for wire in doc["inputs"]:
        netlist.add_input(wire)
    for wire in doc["outputs"]:
        netlist.add_output(wire)
    for gate in doc["gates"]:
        netlist.add_gate(gate["name"], gate["cell"], gate["inputs"], gate["output"])
    for dff in doc["dffs"]:
        netlist.add_dff(dff["name"], dff["d"], dff["q"], dff["init"])
    netlist.attributes = dict(doc.get("attributes", {}))
    return netlist
