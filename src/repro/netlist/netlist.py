"""The synchronous gate-level netlist data model.

A :class:`Netlist` is the paper's system model (Sec. 2): a boolean network
``N`` that maps (primary inputs, current flip-flop state) to (primary
outputs, next flip-flop state). Wires are plain strings; combinational cell
instances are :class:`Gate` objects; state elements are :class:`DFF` objects
with an implicit common clock.

Constant wires are modelled with the two reserved wire names ``"1'b0"`` and
``"1'b1"``, which are always defined and never faultable.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.cells.library import Library

#: Reserved always-0 / always-1 wire names.
CONST0 = "1'b0"
CONST1 = "1'b1"
CONST_WIRES = frozenset((CONST0, CONST1))


class Gate:
    """A combinational standard-cell instance."""

    __slots__ = ("name", "cell", "inputs", "output")

    def __init__(
        self, name: str, cell: str, inputs: Mapping[str, str], output: str
    ) -> None:
        self.name = name
        self.cell = cell
        self.inputs: dict[str, str] = dict(inputs)
        self.output = output

    def input_wires(self) -> tuple[str, ...]:
        """Wires connected to this gate's input pins."""
        return tuple(self.inputs.values())

    def pins_of_wire(self, wire: str) -> tuple[str, ...]:
        """All input pins of this gate that the given wire is connected to."""
        return tuple(pin for pin, w in self.inputs.items() if w == wire)

    def __repr__(self) -> str:
        pins = ", ".join(f".{p}({w})" for p, w in self.inputs.items())
        return f"Gate({self.cell} {self.name} ({pins}) -> {self.output})"


class DFF:
    """A D flip-flop instance (state element)."""

    __slots__ = ("name", "d", "q", "init")

    def __init__(self, name: str, d: str, q: str, init: int = 0) -> None:
        if init not in (0, 1):
            raise ValueError(f"DFF {name}: init must be 0 or 1, got {init!r}")
        self.name = name
        self.d = d
        self.q = q
        self.init = init

    def __repr__(self) -> str:
        return f"DFF({self.name}: D={self.d} -> Q={self.q}, init={self.init})"


class Netlist:
    """A synchronous circuit: primary i/o, combinational gates, flip-flops."""

    def __init__(self, name: str, library: Library) -> None:
        self.name = name
        self.library = library
        self.inputs: list[str] = []
        self.outputs: list[str] = []
        self.gates: dict[str, Gate] = {}
        self.dffs: dict[str, DFF] = {}
        #: Free-form metadata (e.g. which DFFs belong to the register file).
        self.attributes: dict[str, object] = {}
        self._drivers: dict[str, object] | None = None
        self._readers: dict[str, list[tuple[Gate, str]]] | None = None
        self._topo: list[Gate] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        self._drivers = None
        self._readers = None
        self._topo = None

    def add_input(self, wire: str) -> str:
        """Declare a primary-input wire."""
        if wire in self.inputs:
            raise ValueError(f"duplicate primary input {wire}")
        self.inputs.append(wire)
        self._invalidate()
        return wire

    def add_output(self, wire: str) -> str:
        """Declare a primary-output wire (must be driven somewhere)."""
        if wire in self.outputs:
            raise ValueError(f"duplicate primary output {wire}")
        self.outputs.append(wire)
        self._invalidate()
        return wire

    def add_gate(
        self, name: str, cell: str, inputs: Mapping[str, str], output: str
    ) -> Gate:
        """Instantiate a combinational cell; pins are checked against the library."""
        if name in self.gates or name in self.dffs:
            raise ValueError(f"duplicate instance name {name}")
        cell_def = self.library[cell]
        if cell_def.sequential:
            raise ValueError(f"use add_dff for sequential cell {cell}")
        missing = set(cell_def.inputs) - set(inputs)
        extra = set(inputs) - set(cell_def.inputs)
        if missing or extra:
            raise ValueError(
                f"gate {name} ({cell}): missing pins {sorted(missing)}, "
                f"unknown pins {sorted(extra)}"
            )
        if output in CONST_WIRES:
            raise ValueError(f"gate {name} drives constant wire {output}")
        gate = Gate(name, cell, inputs, output)
        self.gates[name] = gate
        self._invalidate()
        return gate

    def add_dff(self, name: str, d: str, q: str, init: int = 0) -> DFF:
        """Instantiate a D flip-flop with the given reset value."""
        if name in self.gates or name in self.dffs:
            raise ValueError(f"duplicate instance name {name}")
        if q in CONST_WIRES:
            raise ValueError(f"DFF {name} drives constant wire {q}")
        dff = DFF(name, d, q, init)
        self.dffs[name] = dff
        self._invalidate()
        return dff

    # ------------------------------------------------------------------
    # graph queries
    # ------------------------------------------------------------------
    def wires(self) -> set[str]:
        """Every wire name mentioned anywhere in the netlist."""
        wires: set[str] = set(self.inputs) | set(self.outputs) | set(CONST_WIRES)
        for gate in self.gates.values():
            wires.update(gate.inputs.values())
            wires.add(gate.output)
        for dff in self.dffs.values():
            wires.add(dff.d)
            wires.add(dff.q)
        return wires

    def driver_map(self) -> dict[str, object]:
        """Map wire -> driving Gate, DFF, or the string ``"input"``/``"const"``."""
        if self._drivers is None:
            drivers: dict[str, object] = {CONST0: "const", CONST1: "const"}
            for wire in self.inputs:
                drivers[wire] = "input"
            for gate in self.gates.values():
                if gate.output in drivers:
                    raise ValueError(f"wire {gate.output} driven more than once")
                drivers[gate.output] = gate
            for dff in self.dffs.values():
                if dff.q in drivers:
                    raise ValueError(f"wire {dff.q} driven more than once")
                drivers[dff.q] = dff
            self._drivers = drivers
        return self._drivers

    def reader_map(self) -> dict[str, list[tuple[Gate, str]]]:
        """Map wire -> list of (gate, pin) combinational readers."""
        if self._readers is None:
            readers: dict[str, list[tuple[Gate, str]]] = {}
            for gate in self.gates.values():
                for pin, wire in gate.inputs.items():
                    readers.setdefault(wire, []).append((gate, pin))
            self._readers = readers
        return self._readers

    def dff_d_wires(self) -> set[str]:
        """All flip-flop D (next-state) wires."""
        return {dff.d for dff in self.dffs.values()}

    def dff_q_wires(self) -> set[str]:
        """All flip-flop Q (current-state) wires."""
        return {dff.q for dff in self.dffs.values()}

    def endpoints(self) -> set[str]:
        """Cycle-boundary wires: DFF D-pins and primary outputs."""
        return self.dff_d_wires() | set(self.outputs)

    def sources(self) -> set[str]:
        """Cycle-start wires: DFF Q-pins, primary inputs, constants."""
        return self.dff_q_wires() | set(self.inputs) | set(CONST_WIRES)

    def topological_gates(self) -> list[Gate]:
        """Combinational gates in evaluation order (sources first).

        Raises :class:`ValueError` on a combinational cycle.
        """
        if self._topo is not None:
            return self._topo
        # Kahn's algorithm over gate->gate edges.
        readers = self.reader_map()
        indegree: dict[str, int] = {}
        drivers = self.driver_map()
        for name, gate in self.gates.items():
            count = 0
            for wire in gate.inputs.values():
                driver = drivers.get(wire)
                if isinstance(driver, Gate):
                    count += 1
            indegree[name] = count
        ready = [g for g in self.gates.values() if indegree[g.name] == 0]
        order: list[Gate] = []
        while ready:
            gate = ready.pop()
            order.append(gate)
            for reader, _pin in readers.get(gate.output, ()):
                indegree[reader.name] -= 1
                if indegree[reader.name] == 0:
                    ready.append(reader)
        if len(order) != len(self.gates):
            stuck = sorted(n for n, deg in indegree.items() if deg > 0)
            raise ValueError(
                f"combinational cycle in netlist {self.name}; "
                f"{len(stuck)} gates unplaced (e.g. {stuck[:5]})"
            )
        self._topo = order
        return order

    def logic_levels(self) -> dict[str, int]:
        """Map each gate name to its logic depth (sources = level 0)."""
        drivers = self.driver_map()
        levels: dict[str, int] = {}
        for gate in self.topological_gates():
            level = 0
            for wire in gate.inputs.values():
                driver = drivers.get(wire)
                if isinstance(driver, Gate):
                    level = max(level, levels[driver.name] + 1)
                else:
                    level = max(level, 0)
            levels[gate.name] = level
        return levels

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def register_file_dffs(self) -> set[str]:
        """Names of DFFs tagged as register-file state (attribute or prefix)."""
        tagged = self.attributes.get("register_file_dffs")
        if tagged is not None:
            return set(tagged)  # type: ignore[arg-type]
        return {name for name in self.dffs if name.startswith("rf_")}

    def non_register_file_dffs(self) -> set[str]:
        """DFF names outside the register file (the paper's 'FF w/o RF')."""
        return set(self.dffs) - self.register_file_dffs()

    def total_area(self) -> float:
        """Summed cell area (library units; one inverter = 1.0)."""
        area = sum(self.library[g.cell].area for g in self.gates.values())
        area += sum(self.library["DFF"].area for _ in self.dffs)
        return area

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}: {len(self.inputs)} in, {len(self.outputs)} out, "
            f"{len(self.gates)} gates, {len(self.dffs)} DFFs)"
        )


def merge_wire_sets(netlists: Iterable[Netlist]) -> set[str]:
    """Union of all wire names across several netlists (debug helper)."""
    wires: set[str] = set()
    for netlist in netlists:
        wires |= netlist.wires()
    return wires
