"""Gate-level netlist model, graph queries, and interchange formats."""

from repro.netlist.json_io import (
    netlist_content_hash,
    netlist_from_json,
    netlist_to_json,
)
from repro.netlist.netlist import DFF, Gate, Netlist
from repro.netlist.stats import NetlistStats, netlist_stats
from repro.netlist.validate import NetlistError, validate_netlist
from repro.netlist.verilog import netlist_to_verilog, parse_verilog

__all__ = [
    "DFF",
    "Gate",
    "Netlist",
    "NetlistError",
    "NetlistStats",
    "netlist_content_hash",
    "netlist_from_json",
    "netlist_stats",
    "netlist_to_json",
    "netlist_to_verilog",
    "parse_verilog",
    "validate_netlist",
]
