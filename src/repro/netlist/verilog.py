"""Structural Verilog writer and (subset) reader.

The emitted format is plain flattened structural Verilog — one scalar wire
per bit, one cell instance per line — the same shape a Design Compiler
netlist has after ``write -format verilog``. The reader accepts exactly that
subset (plus whitespace/comments), which is enough to round-trip our own
netlists and to import comparable third-party gate-level netlists.

Flip-flops are emitted as ``DFF #(.INIT(1'b0)) name (.D(d), .CK(clk), .Q(q));``;
the clock pin is cosmetic (the netlist model has an implicit common clock).
"""

from __future__ import annotations

import re

from repro.cells.library import Library
from repro.netlist.netlist import CONST0, CONST1, Netlist

_IDENT = r"[A-Za-z_][A-Za-z0-9_$]*"
_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<const>1'b[01])
  | (?P<ident>%s)
  | (?P<punct>[()\[\];,.#=])
  | (?P<ws>\s+)
""" % _IDENT,
    re.VERBOSE | re.DOTALL,
)


class VerilogSyntaxError(ValueError):
    """Raised when the reader hits something outside the supported subset."""


def netlist_to_verilog(netlist: Netlist) -> str:
    """Render a netlist as flattened structural Verilog."""
    ports = ["clk", *netlist.inputs, *netlist.outputs]
    lines = [f"module {netlist.name} ({', '.join(ports)});"]
    lines.append("  input clk;")
    for wire in netlist.inputs:
        lines.append(f"  input {wire};")
    for wire in netlist.outputs:
        lines.append(f"  output {wire};")

    internal = netlist.wires() - set(netlist.inputs) - set(netlist.outputs)
    internal -= {CONST0, CONST1}
    for wire in sorted(internal):
        lines.append(f"  wire {wire};")
    lines.append("")

    for gate in netlist.gates.values():
        pins = ", ".join(f".{pin}({wire})" for pin, wire in sorted(gate.inputs.items()))
        cell = netlist.library[gate.cell]
        lines.append(
            f"  {gate.cell} {gate.name} ({pins}, .{cell.output}({gate.output}));"
        )
    for dff in netlist.dffs.values():
        lines.append(
            f"  DFF #(.INIT(1'b{dff.init})) {dff.name} "
            f"(.D({dff.d}), .CK(clk), .Q({dff.q}));"
        )
    lines.append("endmodule")
    lines.append("")
    return "\n".join(lines)


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise VerilogSyntaxError(
                f"unexpected character {text[pos]!r} at offset {pos}"
            )
        pos = match.end()
        if match.lastgroup in ("comment", "ws"):
            continue
        tokens.append(match.group())
    return tokens


class _TokenStream:
    def __init__(self, tokens: list[str]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> str | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise VerilogSyntaxError("unexpected end of input")
        self._pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise VerilogSyntaxError(f"expected {token!r}, got {got!r}")


def parse_verilog(text: str, library: Library) -> Netlist:
    """Parse flattened structural Verilog into a :class:`Netlist`."""
    stream = _TokenStream(_tokenize(text))
    stream.expect("module")
    name = stream.next()
    stream.expect("(")
    while stream.next() != ")":
        pass
    stream.expect(";")

    netlist = Netlist(name, library)
    declared_wires: set[str] = set()

    while True:
        token = stream.next()
        if token == "endmodule":
            break
        if token in ("input", "output", "wire"):
            names = []
            while True:
                names.append(stream.next())
                sep = stream.next()
                if sep == ";":
                    break
                if sep != ",":
                    raise VerilogSyntaxError(f"bad declaration separator {sep!r}")
            for wire in names:
                if token == "input":
                    if wire != "clk":
                        netlist.add_input(wire)
                elif token == "output":
                    netlist.add_output(wire)
                else:
                    declared_wires.add(wire)
            continue
        # Cell instance: CELL [#(.INIT(1'bX))] name ( .PIN(wire), ... );
        cell_name = token
        init = 0
        if stream.peek() == "#":
            stream.expect("#")
            stream.expect("(")
            stream.expect(".")
            param = stream.next()
            stream.expect("(")
            value = stream.next()
            stream.expect(")")
            stream.expect(")")
            if param != "INIT" or value not in ("1'b0", "1'b1"):
                raise VerilogSyntaxError(f"unsupported parameter .{param}({value})")
            init = int(value[-1])
        instance = stream.next()
        stream.expect("(")
        pins: dict[str, str] = {}
        while True:
            stream.expect(".")
            pin = stream.next()
            stream.expect("(")
            wire = stream.next()
            stream.expect(")")
            pins[pin] = wire
            sep = stream.next()
            if sep == ")":
                break
            if sep != ",":
                raise VerilogSyntaxError(f"bad pin separator {sep!r}")
        stream.expect(";")

        if cell_name == "DFF":
            pins.pop("CK", None)
            if set(pins) != {"D", "Q"}:
                raise VerilogSyntaxError(f"DFF {instance}: bad pins {sorted(pins)}")
            netlist.add_dff(instance, d=pins["D"], q=pins["Q"], init=init)
        else:
            if cell_name not in library:
                raise VerilogSyntaxError(
                    f"unknown cell {cell_name} (instance {instance})"
                )
            cell = library[cell_name]
            output = pins.pop(cell.output, None)
            if output is None:
                raise VerilogSyntaxError(
                    f"instance {instance}: output pin .{cell.output} not connected"
                )
            netlist.add_gate(instance, cell_name, pins, output)
    return netlist
