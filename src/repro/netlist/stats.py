"""Netlist statistics (feeds the characterization rows of Table 1)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class NetlistStats:
    """Summary statistics of a synthesized netlist."""

    name: str
    num_inputs: int
    num_outputs: int
    num_gates: int
    num_dffs: int
    num_register_file_dffs: int
    total_area: float
    max_logic_depth: int
    cell_histogram: dict[str, int] = field(default_factory=dict)

    @property
    def num_non_rf_dffs(self) -> int:
        """Flip-flops outside the register file."""
        return self.num_dffs - self.num_register_file_dffs

    def format(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"netlist {self.name}",
            f"  primary inputs : {self.num_inputs}",
            f"  primary outputs: {self.num_outputs}",
            f"  gates          : {self.num_gates}",
            f"  flip-flops     : {self.num_dffs} "
            f"({self.num_register_file_dffs} in register file)",
            f"  area           : {self.total_area:.1f}",
            f"  logic depth    : {self.max_logic_depth}",
        ]
        for cell, count in sorted(self.cell_histogram.items()):
            lines.append(f"    {cell:8s} x{count}")
        return "\n".join(lines)


def netlist_stats(netlist) -> NetlistStats:
    """Compute :class:`NetlistStats` for a netlist."""
    levels = netlist.logic_levels()
    histogram = Counter(gate.cell for gate in netlist.gates.values())
    return NetlistStats(
        name=netlist.name,
        num_inputs=len(netlist.inputs),
        num_outputs=len(netlist.outputs),
        num_gates=len(netlist.gates),
        num_dffs=len(netlist.dffs),
        num_register_file_dffs=len(netlist.register_file_dffs()),
        total_area=netlist.total_area(),
        max_logic_depth=max(levels.values(), default=0) + 1 if levels else 0,
        cell_histogram=dict(histogram),
    )
