"""Exporters: JSON snapshot, human-readable summary, Prometheus text.

All exporters read a point-in-time snapshot of a
:class:`~repro.obs.metrics.MetricsRegistry` (the global one by default) and
never mutate it, so they can be called repeatedly mid-run.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path

from repro.obs.metrics import MetricsRegistry, get_registry, split_labeled_name


def snapshot(registry: MetricsRegistry | None = None) -> dict[str, object]:
    """Whole-registry state as a JSON-serializable dict.

    Layout::

        {"counters":   {name: int},
         "gauges":     {name: float},
         "histograms": {name: {count, sum, min, max, mean, p50, p90, p99}},
         "spans":      {path: {count, total_seconds, min_seconds,
                               max_seconds, mean_seconds}}}
    """
    registry = registry or get_registry()
    return {
        "counters": {n: c.value for n, c in sorted(registry.counters.items())},
        "gauges": {n: g.value for n, g in sorted(registry.gauges.items())},
        "histograms": {
            n: h.snapshot() for n, h in sorted(registry.histograms.items())
        },
        "spans": {p: s.snapshot() for p, s in sorted(registry.spans.items())},
    }


def write_json(path: str | Path, registry: MetricsRegistry | None = None) -> Path:
    """Write :func:`snapshot` to ``path`` as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(snapshot(registry), indent=2) + "\n", encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# Human-readable summary
# ----------------------------------------------------------------------
def _format_seconds(seconds: float) -> str:
    if seconds >= 100:
        return f"{seconds:.0f}s"
    if seconds >= 1:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.2f}ms"


def _table(title: str, headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(headers))
    ]
    lines = [title]
    lines.append("  " + "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  " + "-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in rows:
        lines.append(
            "  "
            + "  ".join(
                cell.ljust(w) if i == 0 else cell.rjust(w)
                for i, (cell, w) in enumerate(zip(row, widths))
            ).rstrip()
        )
    return lines


def aligned_table(title: str, headers: list[str], rows: list[list[str]]) -> str:
    """One aligned text table (first column left-, rest right-justified).

    The same renderer :func:`summary` uses, exposed for other CLIs
    (``repro.fi status``, ``repro.store``) so every text table in the
    toolchain lines up the same way.
    """
    return "\n".join(_table(title, headers, rows))


def summary(registry: MetricsRegistry | None = None) -> str:
    """Render every metric and span aggregate as aligned text tables."""
    registry = registry or get_registry()
    sections: list[str] = []

    spans = sorted(registry.spans.items())
    if spans:
        # Indent by the number of *recorded* ancestor paths so span names
        # that themselves contain "/" (e.g. "sim/run") don't fake a level.
        paths = {path for path, _ in spans}

        def _ancestry(path: str) -> tuple[int, str]:
            parts = path.split("/")
            for cut in range(len(parts) - 1, 0, -1):
                prefix = "/".join(parts[:cut])
                if prefix in paths:
                    depth, _ = _ancestry(prefix)
                    return depth + 1, path[len(prefix) + 1 :]
            return 0, path

        rows = []
        for path, stats in spans:
            depth, label = _ancestry(path)
            rows.append(
                [
                    "  " * depth + label,
                    str(stats.count),
                    _format_seconds(stats.total_seconds),
                    _format_seconds(stats.total_seconds / stats.count)
                    if stats.count
                    else "-",
                ]
            )
        sections.append(
            "\n".join(_table("spans", ["path", "count", "total", "mean"], rows))
        )

    counters = sorted(registry.counters.items())
    if counters:
        rows = [[name, f"{c.value:,}"] for name, c in counters]
        sections.append("\n".join(_table("counters", ["name", "value"], rows)))

    gauges = sorted(registry.gauges.items())
    if gauges:
        rows = [[name, f"{g.value:g}"] for name, g in gauges]
        sections.append("\n".join(_table("gauges", ["name", "value"], rows)))

    histograms = sorted(registry.histograms.items())
    if histograms:
        rows = []
        for name, hist in histograms:
            if not hist.count:
                rows.append([name, "0", "-", "-", "-", "-"])
                continue
            rows.append(
                [
                    name,
                    f"{hist.count:,}",
                    f"{hist.mean:g}",
                    f"{hist.percentile(50):g}",
                    f"{hist.min:g}",
                    f"{hist.max:g}",
                ]
            )
        sections.append(
            "\n".join(
                _table(
                    "histograms",
                    ["name", "count", "mean", "p50", "min", "max"],
                    rows,
                )
            )
        )

    if not sections:
        return "no metrics recorded"
    return "\n\n".join(sections)


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------
def _prom_labels(labels: dict[str, str]) -> str:
    """Render a label dict as a Prometheus label set, escaped and sanitized.

    Label *names* must match ``[a-zA-Z_][a-zA-Z0-9_]*`` — hostile characters
    are replaced with ``_`` (and a leading digit prefixed). Label *values*
    may contain anything once backslash, double-quote, and newline are
    escaped per the exposition format.
    """
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        name = re.sub(r"[^a-zA-Z0-9_]", "_", key)
        if not name or name[0].isdigit():
            name = f"_{name}"
        value = (
            str(labels[key])
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
        )
        parts.append(f'{name}="{value}"')
    return "{" + ",".join(parts) + "}"


def _prom_name(name: str, suffix: str = "") -> tuple[str, str]:
    """``(metric_name, label_set)`` for one (possibly labeled) registry name.

    The collector stores per-worker series as ``name{worker=n}``
    (:func:`repro.obs.metrics.labeled_name`); those labels become real
    Prometheus labels instead of being mangled into the metric name.
    """
    base, labels = split_labeled_name(name)
    sanitized = re.sub(r"[^a-zA-Z0-9_]", "_", base)
    return f"repro_{sanitized}{suffix}", _prom_labels(labels)


def _prom_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def _merge_labels(labels: str, extra: str) -> str:
    """Append one ``name="value"`` pair to a rendered label set."""
    if not labels:
        return "{" + extra + "}"
    return labels[:-1] + "," + extra + "}"


def prometheus_text(registry: MetricsRegistry | None = None) -> str:
    """Registry snapshot in the Prometheus text exposition format.

    Worker-labeled names (``campaign.injections{worker=1}``, produced by
    the cross-process collector) render as one metric family with real
    Prometheus labels; ``# HELP``/``# TYPE`` headers are emitted once per
    family (not per labelled series). Counts and sums stay in base units
    (events, seconds) so ``rate()`` works without unit juggling.
    """
    registry = registry or get_registry()
    lines: list[str] = []
    typed: set[str] = set()

    def declare(prom: str, kind: str, help_text: str) -> None:
        if prom not in typed:
            typed.add(prom)
            escaped = help_text.replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {prom} {escaped}")
            lines.append(f"# TYPE {prom} {kind}")

    for name, metric in sorted(registry.counters.items()):
        base, _ = split_labeled_name(name)
        prom, labels = _prom_name(name, "_total")
        declare(prom, "counter", f"Cumulative count of {base} events.")
        lines.append(f"{prom}{labels} {metric.value}")
    for name, metric in sorted(registry.gauges.items()):
        base, _ = split_labeled_name(name)
        prom, labels = _prom_name(name)
        declare(prom, "gauge", f"Current value of {base}.")
        lines.append(f"{prom}{labels} {_prom_value(metric.value)}")
    for name, hist in sorted(registry.histograms.items()):
        base, _ = split_labeled_name(name)
        prom, labels = _prom_name(name)
        declare(
            prom,
            "summary",
            f"Distribution of {base} observations (base units).",
        )
        lines.append(f"{prom}_count{labels} {hist.count}")
        lines.append(f"{prom}_sum{labels} {_prom_value(hist.total)}")
        if hist.count:
            for q, label in ((50, "0.5"), (90, "0.9"), (99, "0.99")):
                pair = f'quantile="{label}"'
                lines.append(
                    f"{prom}{_merge_labels(labels, pair)} "
                    f"{_prom_value(hist.percentile(q))}"
                )
    for path, stats in sorted(registry.spans.items()):
        base, span_labels = split_labeled_name(path)
        sanitized = re.sub(r"[^a-zA-Z0-9_]", "_", "span." + base.replace("/", "."))
        prom, labels = f"repro_{sanitized}", _prom_labels(span_labels)
        declare(
            f"{prom}_seconds",
            "summary",
            f"Wall-clock seconds spent in span {base}.",
        )
        lines.append(f"{prom}_seconds_count{labels} {stats.count}")
        lines.append(f"{prom}_seconds_sum{labels} {_prom_value(stats.total_seconds)}")
    return "\n".join(lines) + ("\n" if lines else "")
