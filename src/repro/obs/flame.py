"""Flamegraphs from span aggregates: collapsed stacks + self-contained SVG.

Every instrumented phase already streams hierarchical spans
(:mod:`repro.obs.spans`, paths joined with ``/``) and aggregates them per
path in the registry. This module folds those aggregates into the classic
*collapsed-stack* format (``frame;frame;frame <microseconds>`` — the input
Brendan Gregg's tooling and most profilers speak) and renders a
dependency-free flamegraph as one HTML file, so hot-path attribution of a
whole campaign needs neither Perfetto nor any external script::

    python -m repro.obs flame camp.jsonl.telemetry --out flame.html

Sources: a live :class:`~repro.obs.metrics.MetricsRegistry`, a campaign's
telemetry directory, or a journal path (its ``<journal>.telemetry``
sibling). Merged telemetry keeps workers apart by rooting each process's
stacks under a ``worker-<n>`` frame.

Frame *self* time is derived the standard way — a path's total minus its
recorded children's totals — so the x-axis adds up instead of double
counting. Span names are hostile input (they carry dff/workload names)
and are HTML-escaped everywhere they land in markup.
"""

from __future__ import annotations

import html
import zlib
from pathlib import Path

from repro.obs.metrics import MetricsRegistry, split_labeled_name

#: Pixel geometry of the rendered SVG.
_WIDTH = 1000
_ROW = 18
#: Frames narrower than this get no inline text label (title-only).
_MIN_TEXT_WIDTH = 40


def fold_registry(registry: MetricsRegistry) -> dict[str, float]:
    """Span totals as ``path -> seconds``, worker labels folded into roots.

    Labelless paths pass through; ``path{worker=n}`` entries (produced by
    :func:`repro.obs.remote.collect`) are re-rooted under a ``worker-n``
    (or ``parent``) frame so one merged registry yields one flamegraph
    with a lane per process.
    """
    folded: dict[str, float] = {}
    for path, stats in registry.spans.items():
        base, labels = split_labeled_name(path)
        if "worker" in labels:
            base = f"worker-{labels['worker']}/{base}"
        folded[base] = folded.get(base, 0.0) + stats.total_seconds
    return folded


def _parent_of(path: str, paths: set[str]) -> str | None:
    """The longest *recorded* proper prefix of ``path``, if any.

    Mirrors the ancestry rule of :func:`repro.obs.export.summary`: span
    names may themselves contain ``/``, so only prefixes that were actually
    recorded count as ancestors.
    """
    parts = path.split("/")
    for cut in range(len(parts) - 1, 0, -1):
        prefix = "/".join(parts[:cut])
        if prefix in paths:
            return prefix
    return None


def _frames_of(path: str, paths: set[str]) -> list[str]:
    """The frame labels of ``path``, one per recorded ancestry level."""
    parent = _parent_of(path, paths)
    if parent is None:
        return [path]
    return _frames_of(parent, paths) + [path[len(parent) + 1 :]]


def self_times(totals: dict[str, float]) -> dict[str, float]:
    """Per-path *self* seconds: total minus recorded children's totals.

    Clamped at zero — overlapping spans (threads) can make children sum
    past their parent, and a negative bar has no meaning in a flamegraph.
    """
    paths = set(totals)
    selves = dict(totals)
    for path in totals:
        parent = _parent_of(path, paths)
        if parent is not None:
            selves[parent] -= totals[path]
    return {path: max(0.0, value) for path, value in selves.items()}


def collapsed_stacks(totals: dict[str, float]) -> str:
    """The collapsed-stack text of one span-total mapping.

    One ``frame;frame;frame <value>`` line per path with nonzero self
    time, value in integer microseconds, lines sorted — byte-stable for a
    given input. Semicolons inside frame labels are replaced with ``:`` so
    the format stays parseable.
    """
    paths = set(totals)
    lines = []
    for path, seconds in self_times(totals).items():
        micros = round(seconds * 1e6)
        if micros <= 0:
            continue
        frames = [f.replace(";", ":") for f in _frames_of(path, paths)]
        lines.append(f"{';'.join(frames)} {micros}")
    return "\n".join(sorted(lines)) + ("\n" if lines else "")


def parse_collapsed(text: str) -> dict[str, int]:
    """``stack -> microseconds`` from collapsed-stack text (round-trip)."""
    out: dict[str, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, value = line.rpartition(" ")
        if not stack:
            raise ValueError(f"collapsed-stack line has no value: {line!r}")
        out[stack] = out.get(stack, 0) + int(value)
    return out


# ----------------------------------------------------------------------
# SVG rendering
# ----------------------------------------------------------------------
class _Node:
    __slots__ = ("label", "total", "children")

    def __init__(self, label: str) -> None:
        self.label = label
        self.total = 0.0
        self.children: dict[str, _Node] = {}


def _build_tree(totals: dict[str, float]) -> _Node:
    paths = set(totals)
    root = _Node("all")
    for path in sorted(totals):
        node = root
        for frame in _frames_of(path, paths):
            node = node.children.setdefault(frame, _Node(frame))
        node.total = max(node.total, totals[path])
    # A parent's width must cover its children even if its own span total
    # was smaller (overlap) or it was never recorded itself.
    def settle(node: _Node) -> float:
        covered = sum(settle(child) for child in node.children.values())
        node.total = max(node.total, covered)
        return node.total

    settle(root)
    return root


def _color(label: str) -> str:
    """A deterministic warm fill per frame label (flame palette)."""
    digest = zlib.crc32(label.encode())
    hue = digest % 55  # red..yellow band
    lightness = 52 + (digest >> 8) % 12
    return f"hsl({hue},85%,{lightness}%)"


def _format_seconds(seconds: float) -> str:
    if seconds >= 1:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.2f}ms"


def render_flamegraph(
    totals: dict[str, float], title: str = "span flamegraph"
) -> str:
    """One span-total mapping as a self-contained flamegraph HTML page.

    Pure markup — rectangles with ``<title>`` hover text, no scripts — so
    the file opens anywhere, ships as a CI artifact, and every label is
    escaped against hostile span names.
    """
    root = _build_tree(totals)
    rects: list[str] = []
    depth_seen = [0]

    def place(node: _Node, x: float, width: float, depth: int) -> None:
        depth_seen[0] = max(depth_seen[0], depth)
        share = 100.0 * node.total / root.total if root.total else 0.0
        label = html.escape(node.label)
        hover = html.escape(
            f"{node.label} — {_format_seconds(node.total)} ({share:.1f}%)"
        )
        y = depth * _ROW
        rects.append(
            f"<g><title>{hover}</title>"
            f"<rect x='{x:.2f}' y='{y}' width='{max(width, 0.5):.2f}' "
            f"height='{_ROW - 1}' fill='{_color(node.label)}' rx='2'/>"
            + (
                f"<text x='{x + 3:.2f}' y='{y + _ROW - 6}'>{label}</text>"
                if width >= _MIN_TEXT_WIDTH
                else ""
            )
            + "</g>"
        )
        cursor = x
        for child in node.children.values():
            child_width = (
                width * child.total / node.total if node.total else 0.0
            )
            place(child, cursor, child_width, depth + 1)
            cursor += child_width

    place(root, 0.0, float(_WIDTH), 0)
    height = (depth_seen[0] + 1) * _ROW
    svg = (
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{_WIDTH}' "
        f"height='{height}' font-family='monospace' font-size='11'>"
        + "".join(rects)
        + "</svg>"
    )
    return "\n".join(
        [
            "<!DOCTYPE html>",
            "<html lang='en'><head><meta charset='utf-8'>",
            f"<title>{html.escape(title)}</title>",
            "<style>body{font-family:system-ui,sans-serif;margin:2rem auto;"
            "max-width:64rem;color:#1f2430}h1{font-size:1.2rem}"
            "text{pointer-events:none}p{color:#5b6270;font-size:.85rem}"
            "</style></head><body>",
            f"<h1>{html.escape(title)}</h1>",
            "<p>Width is total span seconds; hover a frame for exact "
            "numbers. Root row spans the whole recorded time.</p>",
            svg,
            "</body></html>",
        ]
    ) + "\n"


def write_flamegraph(
    path: str | Path,
    totals: dict[str, float],
    title: str = "span flamegraph",
) -> Path:
    """Render and write the flamegraph; returns the output path."""
    path = Path(path)
    path.write_text(render_flamegraph(totals, title), encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# Source loading (CLI substrate)
# ----------------------------------------------------------------------
def load_span_totals(source: str | Path) -> dict[str, float]:
    """Span totals from a telemetry directory or a journal path.

    A directory is collected into a scratch registry (never the live one);
    a journal file resolves to its ``<journal>.telemetry`` sibling — the
    same convention the runner and ``fi report`` use.
    """
    from repro.obs.remote import collect

    source = Path(source)
    directory = source
    if not source.is_dir():
        sibling = Path(f"{source}.telemetry")
        if not sibling.is_dir():
            raise FileNotFoundError(
                f"{source} is neither a telemetry directory nor a journal "
                f"with one at {sibling}"
            )
        directory = sibling
    registry = MetricsRegistry()
    collect(directory, registry=registry)
    return fold_registry(registry)
