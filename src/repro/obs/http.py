"""Embedded live console: ``/metrics``, ``/status.json``, SSE dashboard.

A pure-stdlib asyncio HTTP server small enough to mount directly on the
coordinator's event loop (zero extra threads there) yet self-hosting for
single-host runs (``fi run --serve`` spins it up on a daemon thread).
It speaks exactly what fleet operations needs and nothing else:

- ``GET /metrics`` — Prometheus text exposition, the process registry
  merged with every relayed worker-telemetry stream (same ``{worker=n}``
  label scheme as :func:`repro.obs.remote.collect`);
- ``GET /status.json`` — queue, per-campaign shard/lease table, outcome
  tallies, rates/ETA, worker rows, firing health alerts;
- ``GET /campaigns/<name>`` (+ ``.json``, ``/heatmap``) — drill-down;
- ``GET /events`` — server-sent events feeding the dashboard at ``/``: a
  browser sibling of the ANSI :class:`~repro.obs.dashboard.CampaignDashboard`
  with progress bars, worker rows, an outcome-colored injection timeline,
  and a health banner; the page is one self-contained HTML response;
- ``POST /api/health/silence`` — the only mutating route, gated by the
  shared-secret token when one is configured (``Authorization: Bearer``),
  compared constant-time. ``/metrics`` and every other read stays open.

State is supplied by a :class:`ConsoleProvider` — the coordinator and the
single-host runner each implement the same four methods, so one server
(and one dashboard page) serves both deployment shapes.
"""

from __future__ import annotations

import asyncio
import hmac
import html
import json
import threading
import urllib.parse
from pathlib import Path

from repro.obs.export import prometheus_text
from repro.obs.metrics import MetricsRegistry, get_registry

#: Outcome status palette — kept in sync with ``repro.fi.report`` (obs may
#: not import fi, so the values are restated here).
OUTCOME_COLORS = {
    "benign": "#0ca30c",
    "sdc": "#ec835a",
    "timeout": "#fab219",
    "error": "#d03b3b",
}
NEUTRAL_COLOR = "#6b7280"

#: SSE keepalive comment cadence, seconds.
_KEEPALIVE = 15.0
#: Per-subscriber event queue bound; the slowest browser drops, not the loop.
_QUEUE_LIMIT = 256

_escape = html.escape


class ConsoleProvider:
    """State the console serves; override per deployment shape.

    The defaults make a provider with *no* overrides already useful for a
    bare process: live registry metrics and an empty status document.
    """

    def title(self) -> str:
        return "repro live console"

    def metrics_text(self) -> str:
        """The Prometheus exposition body (see :func:`merged_metrics_text`)."""
        return prometheus_text()

    def status_doc(self) -> dict:
        """The ``/status.json`` document; also the SSE snapshot event."""
        return {"kind": "status", "workers": 0, "campaigns": []}

    def campaign_doc(self, name: str) -> dict | None:
        """One campaign's drill-down document, or None when unknown."""
        for campaign in self.status_doc().get("campaigns", []):
            if campaign.get("name") == name:
                return campaign
        return None

    def heatmap_html(self, name: str) -> str | None:
        """A warehoused campaign's heatmap page, when one exists."""
        return None

    def silence(self, seconds: float) -> bool:
        """Mute health alerts for ``seconds``; False when unsupported."""
        return False


def merged_metrics_text(
    telemetry_dirs: list[str | Path],
    base_registry: MetricsRegistry | None = None,
) -> str:
    """Prometheus text of the process registry + relayed worker telemetry.

    Each scrape collects the telemetry directories into a *scratch*
    registry (worker series land labelled, exactly as post-hoc tooling
    sees them) and overlays the live process registry, so one ``/metrics``
    response carries the coordinator's own counters next to
    ``resource.rss_bytes{worker=1}``-style fleet series.
    """
    from repro.obs.remote import collect

    scratch = MetricsRegistry()
    for directory in telemetry_dirs:
        directory = Path(directory)
        if directory.is_dir():
            collect(directory, registry=scratch)
    scratch.merge_from(base_registry or get_registry())
    return prometheus_text(scratch)


# ----------------------------------------------------------------------
# The server
# ----------------------------------------------------------------------
_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}


class ConsoleServer:
    """One asyncio HTTP/SSE console (see module docstring)."""

    def __init__(
        self,
        provider: ConsoleProvider,
        host: str = "127.0.0.1",
        port: int = 0,
        auth_token: str | None = None,
    ) -> None:
        self.provider = provider
        self.host = host
        self.port = port
        self.auth_token = auth_token
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._subscribers: set[asyncio.Queue] = set()

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for queue in list(self._subscribers):
            queue.put_nowait(None)  # wake SSE handlers so they exit

    @property
    def url(self) -> str:
        host = "127.0.0.1" if self.host in ("0.0.0.0", "::") else self.host
        return f"http://{host}:{self.port}"

    # -- events --------------------------------------------------------
    @property
    def has_subscribers(self) -> bool:
        return bool(self._subscribers)

    def publish(self, kind: str, data: dict) -> None:
        """Fan one event out to every SSE subscriber (thread-safe).

        A full subscriber queue drops its oldest event — a slow browser
        loses history, never stalls the coordinator.
        """
        if not self._subscribers:
            return
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is self._loop or self._loop is None:
            self._publish(kind, data)
        else:
            self._loop.call_soon_threadsafe(self._publish, kind, data)

    def _publish(self, kind: str, data: dict) -> None:
        for queue in list(self._subscribers):
            if queue.full():
                try:
                    queue.get_nowait()
                except asyncio.QueueEmpty:
                    pass
            queue.put_nowait((kind, data))

    # -- request handling ----------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(reader.readline(), 30.0)
            parts = request.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, target = parts[0].upper(), parts[1]
            headers: dict[str, str] = {}
            while True:
                line = await asyncio.wait_for(reader.readline(), 30.0)
                if line in (b"\r\n", b"\n", b""):
                    break
                key, _, value = line.decode("latin-1").partition(":")
                headers[key.strip().lower()] = value.strip()
            body = b""
            length = int(headers.get("content-length", 0) or 0)
            if length:
                body = await reader.readexactly(min(length, 1 << 20))
            path = urllib.parse.unquote(target.split("?", 1)[0])
            await self._route(writer, method, path, headers, body)
        except (
            TimeoutError,
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
            ValueError,
        ):
            pass  # half-open sockets and hostile requests just drop
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - transport already torn down
                pass

    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        headers: dict[str, str],
        body: bytes,
    ) -> None:
        if path == "/events":
            if method != "GET":
                return await self._respond(writer, 405, "text/plain", "GET only")
            return await self._serve_events(writer)
        if method == "GET":
            if path == "/":
                return await self._respond(
                    writer, 200, "text/html; charset=utf-8",
                    dashboard_page(self.provider.title()),
                )
            if path == "/metrics":
                return await self._respond(
                    writer, 200, "text/plain; version=0.0.4; charset=utf-8",
                    self.provider.metrics_text(),
                )
            if path == "/status.json":
                return await self._respond_json(
                    writer, 200, self.provider.status_doc()
                )
            if path == "/healthz":
                return await self._respond(writer, 200, "text/plain", "ok\n")
            if path.startswith("/campaigns/"):
                return await self._serve_campaign(writer, path)
        if method == "POST" and path == "/api/health/silence":
            if not self._authorized(headers):
                return await self._respond(
                    writer, 401, "text/plain",
                    "authentication required (Authorization: Bearer <token>)",
                )
            try:
                doc = json.loads(body or b"{}")
                seconds = float(doc.get("seconds", 60.0))
            except (ValueError, AttributeError):
                return await self._respond(
                    writer, 400, "text/plain", "body must be JSON"
                )
            accepted = self.provider.silence(seconds)
            return await self._respond_json(
                writer, 200 if accepted else 400,
                {"silenced": bool(accepted), "seconds": seconds},
            )
        await self._respond(writer, 404, "text/plain", f"no route {path}\n")

    def _authorized(self, headers: dict[str, str]) -> bool:
        if self.auth_token is None:
            return True
        scheme, _, presented = headers.get("authorization", "").partition(" ")
        return scheme.lower() == "bearer" and hmac.compare_digest(
            presented.strip().encode(), str(self.auth_token).encode()
        )

    async def _serve_campaign(
        self, writer: asyncio.StreamWriter, path: str
    ) -> None:
        rest = path[len("/campaigns/") :]
        if rest.endswith("/heatmap"):
            name = rest[: -len("/heatmap")]
            page = self.provider.heatmap_html(name)
            if page is None:
                return await self._respond(
                    writer, 404, "text/plain",
                    f"campaign {name!r} has no warehoused heatmap (yet)\n",
                )
            return await self._respond(
                writer, 200, "text/html; charset=utf-8", page
            )
        as_json = rest.endswith(".json")
        name = rest[: -len(".json")] if as_json else rest
        doc = self.provider.campaign_doc(name)
        if doc is None:
            return await self._respond(
                writer, 404, "text/plain", f"unknown campaign {name!r}\n"
            )
        if as_json:
            return await self._respond_json(writer, 200, doc)
        await self._respond(
            writer, 200, "text/html; charset=utf-8", campaign_page(name, doc)
        )

    async def _serve_events(self, writer: asyncio.StreamWriter) -> None:
        queue: asyncio.Queue = asyncio.Queue(maxsize=_QUEUE_LIMIT)
        self._subscribers.add(queue)
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/event-stream\r\n"
                b"Cache-Control: no-store\r\n"
                b"Connection: close\r\n\r\n"
            )
            # An immediate snapshot: subscribers render without waiting for
            # the next live record.
            writer.write(_sse_event("status", self.provider.status_doc()))
            await writer.drain()
            while True:
                try:
                    item = await asyncio.wait_for(queue.get(), _KEEPALIVE)
                except (TimeoutError, asyncio.TimeoutError):
                    writer.write(b": keepalive\n\n")
                    await writer.drain()
                    continue
                if item is None:  # server stopping
                    return
                kind, data = item
                writer.write(_sse_event(kind, data))
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # browser went away
        finally:
            self._subscribers.discard(queue)

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: str,
    ) -> None:
        payload = body.encode()
        writer.write(
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Cache-Control: no-store\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1")
            + payload
        )
        await writer.drain()

    async def _respond_json(
        self, writer: asyncio.StreamWriter, status: int, doc: dict
    ) -> None:
        await self._respond(
            writer, status, "application/json",
            json.dumps(doc, indent=2, default=str) + "\n",
        )


def _sse_event(kind: str, data: dict) -> bytes:
    return (
        f"event: {kind}\ndata: {json.dumps(data, default=str)}\n\n".encode()
    )


# ----------------------------------------------------------------------
# Thread harness for synchronous hosts (``fi run --serve``)
# ----------------------------------------------------------------------
class ConsoleHandle:
    """A console running on its own daemon-thread event loop."""

    def __init__(self) -> None:
        self.server: ConsoleServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return self.server.url if self.server is not None else ""

    def publish(self, kind: str, data: dict) -> None:
        if self.server is not None:
            self.server.publish(kind, data)

    def stop(self, timeout: float = 5.0) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout)


def start_in_thread(
    provider: ConsoleProvider,
    host: str = "127.0.0.1",
    port: int = 0,
    auth_token: str | None = None,
    timeout: float = 10.0,
) -> ConsoleHandle:
    """Run a :class:`ConsoleServer` on a daemon thread; returns its handle.

    For synchronous hosts (the single-host campaign runner, tests). The
    call returns once the port is bound, so ``handle.url`` is usable
    immediately; ``handle.stop()`` shuts the loop down.
    """
    handle = ConsoleHandle()
    started = threading.Event()
    failure: list[BaseException] = []

    async def _main() -> None:
        server = ConsoleServer(provider, host, port, auth_token)
        try:
            await server.start()
        except BaseException as exc:
            failure.append(exc)
            started.set()
            raise
        handle.server = server
        handle._loop = asyncio.get_running_loop()
        handle._stop = asyncio.Event()
        started.set()
        try:
            await handle._stop.wait()
        finally:
            await server.stop()

    def _run() -> None:
        try:
            asyncio.run(_main())
        except BaseException:  # noqa: BLE001 - surfaced via `failure`
            pass

    handle._thread = threading.Thread(
        target=_run, name="repro-console", daemon=True
    )
    handle._thread.start()
    if not started.wait(timeout):
        raise RuntimeError("console server did not start in time")
    if failure:
        raise RuntimeError(f"console server failed to start: {failure[0]}")
    return handle


# ----------------------------------------------------------------------
# Pages
# ----------------------------------------------------------------------
_PAGE_CSS = """
body { font-family: system-ui, sans-serif; margin: 2rem auto;
       max-width: 64rem; color: #1f2430; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem; }
table { border-collapse: collapse; margin-top: .5rem; }
th, td { text-align: left; padding: .25rem .9rem .25rem 0; font-size: .9rem; }
th { color: #5b6270; font-weight: 600; border-bottom: 1px solid #d8dbe2; }
td.num, th.num { text-align: right; }
.note { color: #5b6270; font-size: .85rem; }
#banner { display: none; background: #d03b3b; color: #fff;
          padding: .5rem .8rem; border-radius: 6px; margin: .8rem 0; }
#banner.on { display: block; }
.barwrap { background: #e4e7ee; border-radius: 4px; width: 360px;
           height: 12px; display: inline-block; vertical-align: middle; }
.bar { background: #0ca30c; border-radius: 4px; height: 12px;
       display: block; }
#timeline { margin-top: .4rem; line-height: 10px; }
#timeline i { display: inline-block; width: 6px; height: 10px;
              margin-right: 1px; border-radius: 1px; }
.swatch { width: 10px; height: 10px; border-radius: 2px;
          display: inline-block; margin-right: .35rem; }
"""


def dashboard_page(title: str) -> str:
    """The self-contained live dashboard served at ``/``.

    Inline CSS + inline JS (EventSource for records/alerts, a 2 s
    ``/status.json`` refresh for the tables); nothing external.
    """
    colors = json.dumps(OUTCOME_COLORS)
    legend = "".join(
        f"<span class=swatch style='background:{color}'></span>{name} "
        for name, color in OUTCOME_COLORS.items()
    )
    return f"""<!DOCTYPE html>
<html lang='en'><head><meta charset='utf-8'>
<title>{_escape(title)}</title>
<style>{_PAGE_CSS}</style></head><body>
<h1>{_escape(title)}</h1>
<div id=banner></div>
<div id=summary class=note>connecting&hellip;</div>
<h2>Campaigns</h2>
<div id=campaigns class=note>no campaigns yet</div>
<h2>Workers</h2>
<div id=workers class=note>no workers connected</div>
<h2>Injection timeline <span class=note>{legend}
<span class=swatch style='background:{NEUTRAL_COLOR}'></span>other</span></h2>
<div id=timeline></div>
<p class=note>Raw feeds: <a href='/metrics'>/metrics</a> &middot;
<a href='/status.json'>/status.json</a> &middot;
<a href='/events'>/events</a> (SSE)</p>
<script>
const COLORS = {colors};
const NEUTRAL = '{NEUTRAL_COLOR}';
const esc = s => String(s).replace(/[&<>"]/g,
  c => ({{'&':'&amp;','<':'&lt;','>':'&gt;','"':'&quot;'}})[c]);
function render(s) {{
  const rate = s.rate ? s.rate.toFixed(1) + '/s' : 'n/a';
  document.getElementById('summary').textContent =
    `${{s.workers}} worker(s) connected · rate ${{rate}}` +
    (s.alerts_fired_total !== undefined
      ? ` · ${{s.alerts_fired_total}} alert(s) fired total` : '');
  const camps = s.campaigns || [];
  document.getElementById('campaigns').innerHTML = camps.length
    ? camps.map(c => {{
        const pct = c.total ? Math.round(100 * c.done / c.total) : 0;
        const shards = (c.shards || []).map(sh =>
          `<tr><td>${{sh.id}}</td><td>${{esc(sh.status)}}</td>` +
          `<td class=num>${{sh.done}}/${{sh.total}}</td>` +
          `<td class=num>${{sh.retries}}</td>` +
          `<td class=num>${{sh.owner ?? ''}}</td></tr>`).join('');
        return `<h2><a href='/campaigns/${{encodeURIComponent(c.name)}}'>` +
          `${{esc(c.name)}}</a> <span class=note>${{esc(c.status)}}` +
          `${{c.eta_seconds ? ` · eta ~${{Math.round(c.eta_seconds)}}s`
                            : ''}}</span></h2>` +
          `<span class=barwrap><span class=bar style='width:${{pct}}%'>` +
          `</span></span> ${{c.done}}/${{c.total}} (${{pct}}%)` +
          ` · quarantined ${{c.quarantined || 0}}` +
          `<table><tr><th>shard</th><th>state</th><th class=num>done</th>` +
          `<th class=num>retries</th><th class=num>owner</th></tr>` +
          shards + '</table>';
      }}).join('')
    : 'no campaigns yet';
  const workers = s.worker_table || [];
  document.getElementById('workers').innerHTML = workers.length
    ? '<table><tr><th>pid</th><th>peer</th><th class=num>records</th>' +
      '<th class=num>shards</th><th class=num>rss MB</th>' +
      '<th class=num>cpu %</th><th>auth</th></tr>' +
      workers.map(w =>
        `<tr><td>${{w.pid}}</td><td>${{esc(w.peer || '')}}</td>` +
        `<td class=num>${{w.records}}</td>` +
        `<td class=num>${{w.shards_taken}}</td>` +
        `<td class=num>${{w.rss_bytes ? (w.rss_bytes / 1e6).toFixed(0)
                                      : ''}}</td>` +
        `<td class=num>${{w.cpu_percent != null
            ? w.cpu_percent.toFixed(0) : ''}}</td>` +
        `<td>${{w.authenticated ? 'yes' : 'open'}}</td></tr>`).join('') +
      '</table>'
    : 'no workers connected';
  banner(s.alerts || []);
}}
function banner(alerts) {{
  const el = document.getElementById('banner');
  if (alerts.length) {{
    el.className = 'on';
    el.textContent = alerts.map(
      a => `${{a.rule}}: ${{a.reason}}`).join(' — ');
  }} else {{
    el.className = '';
  }}
}}
function addCell(rec) {{
  const tl = document.getElementById('timeline');
  const cell = document.createElement('i');
  cell.style.background = COLORS[rec.outcome] || NEUTRAL;
  cell.title = `${{rec.campaign}} #${{rec.done}} ${{rec.outcome}}` +
               (rec.worker ? ` (worker ${{rec.worker}})` : '');
  tl.appendChild(cell);
  while (tl.childNodes.length > 400) tl.removeChild(tl.firstChild);
}}
async function refresh() {{
  try {{
    render(await (await fetch('/status.json')).json());
  }} catch (err) {{ /* server restarting */ }}
}}
const es = new EventSource('/events');
es.addEventListener('status', e => render(JSON.parse(e.data)));
es.addEventListener('record', e => addCell(JSON.parse(e.data)));
es.addEventListener('alerts',
  e => banner(JSON.parse(e.data).firing || []));
setInterval(refresh, 2000);
refresh();
</script>
</body></html>
"""


def campaign_page(name: str, doc: dict) -> str:
    """One campaign's drill-down page (shard table + links)."""
    shards = doc.get("shards") or []
    rows = "".join(
        f"<tr><td>{int(s.get('id', 0))}</td>"
        f"<td>{_escape(str(s.get('status', '?')))}</td>"
        f"<td class=num>{int(s.get('done', 0))}/"
        f"{int(s.get('total', 0))}</td>"
        f"<td class=num>{int(s.get('retries', 0))}</td>"
        f"<td class=num>"
        f"{_escape(str(s.get('owner'))) if s.get('owner') is not None else ''}"
        f"</td></tr>"
        for s in shards
    )
    outcomes = doc.get("outcomes") or {}
    tally = "".join(
        f"<tr><td><span class=swatch style='background:"
        f"{OUTCOME_COLORS.get(key, NEUTRAL_COLOR)}'></span>{_escape(key)}"
        f"</td><td class=num>{int(count)}</td></tr>"
        for key, count in sorted(outcomes.items())
    )
    quoted = urllib.parse.quote(name, safe="")
    links = [f"<a href='/campaigns/{quoted}.json'>JSON</a>"]
    if doc.get("store_id") is not None:
        links.append(
            f"<a href='/campaigns/{quoted}/heatmap'>fault-space heatmap "
            f"(warehouse #{int(doc['store_id'])})</a>"
        )
    return "\n".join(
        [
            "<!DOCTYPE html>",
            "<html lang='en'><head><meta charset='utf-8'>",
            f"<title>campaign {_escape(name)}</title>",
            f"<style>{_PAGE_CSS}</style></head><body>",
            f"<h1>campaign {_escape(name)} "
            f"<span class=note>{_escape(str(doc.get('status', '?')))}"
            "</span></h1>",
            f"<p>{int(doc.get('done', 0))}/{int(doc.get('total', 0))} "
            f"point(s) recorded · quarantined "
            f"{int(doc.get('quarantined', 0))}</p>",
            f"<p class=note>{' · '.join(links)} · "
            "<a href='/'>back to console</a></p>",
            "<h2>Outcomes</h2>",
            f"<table><tr><th>outcome</th><th class=num>count</th></tr>"
            f"{tally}</table>" if tally else
            "<p class=note>no outcomes recorded yet</p>",
            "<h2>Shards</h2>",
            "<table><tr><th>shard</th><th>state</th><th class=num>done"
            "</th><th class=num>retries</th><th class=num>owner</th></tr>"
            f"{rows}</table>",
            "</body></html>",
        ]
    ) + "\n"
