"""Process-global metrics: named counters, gauges, and histograms.

Pure stdlib, thread-safe, resettable. Metric names follow the dotted
``subsystem.phase.metric`` convention (``search.candidates.generated``,
``campaign.outcome.benign``, ...) so exporters can group them and the
Prometheus exporter can mechanically translate them.

The module keeps one process-global :class:`MetricsRegistry`; instrumented
code reaches it through the convenience functions :func:`counter`,
:func:`gauge`, and :func:`histogram`. Tests swap or reset the global
registry (see :func:`reset` and the autouse fixture in
``tests/conftest.py``) so metrics never leak between test cases.
"""

from __future__ import annotations

import math
import threading

#: Histograms keep raw samples up to this many observations; beyond it only
#: the running aggregates (count/sum/min/max) stay exact and percentiles are
#: computed over the retained prefix.
_HISTOGRAM_SAMPLE_CAP = 65_536


def labeled_name(name: str, **labels: object) -> str:
    """Attach ``{key=value,...}`` labels to a metric or span-path name.

    The registry itself is label-unaware (names are flat strings); the
    cross-process collector uses this convention to keep per-worker series
    apart (``campaign.injections{worker=1}``) and exporters that understand
    labels (Prometheus) parse them back out via :func:`split_labeled_name`.
    Labels are sorted by key so the same label set always produces the same
    name.
    """
    if not labels:
        return name
    body = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{body}}}"


def split_labeled_name(name: str) -> tuple[str, dict[str, str]]:
    """Inverse of :func:`labeled_name`; labelless names get ``{}``.

    Tolerant: anything that does not look like a single trailing
    ``{k=v,...}`` group is treated as part of the plain name.
    """
    if not name.endswith("}"):
        return name, {}
    start = name.find("{")
    if start < 0:
        return name, {}
    body = name[start + 1 : -1]
    labels: dict[str, str] = {}
    for part in body.split(","):
        key, eq, value = part.partition("=")
        if not eq or not key:
            return name, {}
        labels[key] = value
    return name[:start], labels


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """Current count."""
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A named value that can go up and down (last-write-wins)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta``."""
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        """Current gauge value."""
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self._value})"


class Histogram:
    """A named distribution with exact aggregates and sampled percentiles."""

    __slots__ = ("name", "_lock", "count", "total", "min", "max", "_samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if len(self._samples) < _HISTOGRAM_SAMPLE_CAP:
                self._samples.append(value)

    def merge(
        self,
        count: int,
        total: float,
        minimum: float,
        maximum: float,
        samples: list[float] | tuple[float, ...] = (),
    ) -> None:
        """Fold another histogram's aggregates (and retained samples) in.

        Used by the cross-process telemetry collector
        (:mod:`repro.obs.remote`): count/sum/min/max merge exactly;
        percentiles are computed over whichever samples both sides
        retained, capped like local observations.
        """
        if count < 0:
            raise ValueError(f"histogram {self.name}: negative merge count {count}")
        if not count:
            return
        with self._lock:
            self.count += count
            self.total += total
            if minimum < self.min:
                self.min = minimum
            if maximum > self.max:
                self.max = maximum
            room = _HISTOGRAM_SAMPLE_CAP - len(self._samples)
            if room > 0:
                self._samples.extend(float(s) for s in samples[:room])

    @property
    def samples(self) -> list[float]:
        """Copy of the retained raw samples (percentile substrate)."""
        with self._lock:
            return list(self._samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (nan when empty)."""
        return self.total / self.count if self.count else math.nan

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]) over retained samples."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} outside [0, 100]")
        with self._lock:
            if not self._samples:
                return math.nan
            ordered = sorted(self._samples)
        rank = max(0, math.ceil(q / 100 * len(ordered)) - 1)
        return ordered[rank]

    def snapshot(self) -> dict[str, float]:
        """Aggregates + standard percentiles as a plain dict."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count})"


class SpanStats:
    """Aggregated wall-time statistics of one span path."""

    __slots__ = (
        "path",
        "count",
        "total_seconds",
        "min_seconds",
        "max_seconds",
        "_lock",
    )

    def __init__(self, path: str) -> None:
        self.path = path
        self.count = 0
        self.total_seconds = 0.0
        self.min_seconds = math.inf
        self.max_seconds = -math.inf
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        """Fold one completed span occurrence into the aggregate."""
        with self._lock:
            self.count += 1
            self.total_seconds += seconds
            if seconds < self.min_seconds:
                self.min_seconds = seconds
            if seconds > self.max_seconds:
                self.max_seconds = seconds

    def merge(
        self,
        count: int,
        total_seconds: float,
        min_seconds: float,
        max_seconds: float,
    ) -> None:
        """Fold another aggregate of the same path in (cross-registry merge)."""
        if count < 0:
            raise ValueError(f"span {self.path}: negative merge count {count}")
        if not count:
            return
        with self._lock:
            self.count += count
            self.total_seconds += total_seconds
            if min_seconds < self.min_seconds:
                self.min_seconds = min_seconds
            if max_seconds > self.max_seconds:
                self.max_seconds = max_seconds

    def snapshot(self) -> dict[str, float]:
        """Aggregates as a plain dict."""
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "min_seconds": self.min_seconds if self.count else 0.0,
            "max_seconds": self.max_seconds if self.count else 0.0,
            "mean_seconds": self.total_seconds / self.count if self.count else 0.0,
        }


class MetricsRegistry:
    """Thread-safe home of all named metrics and span aggregates."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._spans: dict[str, SpanStats] = {}

    # -- create-or-get accessors ---------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name)
        return metric

    def span_stats(self, path: str) -> SpanStats:
        """The span aggregate for ``path`` (created on first use)."""
        with self._lock:
            stats = self._spans.get(path)
            if stats is None:
                stats = self._spans[path] = SpanStats(path)
        return stats

    # -- introspection -------------------------------------------------
    @property
    def counters(self) -> dict[str, Counter]:
        """Name → counter view (copy)."""
        with self._lock:
            return dict(self._counters)

    @property
    def gauges(self) -> dict[str, Gauge]:
        """Name → gauge view (copy)."""
        with self._lock:
            return dict(self._gauges)

    @property
    def histograms(self) -> dict[str, Histogram]:
        """Name → histogram view (copy)."""
        with self._lock:
            return dict(self._histograms)

    @property
    def spans(self) -> dict[str, SpanStats]:
        """Path → span-aggregate view (copy)."""
        with self._lock:
            return dict(self._spans)

    def merge_from(self, other: MetricsRegistry) -> None:
        """Overlay another registry's metrics onto this one.

        Counters add, gauges last-write-win, histograms and span
        aggregates merge exactly. Used by the live console's ``/metrics``
        route to combine the process registry with a scratch registry
        holding collected worker telemetry.
        """
        for name, metric in other.counters.items():
            self.counter(name).inc(metric.value)
        for name, metric in other.gauges.items():
            self.gauge(name).set(metric.value)
        for name, hist in other.histograms.items():
            self.histogram(name).merge(
                hist.count, hist.total, hist.min, hist.max, hist.samples
            )
        for path, stats in other.spans.items():
            self.span_stats(path).merge(
                stats.count,
                stats.total_seconds,
                stats.min_seconds,
                stats.max_seconds,
            )

    def reset(self) -> None:
        """Drop every metric and span aggregate (test isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._spans.clear()


# ----------------------------------------------------------------------
# Process-global registry + convenience handles
# ----------------------------------------------------------------------
_registry = MetricsRegistry()
_registry_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-global registry all instrumentation reports into."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry (returns the previous one)."""
    global _registry
    with _registry_lock:
        previous, _registry = _registry, registry
    return previous


def counter(name: str) -> Counter:
    """Global-registry counter called ``name``."""
    return _registry.counter(name)


def gauge(name: str) -> Gauge:
    """Global-registry gauge called ``name``."""
    return _registry.gauge(name)


def histogram(name: str) -> Histogram:
    """Global-registry histogram called ``name``."""
    return _registry.histogram(name)
