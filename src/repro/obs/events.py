"""Structured JSONL event sink.

Every completed span (and any custom event an instrumented module emits)
can be streamed to one or more *sinks* as single-line JSON records::

    {"ts": 1754400000.123, "kind": "span", "path": "mate-search", ...}

Sinks are process-global and explicitly installed — by default nothing is
written anywhere and :func:`emit` is a cheap no-op guarded by
:func:`has_sinks`.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import IO

_sinks: list["JsonlSink"] = []
_lock = threading.Lock()


class JsonlSink:
    """Writes one JSON object per line to a file (or file-like) target."""

    def __init__(self, target: str | Path | IO[str]) -> None:
        if hasattr(target, "write"):
            self._stream: IO[str] = target  # type: ignore[assignment]
            self._owned = False
            self.path: Path | None = None
        else:
            self.path = Path(target)
            self._stream = self.path.open("w", encoding="utf-8")
            self._owned = True
        self._write_lock = threading.Lock()

    def write(self, record: dict[str, object]) -> None:
        """Serialize one event record as a JSON line."""
        line = json.dumps(record, default=str)
        with self._write_lock:
            self._stream.write(line + "\n")

    def close(self) -> None:
        """Flush and (for path-opened sinks) close the underlying file."""
        with self._write_lock:
            self._stream.flush()
            if self._owned:
                self._stream.close()


def install_sink(sink: JsonlSink) -> JsonlSink:
    """Register a sink to receive all subsequent events."""
    with _lock:
        _sinks.append(sink)
    return sink


def remove_sink(sink: JsonlSink) -> None:
    """Unregister (and close) one sink; unknown sinks are ignored."""
    with _lock:
        if sink in _sinks:
            _sinks.remove(sink)
    sink.close()


def clear_sinks() -> None:
    """Unregister and close every sink."""
    with _lock:
        sinks, _sinks[:] = list(_sinks), []
    for sink in sinks:
        sink.close()


def has_sinks() -> bool:
    """True when at least one sink is installed (emit fast-path guard)."""
    return bool(_sinks)


def emit(record: dict[str, object]) -> None:
    """Timestamp an event record and fan it out to every sink."""
    if not _sinks:
        return
    stamped = {"ts": time.time(), **record}
    with _lock:
        sinks = list(_sinks)
    for sink in sinks:
        sink.write(stamped)
