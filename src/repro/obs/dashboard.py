"""Live TTY dashboard for resilient injection campaigns.

Builds on :mod:`repro.obs.progress` (same enablement rules: stderr TTY,
``REPRO_PROGRESS=1``, or forced) but renders a multi-line, in-place-redrawn
panel instead of a single meter::

    campaign accum  37/120 (31%)  12.4/s  eta 7s  retries 1  quarantined 0
      w0 pid 49152  18 done  injecting #41 decoy_b1@3
      w1 pid 49153  19 done  idle

The headline rate is *rolling* (sliding window, default 10 s) so stalls and
recoveries show immediately instead of being averaged away; ETA uses the
same window. Per-worker rows come from incrementally tailing the campaign's
telemetry directory (:mod:`repro.obs.remote`): each worker's file yields its
pid, per-injection ``inject-start`` markers, and completed ``campaign/inject``
spans, from which the dashboard derives "warming / injecting / idle" states
and per-worker completion counts. Without telemetry (inline runs) only the
headline renders.

Redraws are throttled (default 5 Hz) and every line is erased before being
rewritten, so the panel never smears even when worker rows appear late.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import IO

from repro.obs.progress import _format_eta, progress_enabled

#: Sliding-window length for the rolling rate, seconds.
_RATE_WINDOW = 10.0


class _FileTail:
    """Incremental JSONL reader: yields only records appended since last poll."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self._pos = 0
        self._partial = b""

    def poll(self) -> list[dict]:
        try:
            with self.path.open("rb") as fh:
                fh.seek(self._pos)
                chunk = fh.read()
        except OSError:
            return []
        if not chunk:
            return []
        self._pos += len(chunk)
        data = self._partial + chunk
        lines = data.split(b"\n")
        self._partial = lines.pop()  # empty after a complete final line
        records = []
        for line in lines:
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                continue  # torn/garbled line mid-run; the loader settles it
            if isinstance(doc, dict):
                records.append(doc)
        return records


class _WorkerRow:
    """Last-known state of one worker, derived from its telemetry tail."""

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.done = 0
        self.state = "warming up"

    def apply(self, record: dict) -> None:
        kind = record.get("kind")
        if kind == "inject-start":
            self.state = (
                f"injecting #{record.get('i', '?')} "
                f"{record.get('dff', '?')}@{record.get('cycle', '?')}"
            )
        elif kind == "span" and record.get("name") == "campaign/inject":
            self.done += 1
            self.state = "idle"
        elif kind == "span" and record.get("name") == "campaign/golden-run":
            self.state = "idle"


class CampaignDashboard:
    """Multi-line live campaign panel (see module docstring)."""

    def __init__(
        self,
        total: int,
        label: str = "campaign",
        telemetry_dir: str | Path | None = None,
        stream: IO[str] | None = None,
        enabled: bool | None = None,
        min_interval: float = 0.2,
    ) -> None:
        import sys

        self.total = total
        self.label = label
        self.telemetry_dir = Path(telemetry_dir) if telemetry_dir else None
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = (
            progress_enabled(self.stream) if enabled is None else enabled
        )
        self.min_interval = min_interval
        self.executed = 0
        self.skipped = 0
        self.retries = 0
        self.quarantined = 0
        self._tails: dict[Path, _FileTail] = {}
        self._workers: dict[int, _WorkerRow] = {}
        self._window: deque[tuple[float, int]] = deque()
        self._last_draw = 0.0
        self._lines_drawn = 0

    # ------------------------------------------------------------------
    def update(
        self,
        executed: int | None = None,
        skipped: int | None = None,
        retries: int | None = None,
        quarantined: int | None = None,
    ) -> None:
        """Fold in the runner's latest totals and maybe redraw."""
        if executed is not None:
            self.executed = executed
        if skipped is not None:
            self.skipped = skipped
        if retries is not None:
            self.retries = retries
        if quarantined is not None:
            self.quarantined = quarantined
        now = time.monotonic()
        self._window.append((now, self.executed))
        while self._window and now - self._window[0][0] > _RATE_WINDOW:
            self._window.popleft()
        if not self.enabled:
            return
        if now - self._last_draw >= self.min_interval:
            self._last_draw = now
            self._draw()

    @property
    def rolling_rate(self) -> float:
        """Injections/sec over the sliding window (0.0 before two points)."""
        if len(self._window) < 2:
            return 0.0
        (t0, n0), (t1, n1) = self._window[0], self._window[-1]
        return (n1 - n0) / (t1 - t0) if t1 > t0 else 0.0

    @property
    def eta_seconds(self) -> float | None:
        """Window-rate ETA to completion (None before the rate settles)."""
        rate = self.rolling_rate
        if rate <= 0:
            return None
        remaining = self.total - self.skipped - self.executed
        return max(0.0, remaining) / rate

    # ------------------------------------------------------------------
    def _poll_workers(self) -> None:
        if self.telemetry_dir is None or not self.telemetry_dir.is_dir():
            return
        for path in sorted(self.telemetry_dir.glob("worker-*.jsonl")):
            if path not in self._tails:
                self._tails[path] = _FileTail(path)
        for tail in self._tails.values():
            for record in tail.poll():
                if record.get("kind") == "hello":
                    pid = int(record.get("pid", 0))
                    self._workers.setdefault(pid, _WorkerRow(pid))
                else:
                    pid = self._pid_of(tail.path)
                    if pid is not None:
                        self._workers.setdefault(pid, _WorkerRow(pid)).apply(
                            record
                        )

    @staticmethod
    def _pid_of(path: Path) -> int | None:
        stem = path.stem  # worker-<pid>
        _, _, pid = stem.partition("-")
        return int(pid) if pid.isdigit() else None

    # ------------------------------------------------------------------
    def lines(self) -> list[str]:
        """Render the current panel as plain lines (tested directly)."""
        done = self.executed + self.skipped
        head = [self.label] if self.label else []
        if self.total:
            head.append(f"{done}/{self.total} ({100 * done / self.total:.0f}%)")
        else:
            head.append(str(done))
        head.append(f"{self.rolling_rate:.1f}/s")
        eta = self.eta_seconds
        if eta is not None:
            head.append(f"eta {_format_eta(eta)}")
        head.append(f"retries {self.retries}")
        head.append(f"quarantined {self.quarantined}")
        out = ["  ".join(head)]
        for index, pid in enumerate(sorted(self._workers)):
            row = self._workers[pid]
            out.append(
                f"  w{index} pid {row.pid}  {row.done} done  {row.state}"
            )
        return out

    def _draw(self) -> None:
        self._poll_workers()
        lines = self.lines()
        parts = []
        if self._lines_drawn:
            parts.append(f"\x1b[{self._lines_drawn}F")  # back to panel top
        parts.extend("\x1b[2K" + line + "\n" for line in lines)
        # A shrinking panel (never expected, but cheap to handle) leaves
        # stale rows: erase the leftovers without moving the anchor.
        for _ in range(self._lines_drawn - len(lines)):
            parts.append("\x1b[2K\n")
        self._lines_drawn = max(len(lines), self._lines_drawn)
        self.stream.write("".join(parts))
        self.stream.flush()

    def close(self) -> None:
        """Draw the final panel state and leave it on screen."""
        if self.enabled and (self._lines_drawn or self.executed):
            self._last_draw = 0.0
            self._draw()

    def __enter__(self) -> "CampaignDashboard":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
