"""Lightweight TTY progress reporting for long pipeline loops.

A :class:`Progress` tracks items done, rate (items/sec), and — when a total
is known — percentage and ETA, redrawing a single ``\\r`` status line at a
bounded frequency. Reporting is off unless stderr is a TTY, the
``REPRO_PROGRESS`` environment variable is set, or it was force-enabled via
:func:`set_progress` (the eval CLI's ``--verbose`` does this), so batch runs
and test suites stay byte-identical.

The common entry point is :func:`progress_iter`::

    for point in progress_iter(points, label="campaign", total=len(points)):
        ...
"""

from __future__ import annotations

import os
import sys
import time
from collections.abc import Iterable, Iterator
from typing import IO, TypeVar

_T = TypeVar("_T")

#: Tri-state override: None = auto-detect (TTY / env var), True/False = forced.
_forced: bool | None = None


def set_progress(enabled: bool | None) -> None:
    """Force progress reporting on/off, or ``None`` to restore auto-detect."""
    global _forced
    _forced = enabled


def progress_enabled(stream: IO[str] | None = None) -> bool:
    """Resolve whether progress lines should be drawn right now."""
    if _forced is not None:
        return _forced
    if os.environ.get("REPRO_PROGRESS"):
        return True
    stream = stream if stream is not None else sys.stderr
    isatty = getattr(stream, "isatty", None)
    return bool(isatty and isatty())


def _format_eta(seconds: float) -> str:
    if seconds < 0 or seconds != seconds:  # negative or NaN
        return "?"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class Progress:
    """Single-line progress meter (rate, percentage, ETA)."""

    def __init__(
        self,
        total: int | None = None,
        label: str = "",
        stream: IO[str] | None = None,
        min_interval: float = 0.2,
        enabled: bool | None = None,
    ) -> None:
        self.total = total
        self.label = label
        self.count = 0
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.enabled = (
            progress_enabled(self.stream) if enabled is None else enabled
        )
        self._start = time.perf_counter()
        self._last_draw = 0.0
        self._drew = False

    # ------------------------------------------------------------------
    @property
    def elapsed(self) -> float:
        """Seconds since the meter was created."""
        return time.perf_counter() - self._start

    @property
    def rate(self) -> float:
        """Items per second so far (0.0 before any time has passed)."""
        elapsed = self.elapsed
        return self.count / elapsed if elapsed > 0 else 0.0

    @property
    def eta_seconds(self) -> float | None:
        """Estimated seconds to completion (None without a total/rate)."""
        if self.total is None or self.count == 0:
            return None
        rate = self.rate
        if rate <= 0:
            return None
        return (self.total - self.count) / rate

    # ------------------------------------------------------------------
    def update(self, n: int = 1) -> None:
        """Advance the meter by ``n`` items and maybe redraw."""
        self.count += n
        if not self.enabled:
            return
        now = time.perf_counter()
        if now - self._last_draw >= self.min_interval:
            self._last_draw = now
            self._draw()

    def _line(self) -> str:
        parts = [self.label] if self.label else []
        if self.total:
            parts.append(
                f"{self.count}/{self.total} ({100 * self.count / self.total:.0f}%)"
            )
        else:
            parts.append(str(self.count))
        parts.append(f"{self.rate:.1f}/s")
        eta = self.eta_seconds
        if eta is not None:
            parts.append(f"eta {_format_eta(eta)}")
        return " ".join(parts)

    def _draw(self) -> None:
        self._drew = True
        self.stream.write("\r\x1b[2K" + self._line())
        self.stream.flush()

    def close(self) -> None:
        """Draw the final state and terminate the status line."""
        if self.enabled and (self._drew or self.count):
            self._draw()
            self.stream.write("\n")
            self.stream.flush()

    def __enter__(self) -> "Progress":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def progress_iter(
    iterable: Iterable[_T],
    label: str = "",
    total: int | None = None,
    stream: IO[str] | None = None,
) -> Iterator[_T]:
    """Yield from ``iterable`` while driving a :class:`Progress` meter."""
    if total is None:
        try:
            total = len(iterable)  # type: ignore[arg-type]
        except TypeError:
            total = None
    meter = Progress(total=total, label=label, stream=stream)
    if not meter.enabled:  # zero-overhead path for batch runs
        yield from iterable
        return
    with meter:
        for item in iterable:
            yield item
            meter.update()
