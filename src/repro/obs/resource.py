"""/proc-based process resource telemetry: CPU%, RSS, fds, I/O.

Campaign workers burn whole cores for minutes; when one of them starts
swapping or leaking descriptors the injection rate quietly collapses long
before anything crashes. This module samples a process's host footprint
straight from ``/proc`` (no dependencies) and publishes it as ordinary
gauges, so it rides the existing cross-process telemetry pipeline
(:mod:`repro.obs.remote` cumulative snapshots) and shows up per-worker in
the Prometheus export and the live console::

    resource.cpu_percent{worker=1}  97.5
    resource.rss_bytes{worker=1}    73400320
    resource.open_fds{worker=1}     12

Workers call :func:`sample_self` once per injection (it rate-limits
itself); the coordinator calls it on its reaper tick. On platforms
without ``/proc`` (macOS, Windows) everything degrades to a no-op —
resource telemetry must never take down the campaign it watches.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.obs.metrics import MetricsRegistry, get_registry

#: The gauge-name prefix every published sample field lands under.
GAUGE_PREFIX = "resource."

#: Default minimum seconds between published self-samples.
MIN_INTERVAL = 1.0

_PROC = Path("/proc")


def available(pid: int | None = None) -> bool:
    """Whether ``/proc`` exposes the stat file for ``pid`` (default: self)."""
    pid = os.getpid() if pid is None else pid
    return (_PROC / str(pid) / "stat").is_file()


@dataclass(frozen=True)
class ResourceSample:
    """One point-in-time host-footprint reading of a process."""

    pid: int
    mono: float
    #: CPU utilization since the previous sample (0.0 on the first one).
    cpu_percent: float
    #: Cumulative user+system CPU seconds.
    cpu_seconds: float
    rss_bytes: int
    open_fds: int
    io_read_bytes: int
    io_write_bytes: int

    def as_gauges(self) -> dict[str, float]:
        """The published fields, keyed by their ``resource.*`` gauge names."""
        return {
            GAUGE_PREFIX + "cpu_percent": self.cpu_percent,
            GAUGE_PREFIX + "cpu_seconds": self.cpu_seconds,
            GAUGE_PREFIX + "rss_bytes": float(self.rss_bytes),
            GAUGE_PREFIX + "open_fds": float(self.open_fds),
            GAUGE_PREFIX + "io_read_bytes": float(self.io_read_bytes),
            GAUGE_PREFIX + "io_write_bytes": float(self.io_write_bytes),
        }


class ResourceSampler:
    """Repeated ``/proc`` sampling of one pid, with CPU% from tick deltas.

    Each :meth:`sample` reads ``/proc/<pid>/stat`` (utime+stime, rss),
    counts ``/proc/<pid>/fd`` entries, and reads ``/proc/<pid>/io`` when
    the kernel permits. CPU% is the cumulative-CPU-seconds delta between
    consecutive samples over the elapsed monotonic time, so a sampler must
    be kept alive between calls to get a meaningful utilization figure.
    """

    def __init__(self, pid: int | None = None) -> None:
        self.pid = os.getpid() if pid is None else int(pid)
        try:
            self._hertz = float(os.sysconf("SC_CLK_TCK")) or 100.0
        except (ValueError, OSError, AttributeError):
            self._hertz = 100.0
        try:
            self._page = float(os.sysconf("SC_PAGE_SIZE")) or 4096.0
        except (ValueError, OSError, AttributeError):
            self._page = 4096.0
        self._last: tuple[float, float] | None = None  # (mono, cpu_seconds)

    # ------------------------------------------------------------------
    def _proc(self, name: str) -> Path:
        return _PROC / str(self.pid) / name

    def _read_stat(self) -> tuple[float, int]:
        """``(cpu_seconds, rss_bytes)`` from ``/proc/<pid>/stat``.

        The comm field may contain spaces and parentheses, so fields are
        parsed from after the *last* ``)``; in that remainder (state being
        field 0) utime/stime are fields 11/12 and rss pages field 21.
        """
        text = self._proc("stat").read_text()
        fields = text[text.rindex(")") + 2 :].split()
        cpu = (float(fields[11]) + float(fields[12])) / self._hertz
        rss = int(float(fields[21]) * self._page)
        return cpu, rss

    def _count_fds(self) -> int:
        try:
            return len(os.listdir(self._proc("fd")))
        except OSError:
            return 0

    def _read_io(self) -> tuple[int, int]:
        read_bytes = write_bytes = 0
        try:
            for line in self._proc("io").read_text().splitlines():
                key, _, value = line.partition(":")
                if key == "read_bytes":
                    read_bytes = int(value)
                elif key == "write_bytes":
                    write_bytes = int(value)
        except (OSError, ValueError):
            pass  # /proc/<pid>/io needs ptrace rights for other processes
        return read_bytes, write_bytes

    # ------------------------------------------------------------------
    def sample(self) -> ResourceSample | None:
        """One reading, or ``None`` when /proc is absent or the pid died."""
        now = time.monotonic()
        try:
            cpu_seconds, rss_bytes = self._read_stat()
        except (OSError, ValueError, IndexError):
            return None
        cpu_percent = 0.0
        if self._last is not None:
            elapsed = now - self._last[0]
            if elapsed > 0:
                cpu_percent = max(
                    0.0, 100.0 * (cpu_seconds - self._last[1]) / elapsed
                )
        self._last = (now, cpu_seconds)
        read_bytes, write_bytes = self._read_io()
        return ResourceSample(
            pid=self.pid,
            mono=now,
            cpu_percent=cpu_percent,
            cpu_seconds=cpu_seconds,
            rss_bytes=rss_bytes,
            open_fds=self._count_fds(),
            io_read_bytes=read_bytes,
            io_write_bytes=write_bytes,
        )

    def publish(
        self, registry: MetricsRegistry | None = None
    ) -> ResourceSample | None:
        """Sample and set the ``resource.*`` gauges; returns the sample."""
        sample = self.sample()
        if sample is None:
            return None
        registry = registry or get_registry()
        for name, value in sample.as_gauges().items():
            registry.gauge(name).set(value)
        return sample


# ----------------------------------------------------------------------
# Self-sampling hook (workers, coordinator tick)
# ----------------------------------------------------------------------
_self_sampler: ResourceSampler | None = None
_last_published = 0.0


def sample_self(
    registry: MetricsRegistry | None = None,
    min_interval: float = MIN_INTERVAL,
) -> ResourceSample | None:
    """Publish this process's ``resource.*`` gauges, rate-limited.

    Cheap enough to call from hot paths (one injection, one coordinator
    tick): between publishes — and always on platforms without ``/proc``
    — it returns ``None`` without touching the filesystem. The gauges land
    in the (global) registry, so worker-side cumulative telemetry flushes
    (:func:`repro.obs.remote.flush_worker_metrics`) carry them home and
    they surface labelled per worker after :func:`repro.obs.remote.collect`.
    """
    global _self_sampler, _last_published
    now = time.monotonic()
    if _self_sampler is not None and now - _last_published < min_interval:
        return None
    if _self_sampler is None:
        if not available():
            return None
        _self_sampler = ResourceSampler()
    _last_published = now
    return _self_sampler.publish(registry)


def reset() -> None:
    """Forget the self-sampler (test isolation; safe any time)."""
    global _self_sampler, _last_published
    _self_sampler = None
    _last_published = 0.0
