"""Chrome trace-event JSON export of the merged cross-process timeline.

Renders a :class:`~repro.obs.remote.MergedTelemetry` in the Trace Event
Format that Perfetto (https://ui.perfetto.dev) and Chrome's legacy
``about://tracing`` load directly: one process track per campaign worker
plus one for the parent, named via metadata events.

Event mapping:

- every span occurrence becomes one complete (``"ph": "X"``) event with
  microsecond ``ts``/``dur`` relative to the earliest event in the trace;
- each process additionally gets one ``"B"``/``"E"`` pair bracketing its
  first-to-last recorded activity (the "alive" lane), so per-worker
  lifetime and utilization are visible at a glance;
- ``process_name`` / ``thread_name`` metadata events label the tracks.

``pid``/``tid`` are the real OS pid of each process (distinct per worker by
construction), so the trace never merges two workers into one track.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.remote import MergedTelemetry


def _track_name(worker: int, pid: int) -> str:
    if worker < 0:
        return f"parent (pid {pid})"
    return f"worker {worker} (pid {pid})"


def trace_events(merged: MergedTelemetry) -> list[dict]:
    """The trace as a list of trace-event dicts (see module docstring)."""
    if not merged.timeline:
        return []
    base = min(event.start for event in merged.timeline)

    def micros(t: float) -> int:
        return max(0, round((t - base) * 1e6))

    out: list[dict] = []
    for worker in sorted(merged.workers):
        pid = merged.workers[worker]
        name = _track_name(worker, pid)
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": pid,
                "args": {"name": name},
            }
        )
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": pid,
                "args": {"name": "main"},
            }
        )
        spans = [e for e in merged.timeline if e.worker == worker]
        if spans:
            first = min(e.start for e in spans)
            last = max(e.end for e in spans)
            out.append(
                {
                    "name": "alive",
                    "cat": "lifetime",
                    "ph": "B",
                    "ts": micros(first),
                    "pid": pid,
                    "tid": pid,
                }
            )
            out.append(
                {
                    "name": "alive",
                    "cat": "lifetime",
                    "ph": "E",
                    "ts": micros(last),
                    "pid": pid,
                    "tid": pid,
                }
            )
    for event in merged.timeline:
        doc = {
            "name": event.path,
            "cat": "span",
            "ph": "X",
            "ts": micros(event.start),
            "dur": max(0, round(event.duration * 1e6)),
            "pid": event.pid,
            "tid": event.pid,
        }
        if event.attrs:
            doc["args"] = dict(event.attrs)
        out.append(doc)
    out.sort(key=lambda doc: (doc.get("ts", -1), doc.get("ph") != "M"))
    return out


def write_trace(path: str | Path, merged: MergedTelemetry) -> Path:
    """Write the trace as a Perfetto-loadable JSON object.

    Uses the ``{"traceEvents": [...]}`` object form so viewers that expect
    display hints keep working; the array form is equivalent for Perfetto.
    """
    path = Path(path)
    doc = {"traceEvents": trace_events(merged), "displayTimeUnit": "ms"}
    path.write_text(json.dumps(doc) + "\n", encoding="utf-8")
    return path
