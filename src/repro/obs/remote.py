"""Cross-process telemetry: stream worker metrics home, merge on one timeline.

Pool workers (:mod:`repro.fi.runner`) record spans and counters into their
*own* process-global registry — without this module that state dies with
the worker. The pipeline here has three parts:

- :class:`TelemetryWriter` (worker *and* parent side) — streams telemetry
  records as crash-tolerant JSONL to one file per process: every line is a
  single ``os.write`` to an ``O_APPEND`` descriptor, so a SIGKILLed worker
  leaves at most one torn final line (the same durability discipline as
  :mod:`repro.fi.journal`). The first line is a ``hello`` carrying the
  process's ``(time.monotonic(), time.time())`` pair; spans stream through
  the regular :mod:`repro.obs.events` sink interface with monotonic
  start/end stamps; :func:`flush_metrics` appends cumulative registry
  snapshots (last one wins).
- :func:`load_telemetry` — torn-tail-tolerant loader for one file.
- :class:`TelemetryCollector` / :func:`collect` — merges every per-process
  file of a telemetry directory into a :class:`MergedTelemetry`: counters,
  gauges, and histograms land in the (parent) registry under
  ``name{worker=n}`` labels (:func:`~repro.obs.metrics.labeled_name`), span
  occurrences land under ``path{worker=n}``, and all span events are
  aligned onto one shared timeline using each process's hello clock pair
  (``wall - monotonic`` maps that process's monotonic stamps to the shared
  wall clock — all processes run on one host).

Worker processes call :func:`enable_worker_telemetry` from their pool
initializer; :func:`reset` (wired into ``repro.obs.reset``) tears the
module-global writer down so tests never leak telemetry state.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import events
from repro.obs.metrics import (
    MetricsRegistry,
    counter,
    get_registry,
    labeled_name,
)

FORMAT_VERSION = 1

#: Raw histogram samples shipped per metrics flush (percentile fidelity
#: without unbounded record growth).
_SAMPLES_PER_FLUSH = 512

#: The parent's telemetry file name; workers use ``worker-<pid>.jsonl``.
PARENT_FILE = "parent.jsonl"


class TelemetryError(Exception):
    """A telemetry file is unusable (corrupt before its final line)."""


def worker_file(directory: str | Path, pid: int | None = None) -> Path:
    """The telemetry file path for one worker process."""
    return Path(directory) / f"worker-{pid if pid is not None else os.getpid()}.jsonl"


def hello_record(role: str, pid: int | None = None) -> dict:
    """The hello line opening every telemetry stream.

    Carries this process's ``(monotonic, wall)`` clock pair so the
    collector can align its span stamps onto the shared timeline. The
    distributed campaign service sends this same record over the wire in
    its handshake, and the coordinator replays it verbatim as the first
    line of the relayed worker file — so remote workers merge exactly like
    local pool workers.
    """
    return {
        "kind": "hello",
        "version": FORMAT_VERSION,
        "role": role,
        "pid": pid if pid is not None else os.getpid(),
        "mono": time.monotonic(),
        "wall": time.time(),
    }


def metrics_snapshot(registry: MetricsRegistry | None = None) -> dict:
    """One cumulative registry snapshot as a telemetry record.

    Counters/gauges ship whole; histograms ship exact aggregates plus a
    capped sample prefix. Snapshots are cumulative, so the collector only
    ever reads the *last* one per stream — a lost tail costs recency, never
    correctness of earlier lines.
    """
    registry = registry or get_registry()
    histograms = {}
    for name, hist in registry.histograms.items():
        snap: dict[str, object] = {
            "count": hist.count,
            "sum": hist.total,
            "min": hist.min if hist.count else 0.0,
            "max": hist.max if hist.count else 0.0,
        }
        samples = hist.samples
        if samples:
            snap["samples"] = samples[:_SAMPLES_PER_FLUSH]
        histograms[name] = snap
    return {
        "kind": "metrics",
        "mono": time.monotonic(),
        "counters": {n: c.value for n, c in registry.counters.items()},
        "gauges": {n: g.value for n, g in registry.gauges.items()},
        "histograms": histograms,
    }


class TelemetryWriter:
    """Append-side of one process's telemetry file.

    Duck-compatible with :class:`repro.obs.events.JsonlSink` (``write`` /
    ``close``), so installing it via ``events.install_sink`` makes every
    finished span stream into the file with its monotonic stamps.
    """

    def __init__(
        self, path: str | Path, role: str = "worker", hello: dict | None = None
    ) -> None:
        """Open ``path`` and write its hello line.

        ``hello`` overrides the hello record — the distributed-campaign
        coordinator passes the record a *remote* worker sent in its
        handshake, so the relayed file carries that worker's pid and clock
        pair instead of the coordinator's.
        """
        self.path = Path(path)
        hello = dict(hello) if hello is not None else hello_record(role)
        self.role = str(hello.get("role", role))
        self.pid = int(hello.get("pid", os.getpid()))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Only a fresh file gets the hello — appending to an existing
        # stream (a resumed campaign, a reconnected remote worker) must not
        # inject a second hello line mid-file.
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._fd: int | None = os.open(
            self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        if fresh:
            self.write(hello)

    def write(self, record: dict[str, object]) -> None:
        """Append one record as a single whole-line ``os.write``."""
        if self._fd is None:
            return
        os.write(self._fd, (json.dumps(record, default=str) + "\n").encode())

    def emit(self, kind: str, **fields: object) -> None:
        """Append a custom record with a monotonic stamp."""
        self.write({"kind": kind, "mono": time.monotonic(), **fields})

    def flush_metrics(self, registry: MetricsRegistry | None = None) -> None:
        """Append a cumulative snapshot of the registry's metrics
        (see :func:`metrics_snapshot`)."""
        self.write(metrics_snapshot(registry))

    def close(self) -> None:
        """Release the descriptor (O_APPEND writes need no extra flush)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


class TelemetryBuffer:
    """In-memory telemetry stream for relaying records over a socket.

    Duck-compatible with :class:`TelemetryWriter` (``write`` / ``emit`` /
    ``flush_metrics`` / ``close``) but appends records to a list instead of
    a file. A remote injector worker installs one as its events sink,
    :meth:`drain`\\ s it after every injection, and ships the drained batch
    inside its next wire message; the coordinator appends the batch to a
    relayed per-worker JSONL file, so :func:`collect` and everything
    downstream (dashboard, Prometheus export, warehouse ingest) work on
    remote campaigns unchanged.
    """

    def __init__(self) -> None:
        self.records: list[dict] = []

    def write(self, record: dict) -> None:
        self.records.append(record)

    def emit(self, kind: str, **fields: object) -> None:
        self.write({"kind": kind, "mono": time.monotonic(), **fields})

    def flush_metrics(self, registry: MetricsRegistry | None = None) -> None:
        self.write(metrics_snapshot(registry))

    def drain(self) -> list[dict]:
        """Take every buffered record, leaving the buffer empty."""
        drained, self.records = self.records, []
        return drained

    def close(self) -> None:
        self.records.clear()


# ----------------------------------------------------------------------
# Worker-side module globals
# ----------------------------------------------------------------------
_worker_writer: TelemetryWriter | None = None


def enable_worker_telemetry(directory: str | Path) -> TelemetryWriter:
    """Install this process's telemetry writer (idempotent per process).

    Called from the pool initializer of spawned campaign workers: opens
    ``worker-<pid>.jsonl`` in ``directory``, registers the writer as an
    events sink (spans stream from then on), and remembers it for
    :func:`flush_worker_metrics` / :func:`worker_event`.
    """
    global _worker_writer
    if _worker_writer is not None:
        return _worker_writer
    _worker_writer = TelemetryWriter(worker_file(directory), role="worker")
    events.install_sink(_worker_writer)  # type: ignore[arg-type]
    return _worker_writer


def worker_event(kind: str, **fields: object) -> None:
    """Emit a custom record from a worker (no-op without telemetry)."""
    if _worker_writer is not None:
        _worker_writer.emit(kind, **fields)


def flush_worker_metrics() -> None:
    """Snapshot this worker's registry into its file (no-op if disabled)."""
    if _worker_writer is not None:
        _worker_writer.flush_metrics()


def reset() -> None:
    """Drop the worker-side writer (test isolation; safe any time).

    The writer is *not* removed from the events sink list here — callers
    reset sinks through ``repro.obs.reset`` / ``events.clear_sinks``, which
    closes it; this just forgets the module-global handle.
    """
    global _worker_writer
    if _worker_writer is not None:
        _worker_writer.close()
        _worker_writer = None


# ----------------------------------------------------------------------
# Load side
# ----------------------------------------------------------------------
#: Worker telemetry file names carry the pid — the identity fallback when
#: the hello record is missing.
_WORKER_NAME = re.compile(r"^worker-(\d+)\.jsonl$")


@dataclass
class TelemetryFile:
    """Everything recovered from one per-process telemetry file."""

    path: Path
    #: The hello record; empty when the file lost its hello and was loaded
    #: leniently (``load_telemetry(..., require_hello=False)``).
    hello: dict
    #: All records after the hello, in file order (spans, custom, metrics).
    records: list[dict] = field(default_factory=list)
    #: Clock offset imposed by the collector for hello-less files (aligned
    #: to the parent's clock — CLOCK_MONOTONIC is system-wide on one host).
    offset_override: float | None = None

    @property
    def pid(self) -> int:
        if "pid" in self.hello:
            return int(self.hello["pid"])
        match = _WORKER_NAME.match(self.path.name)
        return int(match.group(1)) if match else 0

    @property
    def role(self) -> str:
        if self.hello:
            return str(self.hello.get("role", "worker"))
        return "parent" if self.path.name == PARENT_FILE else "worker"

    @property
    def has_clock(self) -> bool:
        """Whether this file can align its own monotonic stamps."""
        return self.offset_override is not None or "wall" in self.hello

    @property
    def clock_offset(self) -> float:
        """Add to this process's monotonic stamps to get wall-clock time."""
        if self.offset_override is not None:
            return self.offset_override
        if "wall" in self.hello:
            return float(self.hello["wall"]) - float(self.hello["mono"])
        return 0.0

    @property
    def last_metrics(self) -> dict | None:
        """The most recent cumulative metrics snapshot, if any."""
        for record in reversed(self.records):
            if record.get("kind") == "metrics":
                return record
        return None


def load_telemetry(path: str | Path, require_hello: bool = True) -> TelemetryFile:
    """Parse one telemetry file, tolerating a torn trailing line.

    A final line torn by a crash/SIGKILL is dropped with an
    ``obs.telemetry.torn_tail`` counter bump; a malformed line *before* the
    end means real corruption and raises :class:`TelemetryError`.

    With ``require_hello=False`` a file whose first line is an ordinary
    record (the hello was lost — e.g. the head of the file was truncated)
    loads anyway with an empty :attr:`TelemetryFile.hello` and an
    ``obs.telemetry.no_hello`` counter bump; the caller must supply clock
    alignment via :attr:`TelemetryFile.offset_override`. A *present* hello
    with an unsupported version is always an error — that is a format
    mismatch, not data loss.
    """
    path = Path(path)
    if not path.exists():
        raise TelemetryError(f"no telemetry file at {path}")
    lines = path.read_bytes().split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    if not lines:
        raise TelemetryError(f"telemetry file {path} is empty")
    try:
        first = json.loads(lines[0])
        if not isinstance(first, dict):
            raise ValueError("not a telemetry record object")
    except ValueError as exc:
        raise TelemetryError(
            f"telemetry file {path} has an unparsable hello line: {exc}"
        ) from exc
    if first.get("kind") == "hello":
        if first.get("version") != FORMAT_VERSION:
            raise TelemetryError(
                f"telemetry file {path} has an unsupported hello "
                f"(version={first.get('version')!r})"
            )
        out = TelemetryFile(path=path, hello=first)
        body_start = 1
    elif require_hello or "kind" not in first:
        raise TelemetryError(
            f"telemetry file {path} has an unsupported hello "
            f"(kind={first.get('kind')!r}, version={first.get('version')!r})"
        )
    else:
        counter("obs.telemetry.no_hello").inc()
        out = TelemetryFile(path=path, hello={})
        body_start = 0
    last = len(lines) - 1
    for lineno, line in enumerate(lines[body_start:], start=body_start):
        try:
            doc = json.loads(line)
            if not isinstance(doc, dict) or "kind" not in doc:
                raise ValueError("not a telemetry record object")
        except (ValueError, TypeError) as exc:
            if lineno == last:
                counter("obs.telemetry.torn_tail").inc()
                break
            raise TelemetryError(
                f"telemetry file {path} is corrupt at line {lineno + 1}: {exc}"
            ) from exc
        out.records.append(doc)
    return out


# ----------------------------------------------------------------------
# Collector
# ----------------------------------------------------------------------
@dataclass
class TimelineEvent:
    """One span occurrence on the merged cross-process timeline."""

    #: ``worker=<n>`` index, or -1 for the parent process.
    worker: int
    pid: int
    path: str
    name: str
    #: Shared-timeline (wall-clock) start/end, seconds.
    start: float
    end: float
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class MergedTelemetry:
    """The collector's result: one timeline + per-worker identities."""

    #: worker index -> pid (the parent, if present, is index -1).
    workers: dict[int, int] = field(default_factory=dict)
    #: All span occurrences, sorted by aligned start time.
    timeline: list[TimelineEvent] = field(default_factory=list)
    #: Non-span custom records as ``(worker, aligned_time, record)``.
    custom: list[tuple[int, float, dict]] = field(default_factory=list)
    #: Files the loader refused (corrupt beyond the torn tail).
    corrupt_files: list[Path] = field(default_factory=list)

    def span_events(self, name: str | None = None) -> list[TimelineEvent]:
        """Timeline events, optionally filtered by span *name*."""
        if name is None:
            return list(self.timeline)
        return [e for e in self.timeline if e.name == name]


def _worker_label(worker: int) -> dict[str, object]:
    return {"worker": worker} if worker >= 0 else {"worker": "parent"}


def _merge_file(
    telemetry: TelemetryFile,
    worker: int,
    registry: MetricsRegistry,
    merged: MergedTelemetry,
) -> None:
    label = _worker_label(worker)
    offset = telemetry.clock_offset
    for record in telemetry.records:
        kind = record.get("kind")
        if kind == "span" and "mono_start" in record and "mono_end" in record:
            merged.timeline.append(
                TimelineEvent(
                    worker=worker,
                    pid=telemetry.pid,
                    path=str(record.get("path", "")),
                    name=str(record.get("name", "")),
                    start=float(record["mono_start"]) + offset,
                    end=float(record["mono_end"]) + offset,
                    attrs=dict(record.get("attrs") or {}),
                )
            )
        elif kind not in ("metrics", "span"):
            stamp = float(record.get("mono", 0.0)) + offset
            merged.custom.append((worker, stamp, record))
    metrics = telemetry.last_metrics
    if metrics:
        for name, value in metrics.get("counters", {}).items():
            registry.counter(labeled_name(name, **label)).inc(int(value))
        for name, value in metrics.get("gauges", {}).items():
            registry.gauge(labeled_name(name, **label)).set(float(value))
        for name, snap in metrics.get("histograms", {}).items():
            registry.histogram(labeled_name(name, **label)).merge(
                int(snap.get("count", 0)),
                float(snap.get("sum", 0.0)),
                float(snap.get("min", 0.0)),
                float(snap.get("max", 0.0)),
                snap.get("samples", ()),
            )


def collect(
    directory: str | Path, registry: MetricsRegistry | None = None
) -> MergedTelemetry:
    """Merge every telemetry file under ``directory`` (see module docstring).

    Worker files get indices 0..k-1 in ascending-pid order (stable for a
    given directory); the parent file, when present, is index -1. Corrupt
    files are skipped with an ``obs.telemetry.corrupt_files`` counter bump
    and listed in :attr:`MergedTelemetry.corrupt_files` — telemetry must
    never take down the campaign that produced it.

    A worker file that lost its hello record is *not* dropped: its records
    are kept (``obs.telemetry.no_hello`` counts such files), its pid comes
    from the ``worker-<pid>.jsonl`` file name, and its monotonic stamps are
    aligned with the parent's clock offset — valid because
    ``CLOCK_MONOTONIC`` is system-wide for all processes on one host.
    """
    registry = registry or get_registry()
    directory = Path(directory)
    merged = MergedTelemetry()
    files: list[TelemetryFile] = []
    for path in sorted(directory.glob("*.jsonl")):
        try:
            files.append(load_telemetry(path, require_hello=False))
        except TelemetryError:
            counter("obs.telemetry.corrupt_files").inc()
            merged.corrupt_files.append(path)
    # Clock for hello-less files: the parent's offset when available, else
    # any sibling that still has its hello (same host, same clock).
    reference = next(
        (f.clock_offset for f in files if f.has_clock and f.role != "worker"),
        next((f.clock_offset for f in files if f.has_clock), 0.0),
    )
    for f in files:
        if not f.has_clock:
            f.offset_override = reference
    workers = sorted(
        (f for f in files if f.role == "worker"), key=lambda f: (f.pid, f.path)
    )
    ordered: list[tuple[int, TelemetryFile]] = [
        (index, telemetry) for index, telemetry in enumerate(workers)
    ]
    ordered.extend((-1, f) for f in files if f.role != "worker")
    for index, telemetry in ordered:
        merged.workers[index] = telemetry.pid
        _merge_file(telemetry, index, registry, merged)
    merged.timeline.sort(key=lambda e: (e.start, e.end))
    merged.custom.sort(key=lambda item: item[1])
    for event in merged.timeline:
        registry.span_stats(
            labeled_name(event.path, **_worker_label(event.worker))
        ).record(event.duration)
    return merged
