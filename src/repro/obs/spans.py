"""Hierarchical wall-time spans.

A span measures one phase of the pipeline::

    with span("mate-search") as sp:
        ...
        with span("enumerate-paths"):   # path: mate-search/enumerate-paths
            ...
        sp.set(wires=len(results))

Nesting is tracked per thread: a span's *path* is the ``/``-joined chain of
the active span names, so the same helper instrumented from two different
callers aggregates under two different paths. On exit, every span

- folds its elapsed wall time into the global registry's per-path
  :class:`~repro.obs.metrics.SpanStats`, and
- emits a structured ``span`` event to the installed sinks (JSONL).

Spans are cheap (one ``perf_counter`` pair plus a dict update) and become
near-free no-ops when observability is disabled via :func:`set_enabled`.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager

from repro.obs import events
from repro.obs.metrics import get_registry

_local = threading.local()

#: Global on/off switch for span recording (see :func:`set_enabled`).
_enabled = True


def set_enabled(enabled: bool) -> None:
    """Enable or disable span recording and event emission globally."""
    global _enabled
    _enabled = bool(enabled)


def is_enabled() -> bool:
    """True when spans are being recorded."""
    return _enabled


def _stack() -> list[str]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_path() -> str:
    """Path of the innermost active span on this thread ("" outside spans)."""
    return "/".join(_stack())


class Span:
    """One live span occurrence; attach attributes via :meth:`set`."""

    __slots__ = (
        "name", "path", "depth", "attrs", "elapsed", "start_monotonic", "_start"
    )

    def __init__(
        self, name: str, path: str, depth: int, attrs: dict[str, object]
    ) -> None:
        self.name = name
        self.path = path
        self.depth = depth
        self.attrs = attrs
        #: Wall-clock seconds; populated when the span closes.
        self.elapsed = 0.0
        #: ``time.monotonic()`` at entry — the cross-process telemetry
        #: collector aligns these stamps onto one shared timeline.
        self.start_monotonic = time.monotonic()
        self._start = time.perf_counter()

    def set(self, **attrs: object) -> "Span":
        """Attach (or overwrite) event attributes on this span."""
        self.attrs.update(attrs)
        return self


class _NullSpan:
    """Inert stand-in yielded while observability is disabled."""

    __slots__ = ()
    name = ""
    path = ""
    depth = 0
    elapsed = 0.0
    start_monotonic = 0.0
    attrs: dict[str, object] = {}

    def set(self, **attrs: object) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


@contextmanager
def span(name: str, **attrs: object) -> Iterator[Span | _NullSpan]:
    """Context manager measuring one named phase (see module docstring)."""
    if not _enabled:
        yield _NULL_SPAN
        return
    stack = _stack()
    stack.append(name)
    live = Span(name, "/".join(stack), len(stack), dict(attrs))
    error: str | None = None
    try:
        yield live
    except BaseException as exc:
        error = type(exc).__name__
        raise
    finally:
        live.elapsed = time.perf_counter() - live._start
        stack.pop()
        get_registry().span_stats(live.path).record(live.elapsed)
        if events.has_sinks():
            payload = {
                "kind": "span",
                "path": live.path,
                "name": live.name,
                "depth": live.depth,
                "elapsed_s": live.elapsed,
                "mono_start": live.start_monotonic,
                "mono_end": time.monotonic(),
            }
            if error is not None:
                payload["error"] = error
            if live.attrs:
                payload["attrs"] = live.attrs
            events.emit(payload)


def timed(name: str):
    """Decorator form: run the wrapped function inside ``span(name)``."""

    def wrap(fn):
        def inner(*args: object, **kwargs: object):
            with span(name):
                return fn(*args, **kwargs)

        inner.__name__ = getattr(fn, "__name__", "timed")
        inner.__doc__ = fn.__doc__
        return inner

    return wrap
