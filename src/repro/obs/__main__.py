"""``python -m repro.obs`` — offline observability tooling.

Currently one subcommand::

    python -m repro.obs flame <telemetry-dir|journal> [--out flame.html]
        [--collapsed stacks.txt] [--title ...]

which folds a campaign's span telemetry into a self-contained flamegraph
(and, optionally, collapsed-stack text for external profiler tooling).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.obs.flame import (
    collapsed_stacks,
    load_span_totals,
    write_flamegraph,
)


def _cmd_flame(args: argparse.Namespace) -> int:
    try:
        totals = load_span_totals(args.source)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not totals:
        print(f"error: no spans recorded under {args.source}", file=sys.stderr)
        return 2
    title = args.title or f"span flamegraph — {Path(args.source).name}"
    if args.collapsed is not None:
        Path(args.collapsed).write_text(
            collapsed_stacks(totals), encoding="utf-8"
        )
        print(f"collapsed stacks -> {args.collapsed}")
    out = write_flamegraph(args.out, totals, title=title)
    print(f"flamegraph ({len(totals)} span path(s)) -> {out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="offline observability tooling (flamegraphs)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    flame_p = sub.add_parser(
        "flame",
        help="render a flamegraph from span telemetry",
        description=(
            "Fold span aggregates from a telemetry directory (or a "
            "journal's .telemetry sibling) into a self-contained "
            "flamegraph HTML file."
        ),
    )
    flame_p.add_argument(
        "source", help="telemetry directory or campaign journal path"
    )
    flame_p.add_argument(
        "--out",
        default="flame.html",
        help="output HTML path (default: %(default)s)",
    )
    flame_p.add_argument(
        "--collapsed",
        metavar="PATH",
        default=None,
        help="also write collapsed-stack text to PATH",
    )
    flame_p.add_argument(
        "--title", default=None, help="page title (default: derived)"
    )
    flame_p.set_defaults(func=_cmd_flame)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
