"""repro.obs — observability for the pruning pipeline.

One import gives instrumented code everything it needs::

    from repro import obs

    with obs.span("mate-search", netlist=netlist.name):
        obs.counter("search.candidates.generated").inc(tried)
        obs.histogram("search.cone.gates").observe(cone.num_gates)

and gives operators one-call reporting::

    print(obs.summary())          # aligned text tables
    obs.write_json("metrics.json")
    obs.prometheus_text()

Components
----------
- :mod:`repro.obs.metrics` — process-global :class:`MetricsRegistry` of
  named counters, gauges, and histograms (thread-safe, resettable);
- :mod:`repro.obs.spans` — hierarchical wall-time spans (``with
  span("phase"):``) aggregated per path and streamed as events;
- :mod:`repro.obs.events` — structured JSONL event sink;
- :mod:`repro.obs.export` — JSON snapshot / summary table / Prometheus
  text exporters;
- :mod:`repro.obs.progress` — TTY progress meter (rate, ETA) for long
  loops, silent in batch runs;
- :mod:`repro.obs.http` — embedded live console (``/metrics``,
  ``/status.json``, SSE dashboard) for the coordinator and ``--serve``;
- :mod:`repro.obs.resource` — /proc host-footprint sampler (CPU%, RSS,
  fds, I/O) published as ``resource.*`` gauges;
- :mod:`repro.obs.flame` — collapsed-stack folding + self-contained
  flamegraph rendering from span aggregates;
- :mod:`repro.obs.health` — declarative campaign-health rules
  (``obs.health.*`` gauges, alert edges).

Metric names follow ``subsystem.phase.metric`` (see README, "Metrics
naming"). Tests get a fresh registry per test via the autouse fixture in
``tests/conftest.py`` which calls :func:`reset`.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs import events, flame, health, http, remote, resource, traceevent
from repro.obs.dashboard import CampaignDashboard
from repro.obs.events import JsonlSink, clear_sinks, emit, install_sink, remove_sink
from repro.obs.export import (
    aligned_table,
    prometheus_text,
    snapshot,
    summary,
    write_json,
)
from repro.obs.flame import collapsed_stacks, render_flamegraph, write_flamegraph
from repro.obs.health import Alert, HealthMonitor, default_rules
from repro.obs.http import (
    ConsoleProvider,
    ConsoleServer,
    merged_metrics_text,
    start_in_thread,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SpanStats,
    counter,
    gauge,
    get_registry,
    histogram,
    labeled_name,
    set_registry,
    split_labeled_name,
)
from repro.obs.progress import Progress, progress_enabled, progress_iter, set_progress
from repro.obs.remote import MergedTelemetry, TelemetryWriter, collect
from repro.obs.resource import ResourceSample, ResourceSampler, sample_self
from repro.obs.spans import Span, current_path, is_enabled, set_enabled, span, timed
from repro.obs.traceevent import write_trace


def configure(
    jsonl_path: str | Path | None = None,
    progress: bool | None = None,
    enabled: bool | None = None,
) -> None:
    """One-call setup of the observability layer.

    ``jsonl_path`` installs a JSONL event sink at that path; ``progress``
    forces TTY progress reporting on/off (``None`` keeps auto-detect);
    ``enabled`` switches span recording globally.
    """
    if jsonl_path is not None:
        install_sink(JsonlSink(jsonl_path))
    if progress is not None:
        set_progress(progress)
    if enabled is not None:
        set_enabled(enabled)


def reset() -> None:
    """Restore a pristine state: empty registry, no sinks, defaults on.

    Used by the test suite (autouse fixture) to isolate metrics between
    tests; safe to call any time.
    """
    get_registry().reset()
    clear_sinks()
    remote.reset()
    resource.reset()
    set_progress(None)
    set_enabled(True)


__all__ = [
    "Alert",
    "CampaignDashboard",
    "ConsoleProvider",
    "ConsoleServer",
    "Counter",
    "Gauge",
    "HealthMonitor",
    "Histogram",
    "JsonlSink",
    "MergedTelemetry",
    "MetricsRegistry",
    "Progress",
    "ResourceSample",
    "ResourceSampler",
    "Span",
    "SpanStats",
    "TelemetryWriter",
    "aligned_table",
    "clear_sinks",
    "collapsed_stacks",
    "collect",
    "configure",
    "counter",
    "current_path",
    "default_rules",
    "emit",
    "events",
    "flame",
    "gauge",
    "get_registry",
    "health",
    "histogram",
    "http",
    "install_sink",
    "is_enabled",
    "labeled_name",
    "merged_metrics_text",
    "progress_enabled",
    "progress_iter",
    "prometheus_text",
    "remote",
    "remove_sink",
    "render_flamegraph",
    "reset",
    "resource",
    "sample_self",
    "set_enabled",
    "set_progress",
    "set_registry",
    "snapshot",
    "span",
    "split_labeled_name",
    "start_in_thread",
    "summary",
    "timed",
    "traceevent",
    "write_flamegraph",
    "write_json",
]
