"""Declarative campaign-health rules evaluated on the coordinator tick.

A long fan-out campaign fails quietly: a wedged worker stalls a shard, a
swapping host halves the injection rate, a poisoned target floods the
quarantine, lease churn burns the fleet on reassignments. This module
watches for those shapes over rolling metric windows and surfaces them
everywhere an operator looks:

- ``obs.health.<rule>`` gauges (1 firing / 0 clear) plus an
  ``obs.health.fired`` rising-edge counter in the registry → ``/metrics``;
- the firing list in ``/status.json`` and the live console banner;
- one log line per edge (fire and clear);
- ``submit --wait --fail-on-alert`` exits nonzero on any firing alert.

The engine is deliberately simple: the caller feeds one flat sample dict
per tick (``{"done": 1234, "pending": 7, "rss.4711": 7.3e7, ...}``), each
key becomes a bounded time series, and every rule is a pure predicate
over those series. Rules are plain objects — adding one means writing a
``check`` method, not learning a config language.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry, get_registry

#: Gauge-name prefix of per-rule firing indicators.
GAUGE_PREFIX = "obs.health."


class Series:
    """One bounded ``(time, value)`` window with change-point tracking."""

    def __init__(self, horizon: float = 600.0) -> None:
        self.horizon = horizon
        self._points: deque[tuple[float, float]] = deque()
        self.first_time: float | None = None
        #: When the value last *increased* (first append counts).
        self.last_increase: float | None = None
        #: When the value was last observed at zero.
        self.last_zero: float | None = None

    def append(self, now: float, value: float) -> None:
        value = float(value)
        if self.first_time is None:
            self.first_time = now
            self.last_increase = now
        elif self._points and value > self._points[-1][1]:
            self.last_increase = now
        if value == 0:
            self.last_zero = now
        self._points.append((now, value))
        while self._points and now - self._points[0][0] > self.horizon:
            self._points.popleft()

    @property
    def last(self) -> float | None:
        return self._points[-1][1] if self._points else None

    def value_at(self, when: float) -> float | None:
        """The most recent value observed at or before ``when``."""
        best = None
        for stamp, value in self._points:
            if stamp > when:
                break
            best = value
        return best

    def delta(self, window: float, now: float) -> float | None:
        """Value growth over the ``window`` seconds ending at ``now``.

        ``now`` may lie in the past (the rate-drop baseline measures an
        *earlier* window); the endpoint is the value observed at ``now``.
        """
        end = self.value_at(now)
        if end is None:
            return None
        base = self.value_at(now - window)
        if base is None:
            # The window predates the series: measure from its first point
            # only once the series is old enough to cover the window.
            if now - self._points[0][0] < window:
                return None
            base = self._points[0][1]
        return end - base

    def rate(self, window: float, now: float) -> float | None:
        """Average growth per second over the trailing window."""
        delta = self.delta(window, now)
        return None if delta is None else delta / window


@dataclass
class Alert:
    """One firing rule instance."""

    rule: str
    since: float
    reason: str

    def doc(self) -> dict:
        return {"rule": self.rule, "since": self.since, "reason": self.reason}


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
class StalledRule:
    """Work is pending but no record has landed for ``stall_seconds``."""

    name = "stalled"

    def __init__(self, stall_seconds: float = 30.0) -> None:
        self.stall_seconds = stall_seconds

    def check(self, series: dict[str, Series], now: float) -> str | None:
        pending = series.get("pending")
        done = series.get("done")
        if pending is None or done is None or not (pending.last or 0) > 0:
            return None
        marks = [done.last_increase, pending.last_zero, done.first_time]
        anchor = max(m for m in marks if m is not None)
        silent = now - anchor
        if silent > self.stall_seconds:
            return (
                f"{int(pending.last or 0)} point(s) pending but no record "
                f"for {silent:.0f}s (threshold {self.stall_seconds:.0f}s)"
            )
        return None


class RateDropRule:
    """Injections/sec fell below ``(1 - drop)`` of the rolling baseline."""

    name = "rate_drop"

    def __init__(
        self,
        drop: float = 0.7,
        window: float = 30.0,
        baseline_window: float = 120.0,
        min_rate: float = 1.0,
    ) -> None:
        self.drop = drop
        self.window = window
        self.baseline_window = baseline_window
        self.min_rate = min_rate

    def check(self, series: dict[str, Series], now: float) -> str | None:
        done = series.get("done")
        pending = series.get("pending")
        if done is None or not (pending is None or (pending.last or 0) > 0):
            return None  # nothing left to inject — a zero rate is fine
        current = done.rate(self.window, now)
        baseline = done.rate(self.baseline_window, now - self.window)
        if current is None or baseline is None or baseline < self.min_rate:
            return None
        if current < (1.0 - self.drop) * baseline:
            return (
                f"rate {current:.1f}/s is down "
                f"{100 * (1 - current / baseline):.0f}% from the "
                f"{baseline:.1f}/s baseline"
            )
        return None


class QuarantineSpikeRule:
    """``threshold`` or more quarantined points within ``window`` seconds."""

    name = "quarantine_spike"

    def __init__(self, threshold: int = 5, window: float = 60.0) -> None:
        self.threshold = threshold
        self.window = window

    def check(self, series: dict[str, Series], now: float) -> str | None:
        quarantined = series.get("quarantined")
        if quarantined is None:
            return None
        delta = quarantined.delta(self.window, now)
        if delta is not None and delta >= self.threshold:
            return (
                f"{int(delta)} point(s) quarantined in the last "
                f"{self.window:.0f}s (threshold {self.threshold})"
            )
        return None


class LeaseChurnRule:
    """A reassignment storm: too many lease releases per window."""

    name = "lease_churn"

    def __init__(self, threshold: int = 5, window: float = 60.0) -> None:
        self.threshold = threshold
        self.window = window

    def check(self, series: dict[str, Series], now: float) -> str | None:
        releases = series.get("lease_releases")
        if releases is None:
            return None
        delta = releases.delta(self.window, now)
        if delta is not None and delta >= self.threshold:
            return (
                f"{int(delta)} shard lease(s) released in the last "
                f"{self.window:.0f}s (threshold {self.threshold})"
            )
        return None


class RssRunawayRule:
    """A worker's RSS grew past ``growth_bytes`` within the window, or
    crossed the hard ``limit_bytes`` ceiling."""

    name = "rss_runaway"

    def __init__(
        self,
        growth_bytes: float = 512 * 1024 * 1024,
        window: float = 300.0,
        limit_bytes: float = 4 * 1024 * 1024 * 1024,
    ) -> None:
        self.growth_bytes = growth_bytes
        self.window = window
        self.limit_bytes = limit_bytes

    def check(self, series: dict[str, Series], now: float) -> str | None:
        for key, values in series.items():
            if not key.startswith("rss."):
                continue
            worker = key[len("rss.") :]
            last = values.last or 0.0
            if last > self.limit_bytes:
                return (
                    f"worker {worker} RSS {last / 1e6:.0f} MB exceeds the "
                    f"{self.limit_bytes / 1e6:.0f} MB ceiling"
                )
            growth = values.delta(self.window, now)
            if growth is not None and growth > self.growth_bytes:
                return (
                    f"worker {worker} RSS grew {growth / 1e6:.0f} MB in "
                    f"{self.window:.0f}s"
                )
        return None


def default_rules(stall_seconds: float = 30.0) -> list:
    """The standard fleet rule set (see each rule for its thresholds)."""
    return [
        StalledRule(stall_seconds=stall_seconds),
        RateDropRule(),
        QuarantineSpikeRule(),
        LeaseChurnRule(),
        RssRunawayRule(),
    ]


# ----------------------------------------------------------------------
@dataclass
class _Edge:
    fired: list[Alert] = field(default_factory=list)
    cleared: list[str] = field(default_factory=list)


class HealthMonitor:
    """Evaluates a rule set over the sample stream (see module docstring)."""

    def __init__(
        self,
        rules: list | None = None,
        registry: MetricsRegistry | None = None,
        log=None,
        horizon: float = 600.0,
    ) -> None:
        self.rules = default_rules() if rules is None else rules
        self.registry = registry or get_registry()
        self.log = log or (lambda message: None)
        self.horizon = horizon
        self._series: dict[str, Series] = {}
        self._firing: dict[str, Alert] = {}
        self._silenced_until = 0.0
        self.fired_total = 0

    # ------------------------------------------------------------------
    def observe(
        self, sample: dict[str, float], now: float | None = None
    ) -> _Edge:
        """Fold one sample in and evaluate every rule; returns the edges.

        Call once per coordinator tick. Gauges are refreshed on every
        call; log lines and the ``obs.health.fired`` counter only move on
        rising/falling edges.
        """
        now = time.monotonic() if now is None else now
        for key, value in sample.items():
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = Series(self.horizon)
            series.append(now, value)
        edge = _Edge()
        silenced = now < self._silenced_until
        for rule in self.rules:
            reason = None if silenced else rule.check(self._series, now)
            active = self._firing.get(rule.name)
            if reason is not None and active is None:
                alert = Alert(rule.name, now, reason)
                self._firing[rule.name] = alert
                edge.fired.append(alert)
                self.fired_total += 1
                self.registry.counter(GAUGE_PREFIX + "fired").inc()
                self.log(f"health: {rule.name} FIRING — {reason}")
            elif reason is None and active is not None:
                del self._firing[rule.name]
                edge.cleared.append(rule.name)
                self.log(f"health: {rule.name} cleared")
            elif active is not None:
                active.reason = reason  # keep the banner text current
            self.registry.gauge(GAUGE_PREFIX + rule.name).set(
                1.0 if rule.name in self._firing else 0.0
            )
        self.registry.gauge(GAUGE_PREFIX + "firing").set(len(self._firing))
        return edge

    # ------------------------------------------------------------------
    @property
    def firing(self) -> list[Alert]:
        """Currently firing alerts, oldest first."""
        return sorted(self._firing.values(), key=lambda a: a.since)

    def doc(self) -> list[dict]:
        """The firing list as JSON-ready dicts (``/status.json`` shape)."""
        return [alert.doc() for alert in self.firing]

    def series_rate(
        self, key: str, window: float = 30.0, now: float | None = None
    ) -> float | None:
        """Trailing growth/sec of one observed series (rate/ETA reuse).

        The monitor already holds every sample the caller fed it, so
        status reporting can derive injection rates from the same data
        the rules run on instead of keeping a second window.
        """
        now = time.monotonic() if now is None else now
        series = self._series.get(key)
        return None if series is None else series.rate(window, now)

    def silence(self, seconds: float, now: float | None = None) -> float:
        """Suppress all rules for ``seconds``; returns the un-silence time.

        Firing alerts clear on the next :meth:`observe`; conditions that
        persist past the window simply re-fire. This is the operator
        mute button behind the console's authenticated silence endpoint.
        """
        now = time.monotonic() if now is None else now
        self._silenced_until = max(self._silenced_until, now + seconds)
        self.log(f"health: silenced for {seconds:.0f}s")
        return self._silenced_until
