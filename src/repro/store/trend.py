"""Perf-trend analysis and gating over the ingested bench history.

Every ``BENCH_<n>.json`` snapshot that :mod:`repro.eval.bench` writes (and
auto-ingests) becomes one point in a per-workload throughput series. The
trend report renders the whole trajectory — per-unit time, units/second,
and a sparkline — and the **gate** compares the latest snapshot's per-unit
time against the best earlier snapshot: a ratio above ``max_slowdown``
(default 2×, matching ``bench --baseline``) is a regression.

Per-unit comparison means quick (CI) and full snapshots live in one
series without lying to the gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import counter, span
from repro.store.db import BenchRow, ResultsStore

#: Sparkline glyphs, slowest (tallest = fastest throughput) ordering.
_SPARKS = "▁▂▃▄▅▆▇█"


@dataclass
class TrendPoint:
    """One snapshot's contribution to one workload's series."""

    bench_id: int
    sequence: int | None
    path: str | None
    seconds: float
    units: int
    units_per_second: float

    @property
    def per_unit(self) -> float:
        return self.seconds / self.units if self.units else float("inf")

    @property
    def label(self) -> str:
        if self.sequence is not None:
            return f"BENCH_{self.sequence}"
        return f"run {self.bench_id}"


@dataclass
class WorkloadTrend:
    """One workload's full series plus its gate verdict."""

    workload: str
    points: list[TrendPoint] = field(default_factory=list)
    max_slowdown: float = 2.0

    @property
    def latest(self) -> TrendPoint:
        return self.points[-1]

    @property
    def best_earlier(self) -> TrendPoint | None:
        """The fastest (lowest per-unit) snapshot before the latest."""
        earlier = self.points[:-1]
        if not earlier:
            return None
        return min(earlier, key=lambda p: p.per_unit)

    @property
    def slowdown(self) -> float | None:
        """Latest per-unit time / best earlier per-unit time."""
        best = self.best_earlier
        if best is None or best.per_unit <= 0:
            return None
        return self.latest.per_unit / best.per_unit

    @property
    def regressed(self) -> bool:
        ratio = self.slowdown
        return ratio is not None and ratio > self.max_slowdown

    def sparkline(self) -> str:
        """Throughput (units/s) sparkline, oldest to newest."""
        values = [p.units_per_second for p in self.points]
        peak = max(values) or 1.0
        return "".join(
            _SPARKS[min(len(_SPARKS) - 1, int(v / peak * (len(_SPARKS) - 1)))]
            for v in values
        )


def bench_trend(
    store: ResultsStore,
    workload: str | None = None,
    max_slowdown: float = 2.0,
) -> list[WorkloadTrend]:
    """Per-workload trend series over every ingested snapshot, gate armed.

    Snapshots are ordered by their ``BENCH_<n>`` sequence (ingest order
    for unversioned ones). Workloads appearing in fewer than one snapshot
    are skipped; the gate only fires with ≥ 2 points.
    """
    with span("store/trend"):
        runs: list[BenchRow] = store.bench_runs()
        by_workload: dict[str, WorkloadTrend] = {}
        for run in runs:
            for name, (seconds, units, ups) in run.samples.items():
                if workload is not None and name != workload:
                    continue
                trend = by_workload.setdefault(
                    name, WorkloadTrend(workload=name, max_slowdown=max_slowdown)
                )
                trend.points.append(
                    TrendPoint(
                        bench_id=run.id,
                        sequence=run.sequence,
                        path=run.path,
                        seconds=seconds,
                        units=units,
                        units_per_second=ups,
                    )
                )
        trends = [by_workload[name] for name in sorted(by_workload)]
        counter("store.trend.regressions").inc(
            sum(1 for t in trends if t.regressed)
        )
        return trends


def format_trend(trends: list[WorkloadTrend]) -> str:
    """The whole trend report as aligned text (one block per workload)."""
    from repro.obs.export import aligned_table

    if not trends:
        return "no bench snapshots ingested — run: python -m repro.eval bench"
    blocks: list[str] = []
    for trend in trends:
        rows = [
            [
                point.label,
                f"{point.units}",
                f"{point.per_unit * 1e3:.3f}",
                f"{point.units_per_second:.1f}",
            ]
            for point in trend.points
        ]
        blocks.append(
            aligned_table(
                f"{trend.workload}  {trend.sparkline()}",
                ["snapshot", "units", "ms/unit", "units/s"],
                rows,
            )
        )
        ratio = trend.slowdown
        if ratio is None:
            blocks.append("  (single snapshot — gate needs at least two)")
        else:
            best = trend.best_earlier
            assert best is not None
            verdict = "REGRESSION" if trend.regressed else "ok"
            blocks.append(
                f"  latest vs best ({best.label}): {ratio:.2f}x per-unit "
                f"— {verdict} (threshold {trend.max_slowdown:.1f}x)"
            )
    return "\n\n".join(blocks)
