"""The campaign results warehouse: a normalized SQLite store.

One :class:`ResultsStore` wraps one SQLite database (default:
``.repro_cache/warehouse.sqlite3``) holding every campaign journal, merged
worker telemetry, and perf snapshot ever ingested, so questions that span
runs — "did this refactor flip any injection outcome?", "which flip-flops
dominate SDC?", "is campaign throughput trending up?" — become queries
instead of archaeology.

Schema (``SCHEMA_VERSION`` = 4, pinned in the ``meta`` table)::

    campaigns      one row per ingested journal, keyed like a resume:
                   (netlist_hash, workload, points_hash, seed, defuse,
                   static, distributed) — re-ingesting the same campaign
                   replaces the old rows; the ``defuse``/``static`` flags
                   keep collapsed (``fi run --defuse``/``--static``) and
                   full campaigns over the same point list side by side,
                   ``distributed`` does the same for merged coordinator
                   campaigns (so a distributed run never clobbers its
                   single-host reference and the two stay diffable), and
                   the ``layers`` JSON column carries the per-layer
                   pruned-point counts (mate / defuse / static with
                   pairwise overlaps)
    outcomes       one row per fault-space point: (campaign_id, point_index)
                   with the key (dff, bit, cycle) and classification; rows
                   whose outcome was back-annotated from an equivalence
                   representative (not injected) carry ``pruned_by`` and,
                   for interval followers, ``equivalence_rep``
    worker_stats   per-process utilization (from journal records, enriched
                   with span counts when a telemetry directory is present)
    bench_runs     one row per ingested ``BENCH_<n>.json`` perf snapshot
    bench_samples  per-workload timings of one snapshot

``bit`` is 0 for today's single-bit flip-flop SEUs; journal records from a
future multi-bit schema carry it as an extra field, which the
forward-compatible loader preserves and the ingester picks up.

Writes are wrapped in ``store/*`` spans and counted under ``store.*``
metrics (:mod:`repro.obs`), like every other subsystem.
"""

from __future__ import annotations

import json
import re
import sqlite3
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import counter, span

SCHEMA_VERSION = 4

#: Fields that identify "the same campaign" across ingests (the journal's
#: resume key, minus the derived counts, plus the collapse/execution flags
#: so a collapsed or distributed run never clobbers its full-campaign,
#: single-host control).
CAMPAIGN_KEY = (
    "netlist_hash", "workload", "points_hash", "seed", "defuse", "static",
    "distributed",
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    id            INTEGER PRIMARY KEY,
    workload      TEXT NOT NULL,
    netlist_hash  TEXT NOT NULL,
    points_hash   TEXT NOT NULL,
    seed          INTEGER,
    num_points    INTEGER NOT NULL,
    golden_cycles INTEGER NOT NULL,
    max_cycles    INTEGER,
    complete      INTEGER NOT NULL DEFAULT 0,
    pruned        INTEGER NOT NULL DEFAULT 0,
    space_points  INTEGER,
    pruned_points INTEGER,
    defuse           INTEGER NOT NULL DEFAULT 0,
    defuse_injected  INTEGER,
    defuse_annotated INTEGER,
    static           INTEGER NOT NULL DEFAULT 0,
    static_annotated INTEGER,
    distributed      INTEGER NOT NULL DEFAULT 0,
    layers           TEXT,
    journal_path  TEXT,
    label         TEXT,
    ingested_at   REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS outcomes (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id) ON DELETE CASCADE,
    point_index INTEGER NOT NULL,
    dff         TEXT NOT NULL,
    bit         INTEGER NOT NULL DEFAULT 0,
    cycle       INTEGER NOT NULL,
    outcome     TEXT NOT NULL,
    attempts    INTEGER,
    seconds     REAL,
    worker      INTEGER,
    pruned_by       TEXT,
    equivalence_rep TEXT,
    PRIMARY KEY (campaign_id, point_index)
);
CREATE INDEX IF NOT EXISTS outcomes_by_key
    ON outcomes(campaign_id, dff, bit, cycle);
CREATE TABLE IF NOT EXISTS worker_stats (
    campaign_id  INTEGER NOT NULL REFERENCES campaigns(id) ON DELETE CASCADE,
    pid          INTEGER NOT NULL,
    injections   INTEGER NOT NULL DEFAULT 0,
    busy_seconds REAL NOT NULL DEFAULT 0.0,
    spans        INTEGER,
    PRIMARY KEY (campaign_id, pid)
);
CREATE TABLE IF NOT EXISTS bench_runs (
    id             INTEGER PRIMARY KEY,
    path           TEXT,
    sequence       INTEGER,
    schema_version INTEGER NOT NULL,
    quick          INTEGER NOT NULL DEFAULT 0,
    rounds         INTEGER,
    python         TEXT,
    ingested_at    REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS bench_samples (
    bench_id         INTEGER NOT NULL
                     REFERENCES bench_runs(id) ON DELETE CASCADE,
    workload         TEXT NOT NULL,
    seconds          REAL NOT NULL,
    units            INTEGER NOT NULL,
    units_per_second REAL NOT NULL,
    PRIMARY KEY (bench_id, workload)
);
"""

#: ``BENCH_<n>.json`` — the versioned perf-snapshot naming convention.
BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")


class StoreError(Exception):
    """The warehouse is unusable or was asked something inconsistent."""


def default_db_path() -> Path:
    """The shared warehouse, next to the other cached artifacts."""
    cache = Path(__file__).resolve().parents[3] / ".repro_cache"
    cache.mkdir(exist_ok=True)
    return cache / "warehouse.sqlite3"


@dataclass(frozen=True)
class CampaignRow:
    """One campaign as stored (see the ``campaigns`` table)."""

    id: int
    workload: str
    netlist_hash: str
    points_hash: str
    seed: int | None
    num_points: int
    golden_cycles: int
    max_cycles: int | None
    complete: bool
    pruned: bool
    space_points: int | None
    pruned_points: int | None
    #: Def-use collapse (``fi run --defuse``): only interval representatives
    #: were injected, everything else was back-annotated.
    defuse: bool
    defuse_injected: int | None
    defuse_annotated: int | None
    #: Static dataflow collapse (``fi run --static``): trace-independent
    #: register-dead points were back-annotated as benign.
    static: bool
    static_annotated: int | None
    #: Merged from a sharded coordinator campaign (``fi serve``/``submit``)
    #: rather than a single-host run.
    distributed: bool
    #: Per-layer fault-space pruning attribution, e.g.
    #: ``{"mate": 812, "defuse": 1430, "both": 96, "static": 320,
    #: "defuse&static": 320}``.
    layers: dict[str, int] | None
    journal_path: str | None
    label: str | None
    ingested_at: float


@dataclass(frozen=True)
class OutcomeRow:
    """One injection outcome with its fault-space key."""

    point_index: int
    dff: str
    bit: int
    cycle: int
    outcome: str
    attempts: int | None = None
    seconds: float | None = None
    worker: int | None = None
    #: Which pruning layer produced this outcome without injecting
    #: (``None`` for a real injection).
    pruned_by: str | None = None
    #: ``(dff, cycle)`` of the injected representative this outcome was
    #: copied from, for equivalence-interval followers.
    equivalence_rep: tuple[str, int] | None = None

    @property
    def key(self) -> tuple[str, int, int]:
        """The cross-campaign identity of this fault-space point."""
        return (self.dff, self.bit, self.cycle)

    @property
    def annotated(self) -> bool:
        """True when the outcome was back-annotated, not injected."""
        return self.pruned_by is not None


@dataclass(frozen=True)
class BenchRow:
    """One perf snapshot plus its per-workload samples."""

    id: int
    path: str | None
    sequence: int | None
    schema_version: int
    quick: bool
    rounds: int | None
    python: str | None
    ingested_at: float
    #: workload -> (seconds, units, units_per_second)
    samples: dict[str, tuple[float, int, float]] = field(default_factory=dict)


def _bench_sequence(path: str | Path | None) -> int | None:
    """The ``<n>`` of a ``BENCH_<n>.json`` filename, if it follows it."""
    if path is None:
        return None
    match = BENCH_NAME.match(Path(path).name)
    return int(match.group(1)) if match else None


class ResultsStore:
    """Open (creating if needed) the warehouse at ``path``."""

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else default_db_path()
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.path)
        self._conn.execute("PRAGMA foreign_keys = ON")
        self._conn.executescript(_SCHEMA)
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            self._conn.commit()
        elif int(row[0]) != SCHEMA_VERSION:
            self._conn.close()
            raise StoreError(
                f"warehouse {self.path} has schema version {row[0]}, "
                f"this build speaks {SCHEMA_VERSION} — move the file aside "
                "and re-ingest the journals"
            )

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> ResultsStore:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Campaign ingest
    # ------------------------------------------------------------------
    def ingest_journal(
        self,
        journal_path: str | Path,
        telemetry_dir: str | Path | None = None,
        label: str | None = None,
    ) -> int:
        """Ingest one campaign journal; returns the campaign id.

        Re-ingesting a journal with the same resume key (netlist hash,
        workload, point-list hash, seed) replaces the previous rows, so the
        warehouse always reflects the journal's latest state — ingest after
        every resume and nothing is double-counted. ``telemetry_dir``
        defaults to ``<journal>.telemetry`` when that directory exists.
        """
        from repro.fi.journal import load_journal

        journal_path = Path(journal_path)
        with span("store/ingest-journal", journal=str(journal_path)):
            state = load_journal(journal_path)
            header = state.header
            meta = header.get("meta") or {}
            defuse = int(bool(meta.get("defuse")))
            static = int(bool(meta.get("static")))
            distributed = int(bool(meta.get("distributed")))
            layers = meta.get("layers")
            key = {
                "netlist_hash": header.get("netlist_hash"),
                "workload": header.get("workload"),
                "points_hash": header.get("points_hash"),
                "seed": header.get("seed"),
                "defuse": defuse,
                "static": static,
                "distributed": distributed,
            }
            self._conn.execute(
                "DELETE FROM campaigns WHERE netlist_hash IS ? AND "
                "workload IS ? AND points_hash IS ? AND seed IS ? AND "
                "defuse IS ? AND static IS ? AND distributed IS ?",
                tuple(key.values()),
            )
            cursor = self._conn.execute(
                "INSERT INTO campaigns (workload, netlist_hash, points_hash,"
                " seed, num_points, golden_cycles, max_cycles, complete,"
                " pruned, space_points, pruned_points, defuse,"
                " defuse_injected, defuse_annotated, static,"
                " static_annotated, distributed, layers, journal_path,"
                " label, ingested_at)"
                " VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)",
                (
                    key["workload"],
                    key["netlist_hash"],
                    key["points_hash"],
                    key["seed"],
                    header.get("num_points", len(state.records)),
                    header.get("golden_cycles", 0),
                    header.get("max_cycles"),
                    int(state.complete),
                    int(bool(meta.get("pruned"))),
                    meta.get("space_points"),
                    meta.get("pruned_points"),
                    defuse,
                    meta.get("defuse_injected"),
                    meta.get("defuse_annotated"),
                    static,
                    meta.get("static_annotated"),
                    distributed,
                    json.dumps(layers, sort_keys=True) if layers else None,
                    str(journal_path),
                    label,
                    time.time(),
                ),
            )
            campaign_id = cursor.lastrowid
            assert campaign_id is not None
            rows = []
            for index in sorted(state.records):
                record = state.records[index]
                detail = state.details.get(index, {})
                rep = detail.get("equivalence_rep")
                rows.append(
                    (
                        campaign_id,
                        index,
                        record.dff_name,
                        int(detail.get("bit", 0)),
                        record.cycle,
                        record.outcome.value,
                        detail.get("attempts"),
                        detail.get("seconds"),
                        detail.get("worker"),
                        detail.get("pruned_by"),
                        json.dumps(list(rep)) if rep is not None else None,
                    )
                )
            self._conn.executemany(
                "INSERT INTO outcomes (campaign_id, point_index, dff, bit,"
                " cycle, outcome, attempts, seconds, worker, pruned_by,"
                " equivalence_rep) VALUES (?,?,?,?,?,?,?,?,?,?,?)",
                rows,
            )
            self._ingest_worker_stats(campaign_id, state, journal_path,
                                      telemetry_dir)
            self._conn.commit()
            counter("store.campaigns.ingested").inc()
            counter("store.outcomes.ingested").inc(len(rows))
            return campaign_id

    def _ingest_worker_stats(
        self, campaign_id, state, journal_path, telemetry_dir
    ) -> None:
        stats: dict[int, list[float]] = {}  # pid -> [injections, busy]
        for index in state.records:
            detail = state.details.get(index, {})
            pid = detail.get("worker")
            if pid is None:
                continue
            entry = stats.setdefault(int(pid), [0, 0.0])
            entry[0] += 1
            entry[1] += float(detail.get("seconds") or 0.0)
        span_counts = self._telemetry_span_counts(journal_path, telemetry_dir)
        for pid in span_counts:
            stats.setdefault(pid, [0, 0.0])
        self._conn.executemany(
            "INSERT INTO worker_stats (campaign_id, pid, injections,"
            " busy_seconds, spans) VALUES (?,?,?,?,?)",
            [
                (campaign_id, pid, int(inj), busy, span_counts.get(pid))
                for pid, (inj, busy) in sorted(stats.items())
            ],
        )

    @staticmethod
    def _telemetry_span_counts(
        journal_path: Path, telemetry_dir: str | Path | None
    ) -> dict[int, int]:
        """``pid -> campaign/inject span count`` from the telemetry dir."""
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.remote import collect

        if telemetry_dir is None:
            candidate = Path(f"{journal_path}.telemetry")
            telemetry_dir = candidate if candidate.is_dir() else None
        if telemetry_dir is None or not Path(telemetry_dir).is_dir():
            return {}
        # Scratch registry: ingest must not pollute the live metrics.
        merged = collect(telemetry_dir, registry=MetricsRegistry())
        counts: dict[int, int] = {}
        for event in merged.timeline:
            if event.name == "campaign/inject":
                counts[event.pid] = counts.get(event.pid, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Bench ingest
    # ------------------------------------------------------------------
    def ingest_bench(
        self, doc_or_path: dict | str | Path, path: str | Path | None = None
    ) -> int:
        """Ingest one perf snapshot (a ``BENCH_<n>.json`` document or path).

        Re-ingesting the same path replaces the previous rows. The
        ``BENCH_<n>`` sequence number orders the trend series; snapshots
        with non-conforming names fall back to ingest order.
        """
        from repro.eval.bench import validate_bench

        if not isinstance(doc_or_path, dict):
            path = Path(doc_or_path)
            doc = json.loads(path.read_text(encoding="utf-8"))
        else:
            doc = doc_or_path
        with span("store/ingest-bench", path=str(path) if path else "-"):
            try:
                validate_bench(doc)
            except ValueError as exc:
                raise StoreError(str(exc)) from exc
            if path is not None:
                self._conn.execute(
                    "DELETE FROM bench_runs WHERE path = ?", (str(path),)
                )
            cursor = self._conn.execute(
                "INSERT INTO bench_runs (path, sequence, schema_version,"
                " quick, rounds, python, ingested_at) VALUES (?,?,?,?,?,?,?)",
                (
                    str(path) if path is not None else None,
                    _bench_sequence(path),
                    doc["schema_version"],
                    int(bool(doc.get("quick"))),
                    doc.get("rounds"),
                    doc.get("python"),
                    time.time(),
                ),
            )
            bench_id = cursor.lastrowid
            assert bench_id is not None
            self._conn.executemany(
                "INSERT INTO bench_samples (bench_id, workload, seconds,"
                " units, units_per_second) VALUES (?,?,?,?,?)",
                [
                    (
                        bench_id,
                        name,
                        float(entry["seconds"]),
                        int(entry["units"]),
                        int(entry["units"]) / float(entry["seconds"]),
                    )
                    for name, entry in doc["workloads"].items()
                ],
            )
            self._conn.commit()
            counter("store.bench.ingested").inc()
            return bench_id

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    _CAMPAIGN_COLUMNS = (
        "id, workload, netlist_hash, points_hash, seed, num_points,"
        " golden_cycles, max_cycles, complete, pruned, space_points,"
        " pruned_points, defuse, defuse_injected, defuse_annotated,"
        " static, static_annotated, distributed, layers,"
        " journal_path, label, ingested_at"
    )

    def campaigns(self) -> list[CampaignRow]:
        """Every stored campaign, oldest first."""
        rows = self._conn.execute(
            f"SELECT {self._CAMPAIGN_COLUMNS} FROM campaigns ORDER BY id"
        ).fetchall()
        return [self._campaign_row(r) for r in rows]

    @staticmethod
    def _campaign_row(r: tuple) -> CampaignRow:
        return CampaignRow(
            id=r[0], workload=r[1], netlist_hash=r[2], points_hash=r[3],
            seed=r[4], num_points=r[5], golden_cycles=r[6], max_cycles=r[7],
            complete=bool(r[8]), pruned=bool(r[9]), space_points=r[10],
            pruned_points=r[11], defuse=bool(r[12]), defuse_injected=r[13],
            defuse_annotated=r[14], static=bool(r[15]),
            static_annotated=r[16], distributed=bool(r[17]),
            layers=json.loads(r[18]) if r[18] else None,
            journal_path=r[19], label=r[20], ingested_at=r[21],
        )

    def campaign(self, campaign_id: int) -> CampaignRow:
        """One campaign by id; raises :class:`StoreError` if absent."""
        row = self._conn.execute(
            f"SELECT {self._CAMPAIGN_COLUMNS} FROM campaigns WHERE id = ?",
            (campaign_id,),
        ).fetchone()
        if row is None:
            raise StoreError(f"no campaign #{campaign_id} in {self.path}")
        return self._campaign_row(row)

    def outcomes(self, campaign_id: int) -> list[OutcomeRow]:
        """Every injection outcome of one campaign, in point order."""
        self.campaign(campaign_id)  # existence check
        rows = self._conn.execute(
            "SELECT point_index, dff, bit, cycle, outcome, attempts,"
            " seconds, worker, pruned_by, equivalence_rep FROM outcomes"
            " WHERE campaign_id = ? ORDER BY point_index",
            (campaign_id,),
        ).fetchall()
        out = []
        for r in rows:
            rep = json.loads(r[9]) if r[9] else None
            out.append(
                OutcomeRow(
                    *r[:9],
                    equivalence_rep=(rep[0], int(rep[1])) if rep else None,
                )
            )
        return out

    def outcome_tally(self, campaign_id: int) -> dict[str, int]:
        """``outcome -> count`` for one campaign."""
        rows = self._conn.execute(
            "SELECT outcome, COUNT(*) FROM outcomes WHERE campaign_id = ?"
            " GROUP BY outcome",
            (campaign_id,),
        ).fetchall()
        return dict(rows)

    def annotation_tally(self, campaign_id: int) -> dict[str, int]:
        """``pruned_by layer -> back-annotated point count`` for one campaign.

        Empty for campaigns where every outcome was actually injected.
        """
        rows = self._conn.execute(
            "SELECT pruned_by, COUNT(*) FROM outcomes WHERE campaign_id = ?"
            " AND pruned_by IS NOT NULL GROUP BY pruned_by",
            (campaign_id,),
        ).fetchall()
        return dict(rows)

    def worker_stats(self, campaign_id: int) -> list[tuple[int, int, float, int | None]]:
        """``(pid, injections, busy_seconds, spans)`` rows of one campaign."""
        return self._conn.execute(
            "SELECT pid, injections, busy_seconds, spans FROM worker_stats"
            " WHERE campaign_id = ? ORDER BY pid",
            (campaign_id,),
        ).fetchall()

    def bench_runs(self) -> list[BenchRow]:
        """Every perf snapshot with its samples, in trend order.

        Trend order is the ``BENCH_<n>`` sequence when every run has one,
        else ingest order (id).
        """
        rows = self._conn.execute(
            "SELECT id, path, sequence, schema_version, quick, rounds,"
            " python, ingested_at FROM bench_runs"
            " ORDER BY (sequence IS NULL), sequence, id"
        ).fetchall()
        out = []
        for r in rows:
            samples = {
                name: (seconds, units, ups)
                for name, seconds, units, ups in self._conn.execute(
                    "SELECT workload, seconds, units, units_per_second"
                    " FROM bench_samples WHERE bench_id = ? ORDER BY workload",
                    (r[0],),
                )
            }
            out.append(
                BenchRow(
                    id=r[0], path=r[1], sequence=r[2], schema_version=r[3],
                    quick=bool(r[4]), rounds=r[5], python=r[6],
                    ingested_at=r[7], samples=samples,
                )
            )
        return out

    # ------------------------------------------------------------------
    def query(self, sql: str) -> tuple[list[str], list[tuple]]:
        """Run one read-only SQL statement; ``(column_names, rows)``.

        The query runs on a separate ``query_only`` connection, so no SQL —
        hostile or fat-fingered — can mutate the warehouse through here.
        """
        conn = sqlite3.connect(self.path)
        try:
            conn.execute("PRAGMA query_only = ON")
            cursor = conn.execute(sql)
            names = [d[0] for d in cursor.description or []]
            return names, cursor.fetchall()
        finally:
            conn.close()
