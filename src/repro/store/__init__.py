"""repro.store — the queryable cross-campaign results warehouse.

Campaign journals (:mod:`repro.fi.journal`), merged worker telemetry
(:mod:`repro.obs.remote`), and perf snapshots (:mod:`repro.eval.bench`)
all flow into one SQLite database so results outlive their run::

    from repro.store import ResultsStore, diff_campaigns

    store = ResultsStore()                     # .repro_cache/warehouse.sqlite3
    cid = store.ingest_journal("camp.jsonl")   # + <journal>.telemetry if present
    diff = diff_campaigns(store, cid, other)   # zero flips or the exact list

Or from the shell::

    python -m repro.store ingest camp.jsonl BENCH_6.json
    python -m repro.store list
    python -m repro.store diff 1 2            # exit 1 on any outcome flip
    python -m repro.store heatmap 1 --out heat.html --compare 2
    python -m repro.store trend               # exit 1 on >=2x perf regression
    python -m repro.store query "SELECT dff, COUNT(*) FROM outcomes \
        WHERE outcome='sdc' GROUP BY dff ORDER BY 2 DESC"

:class:`~repro.fi.runner.CampaignRunner` (when configured with a
``store_path``) and ``python -m repro.eval bench`` ingest automatically on
completion, so the warehouse accumulates without ceremony.
"""

from repro.store.db import (
    BenchRow,
    CampaignRow,
    OutcomeRow,
    ResultsStore,
    StoreError,
    default_db_path,
)
from repro.store.diff import CampaignDiff, OutcomeFlip, diff_campaigns
from repro.store.heatmap import render_heatmap, write_heatmap
from repro.store.trend import WorkloadTrend, bench_trend, format_trend

__all__ = [
    "BenchRow",
    "CampaignDiff",
    "CampaignRow",
    "OutcomeFlip",
    "OutcomeRow",
    "ResultsStore",
    "StoreError",
    "WorkloadTrend",
    "bench_trend",
    "default_db_path",
    "diff_campaigns",
    "format_trend",
    "render_heatmap",
    "write_heatmap",
]
