"""Command-line front end of the campaign results warehouse.

Usage::

    python -m repro.store ingest camp.jsonl BENCH_6.json   # auto-detects kind
    python -m repro.store list                             # campaigns + benches
    python -m repro.store show 1                           # one campaign
    python -m repro.store diff 1 2                         # exit 1 on any flip
    python -m repro.store heatmap 1 --out heat.html [--compare 2]
    python -m repro.store trend [--workload campaign]      # exit 1 on regression
    python -m repro.store query "SELECT ..."               # read-only SQL

``--db`` selects the warehouse file (default:
``.repro_cache/warehouse.sqlite3``, shared with the auto-ingest paths of
``repro.fi`` and ``repro.eval bench``).

``diff`` is the regression gate for execution-engine changes: two
campaigns on the same target must agree on every matched fault-space point
``(dff, bit, cycle)``; any classification flip exits 1 and is listed.
``trend`` gates the perf trajectory the same way ``bench --baseline``
does, but against the whole ingested history.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.fi.journal import JournalError
from repro.obs.export import aligned_table
from repro.store.db import ResultsStore, StoreError
from repro.store.diff import diff_campaigns
from repro.store.heatmap import write_heatmap
from repro.store.trend import bench_trend, format_trend

#: Exit code for a clean run that found a difference/regression (the gate
#: verdict), as opposed to 2 for operational errors.
EXIT_DIRTY = 1


def _detect_kind(path: Path) -> str:
    """``journal``, ``bench``, or ``campaign-dir``, sniffed from the path."""
    if not path.exists():
        raise StoreError(f"no such file: {path}")
    if path.is_dir():
        from repro.fi.service import is_campaign_dir

        if is_campaign_dir(path):
            return "campaign-dir"
        raise StoreError(
            f"{path} is a directory but not a sharded campaign "
            "(no campaign.json manifest)"
        )
    with path.open("r", encoding="utf-8", errors="replace") as fh:
        head = fh.readline()
    try:
        doc = json.loads(head)
    except ValueError:
        doc = None  # maybe pretty-printed JSON; checked whole-file below
    if isinstance(doc, dict) and doc.get("kind") == "header":
        return "journal"
    if isinstance(doc, dict) and doc.get("schema") == "repro-bench":
        return "bench"
    # A pretty-printed bench snapshot's first line is just "{".
    try:
        whole = json.loads(path.read_text(encoding="utf-8"))
    except ValueError:
        whole = None
    if isinstance(whole, dict) and whole.get("schema") == "repro-bench":
        return "bench"
    raise StoreError(
        f"{path} is neither a campaign journal nor a bench snapshot"
    )


def _cmd_ingest(store: ResultsStore, args: argparse.Namespace) -> int:
    for raw in args.paths:
        path = Path(raw)
        kind = _detect_kind(path)
        if kind == "campaign-dir":
            # A sharded coordinator campaign: merge the shard journals
            # (no-op when merged.jsonl already exists), then ingest the
            # merged journal with its relayed telemetry.
            from repro.fi.service import merge_campaign_dir

            merged = merge_campaign_dir(path)
            telemetry = args.telemetry_dir or (
                path / "telemetry" if (path / "telemetry").is_dir() else None
            )
            cid = store.ingest_journal(
                merged, telemetry_dir=telemetry, label=args.label
            )
            tally = store.outcome_tally(cid)
            print(
                f"ingested distributed campaign #{cid} from {path} "
                f"({sum(tally.values())} outcome(s))"
            )
        elif kind == "journal":
            cid = store.ingest_journal(
                path, telemetry_dir=args.telemetry_dir, label=args.label
            )
            tally = store.outcome_tally(cid)
            print(
                f"ingested campaign #{cid} from {path} "
                f"({sum(tally.values())} outcome(s))"
            )
        else:
            bid = store.ingest_bench(path)
            print(f"ingested bench run #{bid} from {path}")
    return 0


def _cmd_list(store: ResultsStore, args: argparse.Namespace) -> int:
    campaigns = store.campaigns()
    if campaigns:
        rows = []
        for c in campaigns:
            tally = store.outcome_tally(c.id)
            space = "pruned" if c.pruned else "full"
            if c.defuse:
                space += "+defuse"
            if c.static:
                space += "+static"
            if c.distributed:
                space += "+dist"
            rows.append([
                str(c.id),
                c.workload,
                c.netlist_hash[:12],
                str(sum(tally.values())),
                "yes" if c.complete else "no",
                space,
                c.label or "-",
            ])
        print(aligned_table(
            "campaigns",
            ["id", "workload", "netlist", "outcomes", "complete", "space",
             "label"],
            rows,
        ))
    else:
        print("no campaigns ingested")
    benches = store.bench_runs()
    if benches:
        rows = [
            [
                str(b.id),
                f"BENCH_{b.sequence}" if b.sequence is not None else "-",
                "quick" if b.quick else "full",
                str(len(b.samples)),
                b.python or "-",
            ]
            for b in benches
        ]
        print()
        print(aligned_table(
            "bench runs", ["id", "sequence", "mode", "workloads", "python"],
            rows,
        ))
    else:
        print("\nno bench snapshots ingested")
    return 0


def _cmd_show(store: ResultsStore, args: argparse.Namespace) -> int:
    c = store.campaign(args.campaign)
    print(f"campaign #{c.id}: {c.workload} (netlist {c.netlist_hash})")
    print(
        f"keyed by:  points_hash={c.points_hash} seed={c.seed} "
        f"golden_cycles={c.golden_cycles}"
    )
    print(
        f"state:     {'complete' if c.complete else 'partial'}, "
        f"{c.num_points} point(s) planned, "
        f"{'pruned-space' if c.pruned else 'full-space'} sample"
        f"{', def-use collapsed' if c.defuse else ''}"
        f"{', static collapsed' if c.static else ''}"
        f"{', distributed (merged from shards)' if c.distributed else ''}"
    )
    if c.space_points:
        pruned = c.pruned_points or 0
        print(
            f"space:     {c.space_points} FF×cycle point(s), "
            f"{pruned} MATE-pruned ({100 * pruned / c.space_points:.1f}%)"
        )
    if c.layers:
        print(
            "layers:    "
            + ", ".join(
                f"{count} pruned by {layer}"
                for layer, count in sorted(c.layers.items())
            )
        )
    if c.defuse:
        print(
            f"collapse:  {c.defuse_injected} representative(s) injected, "
            f"{c.defuse_annotated} point(s) back-annotated"
        )
    if c.static and c.static_annotated is not None:
        print(
            f"static:    {c.static_annotated} point(s) annotated dead by the "
            f"dataflow layer"
        )
    if c.journal_path:
        print(f"journal:   {c.journal_path}")
    tally = store.outcome_tally(c.id)
    total = sum(tally.values()) or 1
    print()
    print(aligned_table(
        "outcomes",
        ["outcome", "count", "share"],
        [[name, str(count), f"{100 * count / total:.1f}%"]
         for name, count in sorted(tally.items(), key=lambda kv: -kv[1])],
    ))
    annotations = store.annotation_tally(c.id)
    if annotations:
        annotated = sum(annotations.values())
        print()
        print(aligned_table(
            "provenance",
            ["source", "count"],
            [["injected", str(total - annotated)]]
            + [[f"annotated ({layer})", str(count)]
               for layer, count in sorted(annotations.items())],
        ))
    workers = store.worker_stats(c.id)
    if workers:
        print()
        print(aligned_table(
            "workers",
            ["pid", "injections", "busy", "spans"],
            [[str(pid), str(inj), f"{busy:.2f}s",
              str(spans) if spans is not None else "-"]
             for pid, inj, busy, spans in workers],
        ))
    return 0


def _cmd_query(store: ResultsStore, args: argparse.Namespace) -> int:
    try:
        names, rows = store.query(args.sql)
    except Exception as exc:  # sqlite3 errors: report, don't traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not names:
        print("(no results)")
        return 0
    print(aligned_table(
        "query", names, [[str(v) for v in row] for row in rows]
    ))
    print(f"({len(rows)} row(s))")
    return 0


def _cmd_diff(store: ResultsStore, args: argparse.Namespace) -> int:
    diff = diff_campaigns(store, args.a, args.b, allow_mismatch=args.force)
    print(diff.summary())
    if diff.clean:
        return 0
    rows = [
        [flip.dff, str(flip.bit), str(flip.cycle), flip.before, flip.after]
        for flip in diff.flips
    ]
    print()
    print(aligned_table(
        "flips", ["dff", "bit", "cycle", f"#{args.a}", f"#{args.b}"], rows
    ))
    return EXIT_DIRTY


def _cmd_heatmap(store: ResultsStore, args: argparse.Namespace) -> int:
    out = args.out or Path(f"heatmap-{args.campaign}.html")
    write_heatmap(
        out, store, args.campaign, compare_id=args.compare,
        max_cols=args.max_cols,
    )
    print(f"heatmap written to {out}")
    return 0


def _cmd_trend(store: ResultsStore, args: argparse.Namespace) -> int:
    trends = bench_trend(
        store, workload=args.workload, max_slowdown=args.max_slowdown
    )
    print(format_trend(trends))
    regressed = [t.workload for t in trends if t.regressed]
    if regressed:
        print(
            f"\nREGRESSION in: {', '.join(regressed)} "
            f"(>{args.max_slowdown:.1f}x per-unit vs best earlier snapshot)",
            file=sys.stderr,
        )
        return EXIT_DIRTY
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-store",
        description="Queryable warehouse of campaign results and perf history.",
    )
    parser.add_argument(
        "--db", type=Path, default=None, metavar="FILE",
        help="warehouse database (default: .repro_cache/warehouse.sqlite3)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("ingest", help="ingest journals / bench snapshots")
    p.add_argument("paths", nargs="+", metavar="FILE")
    p.add_argument(
        "--telemetry-dir", type=Path, default=None,
        help="telemetry directory for journal ingests "
        "(default: <journal>.telemetry when it exists)",
    )
    p.add_argument("--label", default=None, help="free-form campaign label")
    p.set_defaults(func=_cmd_ingest)

    p = sub.add_parser("list", help="list stored campaigns and bench runs")
    p.set_defaults(func=_cmd_list)

    p = sub.add_parser("show", help="one campaign's stored details")
    p.add_argument("campaign", type=int)
    p.set_defaults(func=_cmd_show)

    p = sub.add_parser("query", help="read-only SQL against the warehouse")
    p.add_argument("sql")
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser(
        "diff", help="compare two campaigns point-for-point (exit 1 on flips)"
    )
    p.add_argument("a", type=int)
    p.add_argument("b", type=int)
    p.add_argument(
        "--force", action="store_true",
        help="diff campaigns even when they target different designs",
    )
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser("heatmap", help="render a fault-space heatmap HTML")
    p.add_argument("campaign", type=int)
    p.add_argument(
        "--compare", type=int, default=None, metavar="ID",
        help="second campaign for the pruning-attribution table",
    )
    p.add_argument(
        "--out", type=Path, default=None,
        help="output HTML path (default: heatmap-<id>.html)",
    )
    p.add_argument("--max-cols", type=int, default=64,
                   help="maximum cycle buckets (default 64)")
    p.set_defaults(func=_cmd_heatmap)

    p = sub.add_parser(
        "trend", help="perf trajectory over ingested bench snapshots "
        "(exit 1 on regression)"
    )
    p.add_argument("--workload", default=None)
    p.add_argument(
        "--max-slowdown", type=float, default=2.0,
        help="per-unit slowdown ratio that counts as a regression "
        "(default 2.0)",
    )
    p.set_defaults(func=_cmd_trend)

    args = parser.parse_args(argv)
    try:
        with ResultsStore(args.db) as store:
            return args.func(store, args)
    except (StoreError, JournalError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
