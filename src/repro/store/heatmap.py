"""Fault-space heatmaps: where in FF × cycle space do faults bite?

Renders one stored campaign as a self-contained HTML page (same styling
and escaping discipline as :mod:`repro.fi.report`): an SVG grid with one
row per flip-flop and one column per cycle bucket, each cell colored by
the most severe outcome observed there (severity: sdc > error > timeout >
benign), with exact per-cell counts in a hover ``<title>``. Rows are
sorted so the flip-flops with the most effective (non-benign) injections
float to the top — the fault-space hot spots the paper's pruning argument
is about.

With a comparison campaign (``--compare``, typically a MATE-pruned sample
vs a full-space sample on the same target) the page adds a
**pruning-effectiveness attribution table**: per-campaign outcome mix,
effective rates, and the concentration factor the pruning achieved.
"""

from __future__ import annotations

import math
from pathlib import Path

from repro.fi.report import BASE_CSS, NEUTRAL_COLOR, OUTCOME_COLORS, escape
from repro.obs import span
from repro.store.db import CampaignRow, OutcomeRow, ResultsStore

#: Cell color precedence: the most attention-worthy outcome in the bucket
#: wins (silent corruption first — it is the headline risk).
SEVERITY = ("sdc", "error", "timeout", "benign")

#: Cells with no sampled injection.
EMPTY_COLOR = "#eef0f3"

_HEATMAP_CSS = BASE_CSS + """
.legend span.item { margin-right: 1.2rem; font-size: .85rem; }
"""


def _bucket_outcomes(
    outcomes: list[OutcomeRow], golden_cycles: int, max_cols: int
) -> tuple[dict[str, dict[int, dict[str, int]]], int, int]:
    """``ff -> column -> outcome -> count`` plus (columns, bucket_width)."""
    cycles = max(golden_cycles, 1 + max((o.cycle for o in outcomes), default=0))
    columns = min(max_cols, max(cycles, 1))
    bucket = math.ceil(max(cycles, 1) / columns)
    grid: dict[str, dict[int, dict[str, int]]] = {}
    for row in outcomes:
        cell = grid.setdefault(row.dff, {}).setdefault(
            min(row.cycle // bucket, columns - 1), {}
        )
        cell[row.outcome] = cell.get(row.outcome, 0) + 1
    return grid, columns, bucket


def _row_order(grid: dict[str, dict[int, dict[str, int]]]) -> list[str]:
    """Flip-flops sorted hottest (most non-benign hits) first, then name."""

    def effective(ff: str) -> int:
        return sum(
            count
            for cell in grid[ff].values()
            for outcome, count in cell.items()
            if outcome != "benign"
        )

    return sorted(grid, key=lambda ff: (-effective(ff), ff))


def _cell_color(cell: dict[str, int]) -> str:
    for outcome in SEVERITY:
        if cell.get(outcome):
            return OUTCOME_COLORS.get(outcome, NEUTRAL_COLOR)
    return NEUTRAL_COLOR  # only unknown outcome names in the bucket


def _heatmap_svg(
    campaign: CampaignRow, outcomes: list[OutcomeRow], max_cols: int
) -> list[str]:
    if not outcomes:
        return ["<p class=note>No recorded injections to map.</p>"]
    grid, columns, bucket = _bucket_outcomes(
        outcomes, campaign.golden_cycles, max_cols
    )
    ffs = _row_order(grid)
    cell_w = max(6, min(18, 760 // columns))
    cell_h = 14
    pad_l, pad_t = 150, 4
    width = pad_l + columns * cell_w + 10
    height = pad_t + len(ffs) * cell_h + 26
    out = [
        f"<svg width='{width}' height='{height}' "
        "xmlns='http://www.w3.org/2000/svg' role='img' "
        "aria-label='fault-space heatmap'>"
    ]
    for row_index, ff in enumerate(ffs):
        y = pad_t + row_index * cell_h
        out.append(
            f"<text x='{pad_l - 6}' y='{y + 11}' font-size='10' "
            f"text-anchor='end' fill='#5b6270'>{escape(ff)}</text>"
        )
        out.append(  # row background: the not-sampled color
            f"<rect x='{pad_l}' y='{y}' width='{columns * cell_w - 1}' "
            f"height='{cell_h - 1}' fill='{EMPTY_COLOR}'/>"
        )
        for col, cell in sorted(grid[ff].items()):
            x = pad_l + col * cell_w
            detail = ", ".join(
                f"{escape(name)}={count}" for name, count in sorted(cell.items())
            )
            lo, hi = col * bucket, min((col + 1) * bucket, campaign.golden_cycles) - 1
            cycles = f"cycle {lo}" if hi <= lo else f"cycles {lo}-{hi}"
            out.append(
                f"<rect x='{x}' y='{y}' width='{cell_w - 1}' "
                f"height='{cell_h - 1}' fill='{_cell_color(cell)}'>"
                f"<title>{escape(ff)} {cycles}: {detail}</title></rect>"
            )
    axis_y = pad_t + len(ffs) * cell_h + 14
    out.append(
        f"<text x='{pad_l}' y='{axis_y}' font-size='10' fill='#5b6270'>"
        "cycle 0</text>"
    )
    out.append(
        f"<text x='{pad_l + columns * cell_w}' y='{axis_y}' font-size='10' "
        f"fill='#5b6270' text-anchor='end'>"
        f"cycle {campaign.golden_cycles - 1}</text>"
    )
    out.append("</svg>")
    out.append(
        f"<p class=note>{len(ffs)} flip-flop(s) × {columns} cycle bucket(s) "
        f"({bucket} cycle(s) per bucket); hottest rows first; hover a cell "
        "for exact counts. Gray cells were never sampled.</p>"
    )
    return out


def _legend() -> list[str]:
    items = "".join(
        f"<span class=item><span class=swatch "
        f"style='background:{color}'></span>{escape(outcome)}</span>"
        for outcome, color in OUTCOME_COLORS.items()
    )
    return [
        f"<p class=legend>{items}<span class=item><span class=swatch "
        f"style='background:{EMPTY_COLOR}'></span>not sampled</span></p>"
    ]


# ----------------------------------------------------------------------
# Pruning-effectiveness attribution
# ----------------------------------------------------------------------
def _tally(outcomes: list[OutcomeRow]) -> dict[str, int]:
    tally: dict[str, int] = {}
    for row in outcomes:
        tally[row.outcome] = tally.get(row.outcome, 0) + 1
    return tally


def effective_rate(outcomes: list[OutcomeRow]) -> float:
    """Share of classified injections that were effective (sdc/timeout).

    ``error`` records are infrastructure verdicts, excluded from the
    denominator — nothing is known about those faults.
    """
    tally = _tally(outcomes)
    classified = sum(c for o, c in tally.items() if o != "error")
    if not classified:
        return float("nan")
    return (tally.get("sdc", 0) + tally.get("timeout", 0)) / classified


def attribution_rows(
    pairs: list[tuple[CampaignRow, list[OutcomeRow]]],
) -> list[tuple[str, list[str]]]:
    """``(metric, per-campaign values)`` rows of the attribution table."""
    rows: list[tuple[str, list[str]]] = []

    def add(metric: str, render) -> None:
        rows.append((metric, [render(c, o) for c, o in pairs]))

    add("sampling", lambda c, o: ("MATE-pruned space" if c.pruned
        else "full fault space")
        + (" + def-use collapse" if c.defuse else ""))
    add("points injected", lambda c, o: str(
        sum(1 for r in o if not r.annotated)
    ))
    add("points back-annotated", lambda c, o: str(
        sum(1 for r in o if r.annotated)
    ))
    add("distinct fault-space keys", lambda c, o: str(len({r.key for r in o})))
    for outcome in ("benign", "sdc", "timeout", "error"):
        add(outcome, lambda c, o, _oc=outcome: str(_tally(o).get(_oc, 0)))
    add("effective rate (sdc+timeout)", lambda c, o: (
        "-" if math.isnan(effective_rate(o)) else f"{100 * effective_rate(o):.1f}%"
    ))
    add("fault space (FF × cycles)", lambda c, o: (
        str(c.space_points) if c.space_points else "-"
    ))
    add("MATE-pruned points", lambda c, o: (
        f"{c.pruned_points} ({100 * c.pruned_points / c.space_points:.1f}%)"
        if c.pruned_points and c.space_points
        else (str(c.pruned_points) if c.pruned_points else "-")
    ))

    # Cross-layer attribution (campaigns that ran the def-use collapse
    # carry per-layer pruned counts in their journal meta).
    def by_layer(c: CampaignRow, layer: str) -> str:
        count = (c.layers or {}).get(layer)
        if count is None:
            return "-"
        if c.space_points:
            return f"{count} ({100 * count / c.space_points:.1f}%)"
        return str(count)

    if any((c.layers or c.defuse) for c, _ in pairs):
        add("pruned by MATE layer", lambda c, o: by_layer(c, "mate"))
        add("pruned by def-use layer", lambda c, o: by_layer(c, "defuse"))
        add("pruned by both layers", lambda c, o: by_layer(c, "both"))
        add("representatives injected", lambda c, o: (
            str(c.defuse_injected)
            if c.defuse and c.defuse_injected is not None else "-"
        ))
    return rows


def _attribution_table(
    pairs: list[tuple[CampaignRow, list[OutcomeRow]]],
) -> list[str]:
    out = ["<h2>Pruning-effectiveness attribution</h2>", "<table>"]
    heads = "".join(
        f"<th>#{c.id} {escape(c.workload)}</th>" for c, _ in pairs
    )
    out.append(f"<tr><th>metric</th>{heads}</tr>")
    for metric, values in attribution_rows(pairs):
        cells = "".join(f"<td class=num>{escape(v)}</td>" for v in values)
        out.append(f"<tr><td>{escape(metric)}</td>{cells}</tr>")
    out.append("</table>")
    rates = [effective_rate(o) for _, o in pairs]
    if len(rates) == 2 and all(not math.isnan(r) for r in rates) and rates[0]:
        out.append(
            f"<p class=note>Effective-rate concentration: the second "
            f"campaign's sample is {rates[1] / rates[0]:.2f}× as effective "
            "per injection as the first's — pruning that discards only "
            "benign points concentrates the remaining space.</p>"
        )
    return out


# ----------------------------------------------------------------------
def render_heatmap(
    store: ResultsStore,
    campaign_id: int,
    compare_id: int | None = None,
    max_cols: int = 64,
) -> str:
    """One campaign's fault-space heatmap as a self-contained HTML page."""
    with span("store/heatmap", campaign=campaign_id):
        campaign = store.campaign(campaign_id)
        outcomes = store.outcomes(campaign_id)
        pairs = [(campaign, outcomes)]
        if compare_id is not None:
            pairs.append((store.campaign(compare_id), store.outcomes(compare_id)))
        title = f"fault-space heatmap — {campaign.workload}"
        out = [
            "<!DOCTYPE html>",
            "<html lang='en'><head><meta charset='utf-8'>",
            f"<title>{escape(title)}</title>",
            f"<style>{_HEATMAP_CSS}</style></head><body>",
            f"<h1>Fault-space heatmap — {escape(campaign.workload)}"
            f" (campaign #{campaign.id})</h1>",
            "<table class=meta>",
            f"<tr><td>netlist</td><td>{escape(campaign.netlist_hash)}</td></tr>",
            f"<tr><td>golden run</td><td>{campaign.golden_cycles} cycles"
            "</td></tr>",
            f"<tr><td>recorded</td><td>{len(outcomes)} outcome(s), "
            f"{sum(1 for r in outcomes if r.annotated)} back-annotated"
            f" ({'complete' if campaign.complete else 'partial'})</td></tr>",
            "</table>",
        ]
        out.extend(_legend())
        out.extend(_heatmap_svg(campaign, outcomes, max_cols))
        if (len(pairs) > 1 or campaign.pruned or campaign.pruned_points
                or campaign.defuse):
            out.extend(_attribution_table(pairs))
        out.append("</body></html>")
        return "\n".join(out) + "\n"


def write_heatmap(
    path: str | Path,
    store: ResultsStore,
    campaign_id: int,
    compare_id: int | None = None,
    max_cols: int = 64,
) -> Path:
    """Render and write the heatmap; returns the output path."""
    path = Path(path)
    path.write_text(
        render_heatmap(store, campaign_id, compare_id, max_cols),
        encoding="utf-8",
    )
    return path
