"""Cross-campaign outcome diffing: the regression primitive.

Every future speed optimisation of the injection pipeline — bit-parallel
simulation, divergence-bounded replay, distributed execution — must prove
it flips **zero** outcomes. :func:`diff_campaigns` compares two campaigns
on the same target point-for-point, keying each injection by its
fault-space identity ``(dff, bit, cycle)`` (not by point index, so
differently ordered or differently sampled runs still line up), and
reports every classification flip.

A sampled point list may contain duplicate fault-space keys (sampling is
with replacement); a key's *outcome set* is compared, so a key is only a
flip when the two campaigns genuinely disagree about what that fault does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import counter, span
from repro.store.db import CampaignRow, ResultsStore, StoreError


@dataclass(frozen=True)
class OutcomeFlip:
    """One fault-space point whose classification changed."""

    dff: str
    bit: int
    cycle: int
    #: ``+``-joined sorted outcome set in campaign A / campaign B.
    before: str
    after: str


@dataclass
class CampaignDiff:
    """The result of diffing campaign ``a`` against campaign ``b``."""

    a: CampaignRow
    b: CampaignRow
    #: Fault-space keys present in both campaigns.
    matched: int = 0
    flips: list[OutcomeFlip] = field(default_factory=list)
    #: Keys sampled by exactly one of the two campaigns.
    only_in_a: int = 0
    only_in_b: int = 0
    #: Back-annotated (not injected) outcome rows per side; a collapsed
    #: campaign's annotations diff like any other outcome.
    annotated_a: int = 0
    annotated_b: int = 0

    @property
    def clean(self) -> bool:
        """True when no matched point changed classification."""
        return not self.flips

    def summary(self) -> str:
        verdict = (
            "zero outcome flips — campaigns agree"
            if self.clean
            else f"{len(self.flips)} outcome flip(s)"
        )
        annotated = ""
        if self.annotated_a or self.annotated_b:
            annotated = (
                f" (back-annotated: {self.annotated_a} in #{self.a.id}, "
                f"{self.annotated_b} in #{self.b.id})"
            )
        return (
            f"campaign #{self.a.id} ({self.a.workload} @ "
            f"{self.a.netlist_hash}) vs #{self.b.id} ({self.b.workload} @ "
            f"{self.b.netlist_hash}): {self.matched} matched fault-space "
            f"point(s), {self.only_in_a} only in #{self.a.id}, "
            f"{self.only_in_b} only in #{self.b.id}{annotated} — {verdict}"
        )


def _outcome_sets(
    store: ResultsStore, campaign_id: int
) -> tuple[dict[tuple[str, int, int], frozenset[str]], int]:
    by_key: dict[tuple[str, int, int], set[str]] = {}
    annotated = 0
    for row in store.outcomes(campaign_id):
        by_key.setdefault(row.key, set()).add(row.outcome)
        annotated += row.annotated
    return {key: frozenset(v) for key, v in by_key.items()}, annotated


def diff_campaigns(
    store: ResultsStore,
    a_id: int,
    b_id: int,
    allow_mismatch: bool = False,
) -> CampaignDiff:
    """Diff two stored campaigns point-for-point (see module docstring).

    The campaigns must target the same design and workload (equal netlist
    hash and workload name) — comparing different targets is a category
    error, refused unless ``allow_mismatch`` (which still diffs whatever
    keys happen to collide, useful for cross-core curiosity only).
    """
    with span("store/diff", a=a_id, b=b_id):
        a = store.campaign(a_id)
        b = store.campaign(b_id)
        if not allow_mismatch and (
            a.netlist_hash != b.netlist_hash or a.workload != b.workload
        ):
            raise StoreError(
                f"campaign #{a.id} ({a.workload} @ {a.netlist_hash}) and "
                f"#{b.id} ({b.workload} @ {b.netlist_hash}) target different "
                "designs — pass allow_mismatch/--force to diff them anyway"
            )
        outcomes_a, annotated_a = _outcome_sets(store, a_id)
        outcomes_b, annotated_b = _outcome_sets(store, b_id)
        diff = CampaignDiff(
            a=a, b=b, annotated_a=annotated_a, annotated_b=annotated_b
        )
        for key in sorted(set(outcomes_a) & set(outcomes_b)):
            diff.matched += 1
            if outcomes_a[key] != outcomes_b[key]:
                diff.flips.append(
                    OutcomeFlip(
                        dff=key[0],
                        bit=key[1],
                        cycle=key[2],
                        before="+".join(sorted(outcomes_a[key])),
                        after="+".join(sorted(outcomes_b[key])),
                    )
                )
        diff.only_in_a = len(set(outcomes_a) - set(outcomes_b))
        diff.only_in_b = len(set(outcomes_b) - set(outcomes_a))
        counter("store.diff.flips").inc(len(diff.flips))
        return diff
