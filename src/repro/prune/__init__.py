"""Static def-use fault-space collapsing (the architecture-level layer).

The MATE layer (``repro.core``) prunes the (flip-flop × cycle) fault space
at the *gate* level: a cycle whose masking condition holds cannot propagate.
This package adds the *cross-layer* counterpart: a static def-use analysis
over the golden trace that classifies every injection point by what happens
to the flipped bit in its own cycle — it either **escapes** (reaches another
flip-flop, a primary output, or a testbench read), **holds** (survives as
the same single-bit flip into the next cycle), or is **killed** (overwritten
with the golden value). Hold-runs partition each wire's cycle axis into
equivalence intervals: a run ending in a kill is provably benign (*dead*),
a run ending in an escape needs exactly one representative injection
(*live*), and a run reaching the end of the trace keeps one representative
as well (*tail* — equivalent, but not claimed benign because the final
state differs in the flipped bit).

Every claim ships as a machine-checkable :class:`IntervalClaim` certificate
that :mod:`repro.prune.certificate` re-derives with an independent scalar
full-netlist evaluation — zero injection simulations on the happy path.

:mod:`repro.prune.dataflow` adds the trace-*independent* third layer: a
binary-level CFG + backward-liveness fixpoint proving registers dead over
**all** paths, with :class:`StaticClaim` certificates re-derived by an
independent per-path checker and intersected with the golden trace's
PC-per-cycle sampling into a :class:`StaticPruneMap`.
"""

from repro.prune.access import EVENT_ESCAPE, EVENT_HOLD, EVENT_KILL, wire_events
from repro.prune.accounting import PruneAccounting, account, build_layered_space
from repro.prune.analyze import (
    DefUseAnalysis,
    PruneAudit,
    analyze_target,
    get_analysis,
    get_equivalence_map,
    get_prune_audit,
)
from repro.prune.certificate import classify_cycle, verify_claim
from repro.prune.dataflow import (
    DataflowAnalysis,
    DataflowAudit,
    ProgramCFG,
    StaticClaim,
    StaticPruneMap,
    analyze_dataflow,
    collapse_static,
    dead_facts,
    decode_program,
    get_dataflow_analysis,
    get_dataflow_audit,
    get_static_map,
    verify_static_claim,
)
from repro.prune.defuse import (
    CollapsePlan,
    EquivalenceMap,
    IntervalClaim,
    WireClasses,
    partition_events,
)

__all__ = [
    "EVENT_ESCAPE",
    "EVENT_HOLD",
    "EVENT_KILL",
    "CollapsePlan",
    "DataflowAnalysis",
    "DataflowAudit",
    "DefUseAnalysis",
    "EquivalenceMap",
    "IntervalClaim",
    "ProgramCFG",
    "PruneAccounting",
    "PruneAudit",
    "StaticClaim",
    "StaticPruneMap",
    "WireClasses",
    "account",
    "analyze_dataflow",
    "analyze_target",
    "build_layered_space",
    "classify_cycle",
    "collapse_static",
    "dead_facts",
    "decode_program",
    "get_analysis",
    "get_dataflow_analysis",
    "get_dataflow_audit",
    "get_equivalence_map",
    "get_prune_audit",
    "get_static_map",
    "partition_events",
    "verify_static_claim",
    "wire_events",
]
