"""Equivalence intervals, certificates, and the `EquivalenceMap`.

The per-cycle event string of :mod:`repro.prune.access` partitions each
wire's cycle axis left-to-right: every maximal run of ``'h'`` (hold) cycles
terminated by a ``'k'`` (kill) is a **dead** interval — all its injection
points reconverge with the golden run and are provably benign; every run
terminated by an ``'e'`` (escape) is a **live** interval — all its points
are bit-for-bit equivalent, decided by one representative injection at the
escape cycle; a run that reaches the end of the trace is a **tail**
interval — equivalent among themselves (one representative), but *not*
claimed benign, because the final state still differs in the flipped bit.

Each interval is an :class:`IntervalClaim`: a self-contained, machine-
checkable certificate (the claim plus its per-cycle event evidence) that
:mod:`repro.prune.certificate` re-derives independently.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.netlist.netlist import Netlist
from repro.obs import counter, span
from repro.prune.access import EVENT_ESCAPE, EVENT_HOLD, EVENT_KILL, wire_events
from repro.trace.trace import Trace

#: Interval kinds.
KIND_DEAD = "dead"
KIND_LIVE = "live"
KIND_TAIL = "tail"

#: Serialized EquivalenceMap format version.
MAP_VERSION = 1


@dataclass(frozen=True)
class IntervalClaim:
    """One certified equivalence interval for one flip-flop.

    The cycle range is inclusive: injections at every cycle in
    ``[start, end]`` are claimed pairwise equivalent; for ``dead`` intervals
    they are additionally claimed benign. ``events`` is the evidence — the
    per-cycle access codes for exactly this range.
    """

    dff: str
    wire: str
    start: int
    end: int
    kind: str
    events: str

    @property
    def representative(self) -> int | None:
        """The one injection cycle that decides the interval (None if dead)."""
        return None if self.kind == KIND_DEAD else self.end

    @property
    def num_points(self) -> int:
        """Injection points covered by this interval."""
        return self.end - self.start + 1

    def covers(self, cycle: int) -> bool:
        """True if ``cycle`` falls inside this interval."""
        return self.start <= cycle <= self.end

    def to_dict(self) -> dict[str, object]:
        """JSON-ready certificate document."""
        return {
            "dff": self.dff,
            "wire": self.wire,
            "start": self.start,
            "end": self.end,
            "kind": self.kind,
            "events": self.events,
        }

    def describe(self) -> str:
        """One-line human-readable form, e.g. ``pc_b3[10..17] dead``."""
        return f"{self.dff}[{self.start}..{self.end}] {self.kind}"


def partition_events(dff: str, wire: str, events: str) -> list[IntervalClaim]:
    """Split one wire's event string into its equivalence intervals."""
    intervals: list[IntervalClaim] = []
    start = 0
    for cycle, event in enumerate(events):
        if event == EVENT_HOLD:
            continue
        kind = KIND_LIVE if event == EVENT_ESCAPE else KIND_DEAD
        intervals.append(
            IntervalClaim(dff, wire, start, cycle, kind, events[start : cycle + 1])
        )
        start = cycle + 1
    if start < len(events):
        intervals.append(
            IntervalClaim(dff, wire, start, len(events) - 1, KIND_TAIL, events[start:])
        )
    return intervals


class WireClasses:
    """All equivalence intervals of one flip-flop's cycle axis."""

    def __init__(self, dff: str, wire: str, events: str) -> None:
        self.dff = dff
        self.wire = wire
        self.events = events
        self.intervals = partition_events(dff, wire, events)
        self._starts = [interval.start for interval in self.intervals]

    @property
    def num_cycles(self) -> int:
        return len(self.events)

    def interval_of(self, cycle: int) -> IntervalClaim:
        """The interval containing ``cycle``."""
        if not 0 <= cycle < len(self.events):
            raise IndexError(
                f"cycle {cycle} outside [0, {len(self.events)}) for {self.dff}"
            )
        return self.intervals[bisect_right(self._starts, cycle) - 1]

    def pruned_vector(self, include_followers: bool = True) -> np.ndarray:
        """Boolean per-cycle vector of points needing no simulation.

        Dead cycles always count; with ``include_followers`` the non-
        representative members of live/tail intervals count too.
        """
        vec = np.zeros(len(self.events), dtype=bool)
        for interval in self.intervals:
            if interval.kind == KIND_DEAD:
                vec[interval.start : interval.end + 1] = True
            elif include_followers:
                vec[interval.start : interval.end + 1] = True
                vec[interval.representative] = False
        return vec


@dataclass
class CollapsePlan:
    """A concrete point list collapsed onto interval representatives.

    Index semantics follow the input list: ``dead`` holds indices proven
    benign without simulation, ``follows`` maps each follower index to the
    index whose outcome it inherits (the first listed member of its
    interval), and ``executed`` holds the indices actually injected.
    ``sources`` records, per annotated index, which layer proved it when it
    differs from the plan-wide default (the static layer tags its dead
    points ``"static"`` so journal provenance survives layer composition).
    """

    points: list[tuple[str, int]]
    dead: list[int] = field(default_factory=list)
    follows: dict[int, int] = field(default_factory=dict)
    executed: list[int] = field(default_factory=list)
    claims: dict[int, IntervalClaim] = field(default_factory=dict)
    sources: dict[int, str] = field(default_factory=dict)

    @property
    def num_points(self) -> int:
        return len(self.points)

    @property
    def num_injected(self) -> int:
        return len(self.executed)

    @property
    def num_annotated(self) -> int:
        return len(self.dead) + len(self.follows)

    def summary(self) -> str:
        return (
            f"{self.num_points} point(s): {self.num_injected} injected, "
            f"{len(self.dead)} proven benign without injection, "
            f"{len(self.follows)} follow a representative"
        )

    def annotation_plan(self, source: str = "defuse"):
        """The runner-facing :class:`~repro.fi.runner.AnnotationPlan`."""
        from repro.fi.runner import AnnotationPlan

        return AnnotationPlan(
            dead=tuple(self.dead),
            follows=dict(self.follows),
            source=source,
            sources=dict(self.sources),
        )


class EquivalenceMap:
    """Def-use equivalence classes for a whole design/workload pair."""

    def __init__(
        self,
        design: str,
        workload: str,
        netlist_hash: str,
        golden_cycles: int,
        wires: dict[str, WireClasses],
    ) -> None:
        self.design = design
        self.workload = workload
        self.netlist_hash = netlist_hash
        self.golden_cycles = golden_cycles
        self.wires = wires

    # -- construction ---------------------------------------------------
    @classmethod
    def build(
        cls,
        netlist: Netlist,
        trace: Trace,
        reads: Sequence[frozenset[str]] | None,
        workload: str = "",
        netlist_hash: str = "",
    ) -> EquivalenceMap:
        """Analyze every flip-flop of ``netlist`` over the golden ``trace``."""
        wires: dict[str, WireClasses] = {}
        lut_cache: dict[str, np.ndarray] = {}
        with span(
            "prune/analyze", netlist=netlist.name, cycles=trace.num_cycles
        ):
            for dff_name, dff in netlist.dffs.items():
                events = wire_events(
                    netlist, trace, dff_name, reads=reads, lut_cache=lut_cache
                )
                wires[dff_name] = WireClasses(dff_name, dff.q, events)
        counter("prune.maps.built").inc()
        counter("prune.wires.analyzed").inc(len(wires))
        return cls(netlist.name, workload, netlist_hash, trace.num_cycles, wires)

    # -- queries --------------------------------------------------------
    def interval_of(self, dff: str, cycle: int) -> IntervalClaim:
        """The certified interval containing (dff, cycle)."""
        return self.wires[dff].interval_of(cycle)

    def claims(self):
        """Iterate every interval certificate in the map."""
        for classes in self.wires.values():
            yield from classes.intervals

    @property
    def num_points(self) -> int:
        """Total (flip-flop × cycle) points covered."""
        return len(self.wires) * self.golden_cycles

    @property
    def num_dead_points(self) -> int:
        """Points inside dead intervals (statically benign)."""
        return sum(
            claim.num_points for claim in self.claims() if claim.kind == KIND_DEAD
        )

    @property
    def num_representatives(self) -> int:
        """Live + tail intervals — the injections a collapsed campaign runs."""
        return sum(1 for claim in self.claims() if claim.kind != KIND_DEAD)

    @property
    def num_follower_points(self) -> int:
        """Non-representative members of live/tail intervals."""
        return sum(
            claim.num_points - 1 for claim in self.claims() if claim.kind != KIND_DEAD
        )

    @property
    def num_pruned_points(self) -> int:
        """Points needing no simulation: dead plus followers."""
        return self.num_dead_points + self.num_follower_points

    def pruned_vector(self, dff: str, include_followers: bool = True) -> np.ndarray:
        """Per-cycle no-simulation-needed vector for one flip-flop."""
        return self.wires[dff].pruned_vector(include_followers)

    # -- campaign collapsing --------------------------------------------
    def collapse(
        self,
        points: Sequence[tuple[str, int]],
        static_map=None,
    ) -> CollapsePlan:
        """Collapse a concrete (dff, cycle) point list onto representatives.

        The representative of each interval is the *first occurrence in the
        list* of any of its members (so the injected point is always one the
        caller asked for, and duplicate points fold onto the first copy).

        With a :class:`~repro.prune.dataflow.StaticPruneMap`, statically-dead
        points are claimed benign first and tagged ``sources="static"`` —
        checked *before* the def-use interval because static-dead is
        contained in dynamic-dead on the golden trace, so the dynamic check
        would otherwise absorb every static win. Static-dead members never
        become interval representatives; election happens among the rest.
        """
        plan = CollapsePlan(points=[(dff, int(cycle)) for dff, cycle in points])
        first_seen: dict[tuple[str, int], int] = {}
        for index, (dff, cycle) in enumerate(plan.points):
            if static_map is not None and static_map.is_dead(dff, cycle):
                plan.dead.append(index)
                plan.sources[index] = "static"
                continue
            claim = self.interval_of(dff, cycle)
            plan.claims[index] = claim
            if claim.kind == KIND_DEAD:
                plan.dead.append(index)
                continue
            key = (dff, claim.start)
            rep_index = first_seen.get(key)
            if rep_index is None:
                first_seen[key] = index
                plan.executed.append(index)
            else:
                plan.follows[index] = rep_index
        return plan

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "version": MAP_VERSION,
            "design": self.design,
            "workload": self.workload,
            "netlist_hash": self.netlist_hash,
            "golden_cycles": self.golden_cycles,
            "wires": {
                name: {"wire": classes.wire, "events": classes.events}
                for name, classes in self.wires.items()
            },
        }

    @classmethod
    def from_dict(cls, doc: dict[str, object]) -> EquivalenceMap:
        version = doc.get("version")
        if version != MAP_VERSION:
            raise ValueError(f"unsupported EquivalenceMap version {version!r}")
        wires = {
            name: WireClasses(name, entry["wire"], entry["events"])
            for name, entry in doc["wires"].items()  # type: ignore[union-attr]
        }
        return cls(
            str(doc["design"]),
            str(doc["workload"]),
            str(doc["netlist_hash"]),
            int(doc["golden_cycles"]),  # type: ignore[arg-type]
            wires,
        )

    def save(self, path: Path) -> None:
        """Write the map (with all certificates) as JSON."""
        path.write_text(json.dumps(self.to_dict()), encoding="utf-8")

    @classmethod
    def load(cls, path: Path) -> EquivalenceMap:
        return cls.from_dict(json.loads(path.read_text(encoding="utf-8")))

    def __repr__(self) -> str:
        return (
            f"EquivalenceMap({self.design}/{self.workload}: "
            f"{len(self.wires)} wires x {self.golden_cycles} cycles, "
            f"{self.num_dead_points} dead + {self.num_follower_points} followers "
            f"of {self.num_points})"
        )
