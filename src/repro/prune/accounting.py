"""Cross-layer pruning accounting over one fault space.

Folds the gate-level MATE layer, the architecture-level def-use layer, and
the binary-level static dataflow layer into one layered
:class:`~repro.core.faultspace.FaultSpace` and reduces it to the headline
numbers of the `eval prune` table: points total, pruned per layer,
cross-layer overlaps, and representatives still to inject.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.faultspace import FaultSpace
from repro.netlist.netlist import Netlist
from repro.prune.defuse import EquivalenceMap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.prune.dataflow import StaticPruneMap

#: Layer names used consistently across journal details, store, and eval.
LAYER_MATE = "mate"
LAYER_DEFUSE = "defuse"
LAYER_STATIC = "static"


def build_layered_space(
    netlist: Netlist,
    golden_cycles: int,
    equivalence_map: EquivalenceMap | None = None,
    mate_vectors: Mapping[str, np.ndarray] | None = None,
    static_map: StaticPruneMap | None = None,
) -> FaultSpace:
    """A FaultSpace with per-layer attribution for one design/workload.

    ``mate_vectors`` maps fault (Q) wires to per-cycle MATE-triggered
    vectors (any length; clipped to ``golden_cycles``); the def-use layer
    marks dead points *and* followers — everything a collapsed campaign
    skips; the static layer marks the trace-independent register-dead
    points of :class:`~repro.prune.dataflow.StaticPruneMap`.
    """
    fault_wires = [dff.q for dff in netlist.dffs.values()]
    space = FaultSpace(fault_wires, golden_cycles)
    if mate_vectors is not None:
        for wire in fault_wires:
            vector = mate_vectors.get(wire)
            if vector is not None:
                space.mark_benign_cycles(wire, vector, layer=LAYER_MATE)
    if equivalence_map is not None:
        for dff_name, dff in netlist.dffs.items():
            space.mark_benign_cycles(
                dff.q,
                equivalence_map.pruned_vector(dff_name),
                layer=LAYER_DEFUSE,
            )
    if static_map is not None:
        for dff_name, dff in netlist.dffs.items():
            vector = static_map.pruned_vector(dff_name)
            if vector.any():
                space.mark_benign_cycles(dff.q, vector, layer=LAYER_STATIC)
    return space


@dataclass(frozen=True)
class PruneAccounting:
    """Headline pruning numbers for one (design, workload) pair."""

    target: str
    num_wires: int
    golden_cycles: int
    space_points: int
    mate_pruned: int
    defuse_pruned: int
    both: int
    dead_points: int
    collapsed_points: int
    representatives: int
    static_pruned: int = 0
    static_mate: int = 0
    static_defuse: int = 0
    all_layers: int = 0

    @property
    def union(self) -> int:
        """Points pruned by at least one layer (inclusion-exclusion)."""
        return (
            self.mate_pruned
            + self.defuse_pruned
            + self.static_pruned
            - self.both
            - self.static_mate
            - self.static_defuse
            + self.all_layers
        )

    @property
    def remaining(self) -> int:
        """Points a cross-layer campaign still has to inject."""
        return self.space_points - self.union

    @property
    def defuse_fraction(self) -> float:
        return self.defuse_pruned / self.space_points if self.space_points else 0.0

    @property
    def static_fraction(self) -> float:
        return self.static_pruned / self.space_points if self.space_points else 0.0

    @property
    def union_fraction(self) -> float:
        return self.union / self.space_points if self.space_points else 0.0

    def layers(self) -> dict[str, int]:
        """Layer attribution dict (journal/store metadata form)."""
        counts = {LAYER_DEFUSE: self.defuse_pruned}
        if self.mate_pruned:
            counts[LAYER_MATE] = self.mate_pruned
            counts["both"] = self.both
        if self.static_pruned:
            counts[LAYER_STATIC] = self.static_pruned
            counts[f"{LAYER_DEFUSE}&{LAYER_STATIC}"] = self.static_defuse
            if self.mate_pruned:
                counts[f"{LAYER_MATE}&{LAYER_STATIC}"] = self.static_mate
                counts["all"] = self.all_layers
        return counts


def account(
    target_name: str,
    netlist: Netlist,
    equivalence_map: EquivalenceMap,
    mate_vectors: Mapping[str, np.ndarray] | None = None,
    static_map: StaticPruneMap | None = None,
) -> PruneAccounting:
    """Reduce the layered space for one target to its accounting row."""
    golden_cycles = equivalence_map.golden_cycles
    space = build_layered_space(
        netlist,
        golden_cycles,
        equivalence_map=equivalence_map,
        mate_vectors=mate_vectors,
        static_map=static_map,
    )
    return PruneAccounting(
        target=target_name,
        num_wires=len(netlist.dffs),
        golden_cycles=golden_cycles,
        space_points=space.size,
        mate_pruned=space.layer_benign(LAYER_MATE),
        defuse_pruned=space.layer_benign(LAYER_DEFUSE),
        both=space.layer_overlap(LAYER_MATE, LAYER_DEFUSE),
        dead_points=equivalence_map.num_dead_points,
        collapsed_points=equivalence_map.num_follower_points,
        representatives=equivalence_map.num_representatives,
        static_pruned=space.layer_benign(LAYER_STATIC),
        static_mate=space.layer_overlap(LAYER_MATE, LAYER_STATIC),
        static_defuse=space.layer_overlap(LAYER_DEFUSE, LAYER_STATIC),
        all_layers=space.attribution().get("all", 0)
        if static_map is not None and mate_vectors is not None
        else 0,
    )
