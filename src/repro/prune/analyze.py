"""Target-level def-use analysis: golden run, map construction, caching.

`analyze_target` works on any :class:`~repro.fi.campaign.CampaignTarget`;
the ``get_*`` helpers know the named evaluation workloads (``avr-fib``,
``msp430-conv``, …) and cache the resulting :class:`EquivalenceMap` under
the artifact cache keyed by the design's netlist hash, so a collapsed
campaign (``fi run --defuse``) only pays the analysis once per design and
workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING

from repro.netlist.netlist import Netlist
from repro.obs import counter, span
from repro.prune.defuse import EquivalenceMap
from repro.trace.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.fi.campaign import Campaign, CampaignTarget


@dataclass
class DefUseAnalysis:
    """The full analysis context for one (design, workload) pair.

    Carries everything the certificate checker needs (golden trace plus the
    per-cycle testbench read sets) alongside the resulting map.
    """

    target_name: str
    netlist: Netlist
    trace: Trace
    reads: list[frozenset[str]]
    map: EquivalenceMap


def analyze_target(
    target: CampaignTarget,
    max_cycles: int = 50_000,
    netlist_hash: str = "",
) -> DefUseAnalysis:
    """Run the golden workload with read recording and build its map."""
    with span("prune/golden", target=target.name):
        testbench = target.make_testbench()
        result = target.simulator.run(
            testbench,
            max_cycles=max_cycles,
            record_trace=True,
            record_reads=True,
        )
    if not result.halted:
        raise ValueError(
            f"golden run of {target.name} did not halt within {max_cycles} cycles; "
            "def-use analysis needs a halting golden trace"
        )
    assert result.trace is not None and result.reads is not None
    equivalence_map = EquivalenceMap.build(
        target.simulator.netlist,
        result.trace,
        result.reads,
        workload=target.name,
        netlist_hash=netlist_hash,
    )
    return DefUseAnalysis(
        target_name=target.name,
        netlist=target.simulator.netlist,
        trace=result.trace,
        reads=list(result.reads),
        map=equivalence_map,
    )


def _map_cache_path(target_name: str, netlist_hash: str) -> Path:
    from repro.eval import context

    return context.cache_dir() / f"defuse_{target_name}_{netlist_hash}.json"


def _core_of(target_name: str) -> str:
    core, _, program = target_name.partition("-")
    if not program:
        raise ValueError(f"not a named core-program target: {target_name!r}")
    return core


@lru_cache(maxsize=None)
def get_analysis(target_name: str) -> DefUseAnalysis:
    """Full def-use analysis for a named fi target (memoized in-process).

    Also refreshes the on-disk map cache so later map-only consumers skip
    the golden run entirely.
    """
    from repro.eval import context
    from repro.fi.targets import named_target

    netlist_hash = context.netlist_hash(_core_of(target_name))
    analysis = analyze_target(
        named_target(target_name), netlist_hash=netlist_hash
    )
    path = _map_cache_path(target_name, netlist_hash)
    path.parent.mkdir(parents=True, exist_ok=True)
    analysis.map.save(path)
    return analysis


def get_equivalence_map(target_name: str) -> EquivalenceMap:
    """The map for a named fi target, from the disk cache when possible."""
    from repro.eval import context

    netlist_hash = context.netlist_hash(_core_of(target_name))
    path = _map_cache_path(target_name, netlist_hash)
    if path.is_file():
        try:
            cached = EquivalenceMap.load(path)
        except (ValueError, KeyError, OSError):
            path.unlink(missing_ok=True)  # corrupt/stale cache: recompute
        else:
            if cached.netlist_hash == netlist_hash:
                counter("prune.map_cache.hits").inc()
                return cached
    counter("prune.map_cache.misses").inc()
    return get_analysis(target_name).map


class PruneAudit:
    """Everything the ``prune.*`` lint rules need for one named target.

    Bundles the analysis context with a lazily-built ground-truth
    :class:`~repro.fi.campaign.Campaign` (only constructed when a rule
    actually needs to refute claims by simulation).
    """

    def __init__(self, analysis: DefUseAnalysis) -> None:
        self.analysis = analysis
        self._campaign: Campaign | None = None

    @property
    def target_name(self) -> str:
        return self.analysis.target_name

    @property
    def map(self) -> EquivalenceMap:
        return self.analysis.map

    def campaign(self) -> Campaign:
        """Ground-truth injection campaign for this target (built once)."""
        if self._campaign is None:
            from repro.fi.campaign import Campaign
            from repro.fi.targets import named_target

            self._campaign = Campaign(named_target(self.target_name))
        return self._campaign


@lru_cache(maxsize=None)
def get_prune_audit(target_name: str) -> PruneAudit:
    """Audit bundle for a named fi target (memoized in-process)."""
    return PruneAudit(get_analysis(target_name))
