"""Binary-level static dataflow pruning (the trace-independent third layer).

Where the def-use layer (:mod:`repro.prune.defuse`) classifies fault points
by *replaying* the golden trace, this module proves register deadness over
**all** execution paths of the loaded firmware: it decodes the binary into
an instruction stream with per-instruction access sets
(:mod:`repro.cpu.*.access`), builds a basic-block control-flow graph
(fall-through, branches, ``rjmp``/``rcall``/``ret`` edges; indirect jumps
conservatively widen to every decoded entry), and runs a worklist backward
liveness fixpoint. The fixpoint computes *inevitability* facts::

    DEAD(p, R)  =  kill(p, R)
                ∨  (¬read(p, R) ∧ ¬stop(p) ∧ succ(p) ≠ ∅
                    ∧ ∀ s ∈ succ(p): DEAD(s, R))

as a least fixpoint from all-``False`` — so a register is only claimed dead
at a program point if **every** path from that point reaches a full-register
must-write (a *kill*) before any read, any halt, and without looping
forever. Terminal instructions (``sleep``, SR writes that may set CPUOFF)
and unknown words stop the analysis; this keeps statically-dead contained
in dynamically-dead (a register that is merely unread until the halt is a
*tail* interval dynamically, not benign).

The access sets lean the sound way on both sides: ``registers_read`` over-
approximates (a spurious read only weakens a claim) and
``registers_written`` under-approximates (only unconditional full-register
writes count as kills).

Every DEAD fact ships as a :class:`StaticClaim` certificate naming the
dominating kill frontier; :func:`verify_static_claim` re-derives it with an
independent per-path DFS (in :mod:`repro.prune.certificate` style) that
shares nothing with the worklist solver. Claims map onto (DFF, bit, cycle)
points by intersecting with the golden trace's PC-per-cycle sampling
(:class:`StaticPruneMap`), feeding ``fi run --static`` and the three-layer
``FaultSpace`` accounting.
"""

from __future__ import annotations

import json
import re
from collections import deque
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.obs import counter, span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.fi.campaign import Campaign
    from repro.prune.defuse import CollapsePlan
    from repro.trace.trace import Trace

#: Serialized StaticPruneMap format version.
STATIC_MAP_VERSION = 1

#: Registers the testbench reads from flip-flop state *every* cycle — they
#: escape dynamically in every cycle, so the static layer must never claim
#: them (AVR: the X pointer r27:r26 addresses the external data RAM).
ALWAYS_READ: dict[str, frozenset[int]] = {
    "avr": frozenset({26, 27}),
    "msp430": frozenset(),
}

_RF_NAME = re.compile(r"^rf_r(\d+)(?:_b(\d+))?$")


# ----------------------------------------------------------------------
# instruction stream + CFG
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Instruction:
    """One decoded program point with its access sets and CFG edges.

    ``stop`` marks points past which liveness cannot reason: terminal
    instructions (``sleep``, possible-CPUOFF SR writes), out-of-range
    control transfers, and undecodable words. ``widened`` marks indirect
    jumps whose successors were conservatively widened to every decoded
    entry. ``size`` is in program words (MSP430 extension words belong to
    their instruction and are not program points).
    """

    address: int
    word: int
    mnemonic: str
    reads: frozenset[int]
    writes: frozenset[int]
    successors: tuple[int, ...]
    stop: bool = False
    widened: bool = False
    size: int = 1


@dataclass
class ProgramCFG:
    """Reachable instruction stream of one loaded firmware image."""

    core: str
    entry: int
    instructions: dict[int, Instruction]
    #: Registers the static layer may claim (RF minus always-read).
    registers: tuple[int, ...]

    @property
    def num_points(self) -> int:
        return len(self.instructions)

    def predecessors(self) -> dict[int, list[int]]:
        preds: dict[int, list[int]] = {a: [] for a in self.instructions}
        for address, insn in self.instructions.items():
            for succ in insn.successors:
                preds.setdefault(succ, []).append(address)
        return preds

    def describe(self) -> str:
        return (
            f"{self.core}: {self.num_points} reachable instruction(s), "
            f"{sum(1 for i in self.instructions.values() if i.stop)} stop, "
            f"{sum(1 for i in self.instructions.values() if i.widened)} widened"
        )


def _sext(value: int, bits: int) -> int:
    value &= (1 << bits) - 1
    return value - (1 << bits) if value & (1 << (bits - 1)) else value


def _reach(decode_one, entry: int) -> dict[int, Instruction]:
    """Worklist reachability decode from ``entry``.

    ``decode_one(address, previous)`` gets the previous iteration's full
    instruction dict so cross-instruction edges (``ret`` return sites,
    widened indirect jumps) can be resolved; the outer loop re-decodes to a
    fixpoint because those edge sets grow with the reachable set.
    """
    previous: dict[int, Instruction] = {}
    for _ in range(64):  # far above any real convergence depth
        decoded: dict[int, Instruction] = {}
        pending = [entry]
        while pending:
            address = pending.pop()
            if address in decoded:
                continue
            insn = decode_one(address, previous)
            decoded[address] = insn
            pending.extend(s for s in insn.successors if s not in decoded)
        if decoded == previous:
            return decoded
        previous = decoded
    raise RuntimeError("CFG decode did not converge")  # pragma: no cover


def decode_avr_program(words: list[int]) -> ProgramCFG:
    """Decode an AVR firmware image into its reachable CFG.

    Word-addressed points, one word per instruction. ``rcall`` edges go to
    the callee; ``ret`` edges go to every recorded return site (fall-through
    of every reachable ``rcall``) plus address 0, because the hardware
    return stack initializes to 0 and wraps silently.
    """
    from repro.cpu.avr import isa
    from repro.cpu.avr.access import registers_read, registers_written

    size = len(words)
    two_op = {v: k for k, v in isa.TWO_OP.items()}
    imm_op = {v: k for k, v in isa.IMM_OP.items()}
    one_op = {v: k for k, v in isa.ONE_OP.items()}

    def classify(word: int) -> tuple[str, object]:
        """(mnemonic, successor spec) — spec is resolved per address."""
        if word == isa.OPCODE_NOP:
            return "nop", "next"
        if word == isa.OPCODE_SLEEP:
            return "sleep", "stop"
        if word == isa.OPCODE_RET:
            return "ret", "ret"
        if (word >> 10) in two_op:
            return two_op[word >> 10], "next"
        if (word >> 12) in imm_op:
            return imm_op[word >> 12], "next"
        if (word & 0xFE00) == 0x9400 and (word & 0xF) in one_op.values():
            return {v: k for k, v in one_op.items()}[word & 0xF], "next"
        if (word & 0xF800) == 0xF000:
            return "branch", "branch"
        if (word & 0xF000) == 0xC000:
            return "rjmp", "rjmp"
        if (word & 0xF000) == 0xD000:
            return "rcall", "rjmp"
        if (word & 0xFC00) == 0x9000 and (word & 0xE) == 0xC:
            return "st" if (word >> 9) & 1 else "ld", "next"
        if (word & 0xF800) == 0xB800:
            return "out", "next"
        if (word & 0xF800) == 0xB000:
            return "in", "next"
        return "unknown", "stop"

    def decode_one(address: int, previous: dict[int, Instruction]) -> Instruction:
        word = words[address] & 0xFFFF
        mnemonic, spec = classify(word)
        if mnemonic == "unknown":
            return Instruction(
                address, word, mnemonic, frozenset(range(32)), frozenset(), (), stop=True
            )
        targets: list[int]
        if spec == "stop":
            targets = []
        elif spec == "next":
            targets = [address + 1]
        elif spec == "branch":
            targets = [address + 1, address + 1 + _sext(word >> 3, 7)]
        elif spec == "rjmp":
            targets = [address + 1 + _sext(word, 12)]
        else:  # ret: every return site, plus the stack's init value 0
            sites = {
                i.address + 1
                for i in previous.values()
                if i.mnemonic == "rcall"
            }
            targets = sorted(sites | {0})
        in_range = [t for t in targets if 0 <= t < size]
        return Instruction(
            address,
            word,
            mnemonic,
            frozenset(registers_read(word)),
            frozenset(registers_written(word)),
            tuple(dict.fromkeys(in_range)),
            stop=spec == "stop" or len(in_range) < len(targets),
        )

    instructions = _reach(decode_one, 0)
    registers = tuple(r for r in range(32) if r not in ALWAYS_READ["avr"])
    return ProgramCFG("avr", 0, instructions, registers)


def decode_msp430_program(words: list[int]) -> ProgramCFG:
    """Decode an MSP430 firmware image into its reachable CFG.

    Points are word indices (byte address / 2); Format I instructions span
    1-3 words (source/destination extension words follow the opcode word,
    mirroring the core's FETCH sizing logic). Format I writes to the PC are
    indirect jumps, widened to every decoded entry; writes to SR may set
    CPUOFF (the halt idiom), so they stop the analysis.
    """
    from repro.cpu.msp430 import isa
    from repro.cpu.msp430.access import (
        RF_REGISTERS,
        registers_read,
        registers_written,
    )

    size = len(words)
    format1 = {v: k for k, v in isa.FORMAT1.items()}
    format2 = {v: k for k, v in isa.FORMAT2.items()}
    jumps = {v: k for k, v in reversed(isa.JUMPS.items())}  # first alias wins

    def decode_one(address: int, previous: dict[int, Instruction]) -> Instruction:
        word = words[address] & 0xFFFF
        opcode = word >> 12
        reads = frozenset(registers_read(word))
        writes = frozenset(registers_written(word))

        if opcode in (0x2, 0x3):  # relative jump
            condition = (word >> 10) & 0x7
            target = address + 1 + _sext(word, 10)
            targets = [target] if condition == 0b111 else [address + 1, target]
            in_range = [t for t in targets if 0 <= t < size]
            return Instruction(
                address,
                word,
                jumps.get(condition, "jump"),
                reads,
                writes,
                tuple(dict.fromkeys(in_range)),
                stop=len(in_range) < len(targets),
            )

        if opcode == 0x1:  # Format II
            func = (word >> 7) & 0x7
            mnemonic = format2.get(func)
            if mnemonic is None or (word >> 4) & 0x3 != isa.MODE_REGISTER:
                return Instruction(
                    address, word, "unknown", frozenset(RF_REGISTERS), frozenset(), (), stop=True
                )
            successors = (address + 1,) if address + 1 < size else ()
            return Instruction(
                address, word, mnemonic, reads, writes, successors,
                stop=address + 1 >= size,
            )

        mnemonic = format1.get(opcode)
        if mnemonic is None:
            return Instruction(
                address, word, "unknown", frozenset(RF_REGISTERS), frozenset(), (), stop=True
            )
        src = (word >> 8) & 0xF
        as_mode = (word >> 4) & 0x3
        dst = word & 0xF
        ad_mode = (word >> 7) & 0x1
        src_ext = (as_mode == isa.MODE_INDEXED and src != isa.REG_CG) or (
            as_mode == isa.MODE_INDIRECT_INC and src == isa.REG_PC
        )
        length = 1 + int(src_ext) + int(ad_mode == 1)
        writes_result = mnemonic not in ("cmp", "bit")
        if writes_result and ad_mode == 0 and dst == isa.REG_PC:
            # Indirect jump: widen to every decoded entry.
            entries = tuple(sorted(previous))
            return Instruction(
                address, word, mnemonic, reads, writes, entries,
                widened=True, size=length,
            )
        if writes_result and ad_mode == 0 and dst == isa.REG_SR:
            # May set CPUOFF (the `bis #0x10, r2` halt idiom): terminal.
            return Instruction(
                address, word, mnemonic, reads, writes, (), stop=True, size=length,
            )
        successors = (address + length,) if address + length < size else ()
        return Instruction(
            address, word, mnemonic, reads, writes, successors,
            stop=address + length >= size, size=length,
        )

    instructions = _reach(decode_one, 0)
    registers = tuple(
        r for r in RF_REGISTERS if r not in ALWAYS_READ["msp430"]
    )
    return ProgramCFG("msp430", 0, instructions, registers)


def decode_program(core: str, words: list[int]) -> ProgramCFG:
    """Decode a firmware image for the named core."""
    if core == "avr":
        return decode_avr_program(words)
    if core == "msp430":
        return decode_msp430_program(words)
    raise ValueError(f"unknown core {core!r}")


# ----------------------------------------------------------------------
# backward-liveness worklist fixpoint
# ----------------------------------------------------------------------
def dead_facts(cfg: ProgramCFG) -> dict[int, frozenset[int]]:
    """Per-point sets of registers dead at instruction *entry*.

    Least fixpoint of the inevitability equation in the module docstring:
    seeded by kills, grown backward through the worklist — so loops that
    never access a register stay live (a fault could circulate forever),
    and nothing is claimed across ``stop`` points.
    """
    insns = cfg.instructions
    preds = cfg.predecessors()
    claimable = set(cfg.registers)
    dead: dict[int, set[int]] = {a: set() for a in insns}
    queue = deque(insns)
    queued = set(insns)
    while queue:
        address = queue.popleft()
        queued.discard(address)
        insn = insns[address]
        fact: set[int] = set()
        for register in claimable:
            if register in insn.reads:
                continue
            if register in insn.writes:
                fact.add(register)  # killed here, before any read
                continue
            if insn.stop or not insn.successors:
                continue
            if all(register in dead[s] for s in insn.successors):
                fact.add(register)
        if fact != dead[address]:
            dead[address] = fact
            for pred in preds.get(address, ()):
                if pred not in queued:
                    queued.add(pred)
                    queue.append(pred)
    return {address: frozenset(fact) for address, fact in dead.items()}


# ----------------------------------------------------------------------
# certificates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StaticClaim:
    """One certified DEAD fact: register ``register`` is dead at ``point``.

    ``writers`` is the dominating kill frontier — the set of first
    must-write instructions such that every path from ``point`` reaches one
    of them before any read, halt, or unknown instruction.
    :func:`verify_static_claim` re-derives the claim per-path.
    """

    register: int
    point: int
    writers: tuple[int, ...]

    def describe(self) -> str:
        kills = ",".join(f"{w:#x}" for w in self.writers)
        return f"r{self.register}@{self.point:#x} dead (kills: {kills})"

    def to_dict(self) -> dict[str, object]:
        return {
            "register": self.register,
            "point": self.point,
            "writers": list(self.writers),
        }

    @classmethod
    def from_dict(cls, doc: dict[str, object]) -> StaticClaim:
        return cls(
            int(doc["register"]),  # type: ignore[arg-type]
            int(doc["point"]),  # type: ignore[arg-type]
            tuple(int(w) for w in doc["writers"]),  # type: ignore[union-attr]
        )


def _kill_frontier(cfg: ProgramCFG, point: int, register: int) -> tuple[int, ...]:
    """First must-write instructions on every path from ``point``."""
    frontier: set[int] = set()
    seen: set[int] = set()
    stack = [point]
    while stack:
        address = stack.pop()
        if address in seen:
            continue
        seen.add(address)
        insn = cfg.instructions[address]
        if register in insn.writes and register not in insn.reads:
            frontier.add(address)
            continue
        stack.extend(insn.successors)
    return tuple(sorted(frontier))


def build_claims(cfg: ProgramCFG, dead: dict[int, frozenset[int]]) -> list[StaticClaim]:
    """One :class:`StaticClaim` certificate per (point, dead register)."""
    claims = [
        StaticClaim(register, point, _kill_frontier(cfg, point, register))
        for point in sorted(dead)
        for register in sorted(dead[point])
    ]
    counter("prune.static.claims").inc(len(claims))
    return claims


def verify_static_claim(cfg: ProgramCFG, claim: StaticClaim) -> list[str]:
    """Independently re-derive one claim; returns counterexample strings.

    A per-path DFS (memoized, with on-path cycle detection) that shares no
    machinery with the worklist solver: starting at the claimed point it
    demands that every path reaches a claimed writer's kill before any
    read, terminal, unknown word, or kill-free loop.
    """
    problems: list[str] = []
    insns = cfg.instructions
    register = claim.register
    if claim.point not in insns:
        return [f"claimed point {claim.point:#x} is not a decoded instruction"]
    if register not in cfg.registers:
        problems.append(f"r{register} is not statically claimable on {cfg.core}")
    for writer in claim.writers:
        insn = insns.get(writer)
        if insn is None:
            problems.append(f"claimed writer {writer:#x} is not a decoded instruction")
        elif register not in insn.writes or register in insn.reads:
            problems.append(
                f"claimed writer {writer:#x} ({insn.mnemonic}) does not kill r{register}"
            )
    if problems:
        return problems

    writers = set(claim.writers)
    verdict: dict[int, bool] = {}
    on_path: set[int] = set()
    limit = 8  # cap counterexample spam per claim

    def refute(message: str) -> bool:
        if len(problems) < limit:
            problems.append(message)
        return False

    def check(address: int) -> bool:
        cached = verdict.get(address)
        if cached is not None:
            return cached
        insn = insns[address]
        if register in insn.reads:
            result = refute(
                f"path from {claim.point:#x} reads r{register} at "
                f"{address:#x} ({insn.mnemonic}) before any kill"
            )
        elif register in insn.writes:
            if address in writers:
                result = True
            else:
                result = refute(
                    f"kill at {address:#x} ({insn.mnemonic}) missing from "
                    f"claimed writer frontier"
                )
        elif insn.stop or not insn.successors:
            result = refute(
                f"path from {claim.point:#x} reaches "
                f"{'terminal' if not insn.widened else 'widened'} "
                f"{insn.mnemonic} at {address:#x} with r{register} still live"
            )
        else:
            on_path.add(address)
            result = True
            for successor in insn.successors:
                if successor in on_path:
                    result = refute(
                        f"kill-free loop through {successor:#x} keeps "
                        f"r{register} circulating forever"
                    )
                elif not check(successor):
                    result = False
            on_path.discard(address)
        verdict[address] = result
        return result

    check(claim.point)
    return problems


# ----------------------------------------------------------------------
# golden-trace anchoring: cycle -> program point
# ----------------------------------------------------------------------
def _trace_word(trace: Trace, signal: str, width: int) -> np.ndarray:
    """Per-cycle integer value of a multi-bit register from its Q bits."""
    from repro.synth.lower import bit_name

    value = np.zeros(trace.num_cycles, dtype=np.int64)
    for bit in range(width):
        value |= trace.wire(bit_name(signal, bit, width)).astype(np.int64) << bit
    return value


def anchor_avr(trace: Trace) -> list[int | None]:
    """AVR cycle anchors: the program point a fault in cycle ``c`` enters.

    The instruction executing in a valid cycle ``c`` sits at ``pc(c-1)``
    (2-stage pipeline). Bubble cycles (branch flush, the cycle-0 reset NOP)
    touch no registers, so a fault there holds forward to the next executed
    instruction; post-halt cycles anchor nowhere (registers freeze — a
    dynamic tail, never claimed).
    """
    from repro.cpu.avr.core import PC_BITS

    pc = _trace_word(trace, "pc", PC_BITS)
    flush = trace.wire("flush")
    halted = trace.wire("halted_reg")
    anchors: list[int | None] = [None] * trace.num_cycles
    pending: int | None = None
    for cycle in range(trace.num_cycles - 1, -1, -1):
        if halted[cycle]:
            pending = None
        elif flush[cycle] or cycle == 0:
            anchors[cycle] = pending
        else:
            pending = int(pc[cycle - 1])
            anchors[cycle] = pending
    return anchors


def anchor_msp430(trace: Trace) -> list[int | None]:
    """MSP430 cycle anchors (multi-cycle FSM core).

    An instruction instance starts at each non-halted FETCH cycle, where
    ``mar`` holds its byte address; every cycle until the next FETCH
    belongs to that instance and anchors to its entry point. This is sound
    for mid-instance faults: a DEAD fact means the instance never reads the
    register, so the fault survives untouched to the next entry (or is
    overwritten by the instance's own EXEC write-back).
    """
    from repro.cpu.msp430.core import S_FETCH
    from repro.cpu.msp430.isa import SR_CPUOFF

    state = _trace_word(trace, "state", 3)
    mar = _trace_word(trace, "mar", 16)
    halted = trace.wire(f"sr_b{SR_CPUOFF}")
    anchors: list[int | None] = []
    pending: int | None = None
    for cycle in range(trace.num_cycles):
        if halted[cycle]:
            anchors.append(None)
            continue
        if state[cycle] == S_FETCH:
            pending = int(mar[cycle]) >> 1
        anchors.append(pending)
    return anchors


def anchor_cycles(core: str, trace: Trace) -> list[int | None]:
    """Per-cycle program points for the named core's golden trace."""
    if core == "avr":
        return anchor_avr(trace)
    if core == "msp430":
        return anchor_msp430(trace)
    raise ValueError(f"unknown core {core!r}")


# ----------------------------------------------------------------------
# the static prune map: (DFF, bit, cycle) view of the claims
# ----------------------------------------------------------------------
class StaticPruneMap:
    """Statically-dead (DFF × cycle) points for one design/workload pair.

    The register-level DEAD facts intersect with the golden trace's
    PC-per-cycle sampling: a fault point ``(rf_rN_bB, c)`` is dead when
    cycle ``c`` anchors to a program point with a :class:`StaticClaim` for
    ``rN``. All bits of a register share its claims (full-register
    must-writes kill every bit).
    """

    def __init__(
        self,
        core: str,
        workload: str,
        netlist_hash: str,
        golden_cycles: int,
        register_width: int,
        claims: list[StaticClaim],
        anchors: list[int | None],
    ) -> None:
        if len(anchors) != golden_cycles:
            raise ValueError(
                f"{len(anchors)} anchors for {golden_cycles} golden cycles"
            )
        self.core = core
        self.workload = workload
        self.netlist_hash = netlist_hash
        self.golden_cycles = golden_cycles
        self.register_width = register_width
        self.claims = list(claims)
        self.anchors = list(anchors)
        self._dead_points: dict[int, set[int]] = {}
        for claim in self.claims:
            self._dead_points.setdefault(claim.register, set()).add(claim.point)
        self._dead_cycles: dict[int, np.ndarray] = {}

    # -- queries --------------------------------------------------------
    def registers(self) -> list[int]:
        """Registers with at least one claim."""
        return sorted(self._dead_points)

    def register_of(self, dff_name: str) -> int | None:
        """The register-file index a DFF (bit) name belongs to, if any."""
        match = _RF_NAME.match(dff_name)
        return int(match.group(1)) if match else None

    def dead_cycles(self, register: int) -> np.ndarray:
        """Boolean per-cycle statically-dead vector for one register."""
        cached = self._dead_cycles.get(register)
        if cached is None:
            points = self._dead_points.get(register, set())
            cached = np.fromiter(
                (anchor in points for anchor in self.anchors),
                dtype=bool,
                count=self.golden_cycles,
            )
            self._dead_cycles[register] = cached
        return cached

    def pruned_vector(self, dff_name: str) -> np.ndarray:
        """Per-cycle statically-benign vector for one flip-flop (bit)."""
        register = self.register_of(dff_name)
        if register is None:
            return np.zeros(self.golden_cycles, dtype=bool)
        return self.dead_cycles(register)

    def is_dead(self, dff_name: str, cycle: int) -> bool:
        """True when the (flip-flop, cycle) point is statically benign."""
        register = self.register_of(dff_name)
        if register is None or not 0 <= cycle < self.golden_cycles:
            return False
        return bool(self.dead_cycles(register)[cycle])

    def claim_at(self, dff_name: str, cycle: int) -> StaticClaim | None:
        """The certificate backing a statically-dead point, if any."""
        register = self.register_of(dff_name)
        if register is None or not 0 <= cycle < self.golden_cycles:
            return None
        anchor = self.anchors[cycle]
        if anchor is None or anchor not in self._dead_points.get(register, set()):
            return None
        for claim in self.claims:
            if claim.register == register and claim.point == anchor:
                return claim
        return None  # pragma: no cover - anchors derive from claims

    @property
    def num_dead_points(self) -> int:
        """Total statically-benign (DFF bit × cycle) points."""
        return self.register_width * sum(
            int(self.dead_cycles(register).sum()) for register in self._dead_points
        )

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "version": STATIC_MAP_VERSION,
            "core": self.core,
            "workload": self.workload,
            "netlist_hash": self.netlist_hash,
            "golden_cycles": self.golden_cycles,
            "register_width": self.register_width,
            "claims": [claim.to_dict() for claim in self.claims],
            "anchors": [-1 if a is None else a for a in self.anchors],
        }

    @classmethod
    def from_dict(cls, doc: dict[str, object]) -> StaticPruneMap:
        version = doc.get("version")
        if version != STATIC_MAP_VERSION:
            raise ValueError(f"unsupported StaticPruneMap version {version!r}")
        return cls(
            str(doc["core"]),
            str(doc["workload"]),
            str(doc["netlist_hash"]),
            int(doc["golden_cycles"]),  # type: ignore[arg-type]
            int(doc["register_width"]),  # type: ignore[arg-type]
            [StaticClaim.from_dict(c) for c in doc["claims"]],  # type: ignore[union-attr]
            [None if a == -1 else int(a) for a in doc["anchors"]],  # type: ignore[union-attr]
        )

    def save(self, path: Path) -> None:
        path.write_text(json.dumps(self.to_dict()), encoding="utf-8")

    @classmethod
    def load(cls, path: Path) -> StaticPruneMap:
        return cls.from_dict(json.loads(path.read_text(encoding="utf-8")))

    def __repr__(self) -> str:
        return (
            f"StaticPruneMap({self.core}/{self.workload}: "
            f"{len(self.claims)} claims over {self.golden_cycles} cycles, "
            f"{self.num_dead_points} dead points)"
        )


# ----------------------------------------------------------------------
# campaign collapsing
# ----------------------------------------------------------------------
def collapse_static(
    points, static_map: StaticPruneMap
) -> CollapsePlan:
    """Collapse a point list using only the static layer.

    Statically-dead points become annotated-benign with ``source="static"``;
    everything else is injected (no equivalence followers — static facts
    prove benignness, not pairwise equivalence).
    """
    from repro.prune.defuse import CollapsePlan

    plan = CollapsePlan(points=[(dff, int(cycle)) for dff, cycle in points])
    for index, (dff, cycle) in enumerate(plan.points):
        if static_map.is_dead(dff, cycle):
            plan.dead.append(index)
            plan.sources[index] = "static"
        else:
            plan.executed.append(index)
    return plan


# ----------------------------------------------------------------------
# named-target analysis, caching, audit
# ----------------------------------------------------------------------
@dataclass
class DataflowAnalysis:
    """Full static-dataflow context for one named (core, program) target."""

    target_name: str
    cfg: ProgramCFG
    dead: dict[int, frozenset[int]] = field(repr=False)
    map: StaticPruneMap


def program_words(target_name: str) -> tuple[str, list[int]]:
    """(core, loaded firmware words) for a named fi target."""
    from repro.programs import avr_conv, avr_fib, msp430_conv, msp430_fib

    core, _, program = target_name.partition("-")
    firmware = {
        ("avr", "fib"): avr_fib,
        ("avr", "conv"): avr_conv,
        ("msp430", "fib"): msp430_fib,
        ("msp430", "conv"): msp430_conv,
    }.get((core, program))
    if firmware is None:
        raise ValueError(f"not a named core-program target: {target_name!r}")
    return core, firmware(halt=True)


def analyze_dataflow(target_name: str, netlist_hash: str = "") -> DataflowAnalysis:
    """Decode, solve, certify, and anchor one named target."""
    from repro.prune.analyze import get_analysis

    core, words = program_words(target_name)
    with span("prune/static", target=target_name):
        cfg = decode_program(core, words)
        dead = dead_facts(cfg)
        claims = build_claims(cfg, dead)
        trace = get_analysis(target_name).trace  # shared golden trace
        anchors = anchor_cycles(core, trace)
        static_map = StaticPruneMap(
            core=core,
            workload=target_name,
            netlist_hash=netlist_hash,
            golden_cycles=trace.num_cycles,
            register_width=8 if core == "avr" else 16,
            claims=claims,
            anchors=anchors,
        )
    counter("prune.static.maps_built").inc()
    return DataflowAnalysis(
        target_name=target_name, cfg=cfg, dead=dead, map=static_map
    )


def _map_cache_path(target_name: str, netlist_hash: str) -> Path:
    from repro.eval import context

    return context.cache_dir() / f"dataflow_{target_name}_{netlist_hash}.json"


@lru_cache(maxsize=None)
def get_dataflow_analysis(target_name: str) -> DataflowAnalysis:
    """Full static analysis for a named fi target (memoized in-process)."""
    from repro.eval import context
    from repro.prune.analyze import _core_of

    netlist_hash = context.netlist_hash(_core_of(target_name))
    analysis = analyze_dataflow(target_name, netlist_hash=netlist_hash)
    path = _map_cache_path(target_name, netlist_hash)
    path.parent.mkdir(parents=True, exist_ok=True)
    analysis.map.save(path)
    return analysis


def get_static_map(target_name: str) -> StaticPruneMap:
    """The static map for a named fi target, from disk cache when possible."""
    from repro.eval import context
    from repro.prune.analyze import _core_of

    netlist_hash = context.netlist_hash(_core_of(target_name))
    path = _map_cache_path(target_name, netlist_hash)
    if path.is_file():
        try:
            cached = StaticPruneMap.load(path)
        except (ValueError, KeyError, OSError):
            path.unlink(missing_ok=True)  # corrupt/stale cache: recompute
        else:
            if cached.netlist_hash == netlist_hash:
                counter("prune.static_cache.hits").inc()
                return cached
    counter("prune.static_cache.misses").inc()
    return get_dataflow_analysis(target_name).map


class DataflowAudit:
    """Everything the ``dataflow.*`` lint rules need for one named target."""

    def __init__(self, analysis: DataflowAnalysis) -> None:
        self.analysis = analysis
        self._campaign: Campaign | None = None

    @property
    def target_name(self) -> str:
        return self.analysis.target_name

    @property
    def cfg(self) -> ProgramCFG:
        return self.analysis.cfg

    @property
    def map(self) -> StaticPruneMap:
        return self.analysis.map

    def campaign(self) -> Campaign:
        """Ground-truth injection campaign for this target (built once)."""
        if self._campaign is None:
            from repro.fi.campaign import Campaign
            from repro.fi.targets import named_target

            self._campaign = Campaign(named_target(self.target_name))
        return self._campaign


@lru_cache(maxsize=None)
def get_dataflow_audit(target_name: str) -> DataflowAudit:
    """Audit bundle for a named fi target (memoized in-process)."""
    return DataflowAudit(get_dataflow_analysis(target_name))
