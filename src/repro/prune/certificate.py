"""Independent re-checking of def-use interval certificates.

The analysis in :mod:`repro.prune.access` is vectorized and cone-scoped;
this module is deliberately neither. :func:`classify_cycle` evaluates the
*entire* netlist scalar-style (``BoolFunc.evaluate`` per gate, no fault
cone, no truth-table cache) for a single (flip-flop, cycle) and derives the
same escape/hold/kill verdict from first principles. :func:`verify_claim`
checks an :class:`~repro.prune.defuse.IntervalClaim` structurally and
re-derives its per-cycle evidence — zero injection simulations. Refutations
come back as human-readable counterexample strings (the static-MATE audit
playbook).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.netlist.netlist import CONST0, CONST1, Netlist
from repro.prune.access import EVENT_ESCAPE, EVENT_HOLD, EVENT_KILL
from repro.prune.defuse import KIND_DEAD, KIND_LIVE, KIND_TAIL, IntervalClaim
from repro.trace.trace import Trace


def classify_cycle(
    netlist: Netlist,
    trace: Trace,
    reads: Sequence[frozenset[str]] | None,
    dff_name: str,
    cycle: int,
) -> str:
    """Scalar full-netlist event code for one (flip-flop, cycle).

    Starts from the golden trace row with the flip-flop's Q bit flipped,
    evaluates every gate in topological order, and classifies where the
    difference went.
    """
    dff = netlist.dffs[dff_name]
    values: dict[str, int] = {CONST0: 0, CONST1: 1}
    for wire in netlist.inputs:
        values[wire] = int(trace.value(cycle, wire))
    for other in netlist.dffs.values():
        values[other.q] = int(trace.value(cycle, other.q))
    values[dff.q] ^= 1

    for gate in netlist.topological_gates():
        function = netlist.library[gate.cell].function
        assignment = {pin: values[wire] for pin, wire in gate.inputs.items()}
        values[gate.output] = function.evaluate(assignment)

    def differs(wire: str) -> bool:
        return values[wire] != int(trace.value(cycle, wire))

    escaped = False
    for other_name, other in netlist.dffs.items():
        if other_name != dff_name and differs(other.d):
            escaped = True
            break
    if not escaped:
        escaped = any(differs(wire) for wire in netlist.outputs)
    if not escaped and reads is not None:
        escaped = dff_name in reads[cycle]
    if escaped:
        return EVENT_ESCAPE
    return EVENT_HOLD if differs(dff.d) else EVENT_KILL


def _structural_problems(claim: IntervalClaim, num_cycles: int) -> list[str]:
    """Shape checks a valid certificate must pass before any re-derivation."""
    problems: list[str] = []
    if not 0 <= claim.start <= claim.end < num_cycles:
        problems.append(
            f"{claim.describe()}: range outside trace of {num_cycles} cycle(s)"
        )
        return problems
    if len(claim.events) != claim.num_points:
        problems.append(
            f"{claim.describe()}: evidence length {len(claim.events)} != "
            f"{claim.num_points} point(s)"
        )
        return problems
    body, last = claim.events[:-1], claim.events[-1]
    if any(event != EVENT_HOLD for event in body):
        problems.append(
            f"{claim.describe()}: interior event(s) {body!r} are not all holds"
        )
    expected_last = {
        KIND_DEAD: EVENT_KILL,
        KIND_LIVE: EVENT_ESCAPE,
        KIND_TAIL: EVENT_HOLD,
    }.get(claim.kind)
    if expected_last is None:
        problems.append(f"{claim.describe()}: unknown kind {claim.kind!r}")
    elif last != expected_last:
        problems.append(
            f"{claim.describe()}: terminal event {last!r}, "
            f"expected {expected_last!r} for kind {claim.kind}"
        )
    if claim.kind == KIND_TAIL and claim.end != num_cycles - 1:
        problems.append(
            f"{claim.describe()}: tail interval must reach the last cycle "
            f"{num_cycles - 1}"
        )
    return problems


def verify_claim(
    netlist: Netlist,
    trace: Trace,
    reads: Sequence[frozenset[str]] | None,
    claim: IntervalClaim,
    cycles: Iterable[int] | None = None,
) -> list[str]:
    """Re-check one certificate; returns counterexample strings (empty = ok).

    ``cycles`` restricts the expensive scalar re-derivation to a subset of
    the interval (structural checks always run on the whole claim); by
    default every cycle is re-derived.
    """
    problems = _structural_problems(claim, trace.num_cycles)
    if problems:
        return problems
    dff = netlist.dffs.get(claim.dff)
    if dff is None:
        return [f"{claim.describe()}: unknown flip-flop {claim.dff!r}"]
    if dff.q != claim.wire:
        return [
            f"{claim.describe()}: wire {claim.wire!r} is not {claim.dff}'s Q "
            f"output {dff.q!r}"
        ]
    check_cycles = range(claim.start, claim.end + 1) if cycles is None else cycles
    for cycle in check_cycles:
        if not claim.covers(cycle):
            problems.append(f"{claim.describe()}: cycle {cycle} outside interval")
            continue
        claimed = claim.events[cycle - claim.start]
        derived = classify_cycle(netlist, trace, reads, claim.dff, cycle)
        if derived != claimed:
            problems.append(
                f"{claim.describe()}: cycle {cycle} claims {claimed!r} but "
                f"scalar re-derivation yields {derived!r}"
            )
    return problems
