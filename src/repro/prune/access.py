"""Per-cycle def-use access events, vectorized over the golden trace.

For one fault wire ``w`` (a flip-flop Q output) and every cycle ``c`` of the
golden run, we ask: if the machine state at the start of ``c`` were exactly
the golden state with bit ``w`` flipped, where does the difference go during
``c``? The answer is one of three *events*:

- ``'e'`` (**escape**) — the difference reaches another flip-flop's D pin, a
  primary output, or the testbench read ``w`` that cycle. The fault becomes
  observable or multi-bit; static reasoning stops here.
- ``'h'`` (**hold**) — no escape, and ``w``'s own D value differs from
  golden. Since golden D at ``c`` is golden Q at ``c+1``, the faulty next
  state is again *golden with bit ``w`` flipped*: injecting at ``c`` is
  bit-for-bit equivalent to injecting at ``c+1``.
- ``'k'`` (**kill**) — no escape, and ``w``'s own D matches golden: the
  flip is overwritten and the run reconverges with the golden run.

Because every cycle's evaluation depends only on the golden trace (all cone
border wires carry golden values), the per-cycle events are computed for all
cycles at once: each cone gate is evaluated as a truth-table lookup over
full trace columns.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.cells.library import Cell
from repro.core.cone import compute_fault_cone
from repro.netlist.netlist import Netlist
from repro.trace.trace import Trace

#: Event codes (one character per cycle).
EVENT_ESCAPE = "e"
EVENT_HOLD = "h"
EVENT_KILL = "k"


def _cell_lut(cell: Cell, cache: dict[str, np.ndarray] | None) -> np.ndarray:
    """Truth table of one cell as a ``2**npins`` lookup array."""
    if cache is not None:
        lut = cache.get(cell.name)
        if lut is not None:
            return lut
    func = cell.function
    npins = len(func.pins)
    if npins > 16:
        raise ValueError(f"cell {cell.name} has {npins} pins; LUT limit is 16")
    lut = np.array(
        [(func.table >> row) & 1 for row in range(1 << npins)], dtype=np.uint8
    )
    if cache is not None:
        cache[cell.name] = lut
    return lut


def wire_events(
    netlist: Netlist,
    trace: Trace,
    dff_name: str,
    reads: Sequence[frozenset[str]] | None = None,
    lut_cache: dict[str, np.ndarray] | None = None,
) -> str:
    """Per-cycle event string (``'e'``/``'h'``/``'k'``) for one flip-flop.

    ``trace`` is the golden campaign trace (halting run, every wire
    recorded); ``reads`` the per-cycle DFF-name sets the testbench read
    during that same run (see ``Simulator.run(record_reads=True)``) — when
    omitted, testbench reads are not treated as uses, which is only sound
    for testbenches that never read state.
    """
    dff = netlist.dffs[dff_name]
    fault_wire = dff.q
    num_cycles = trace.num_cycles
    if reads is not None and len(reads) != num_cycles:
        raise ValueError(
            f"reads length {len(reads)} != trace cycles {num_cycles}"
        )

    cone = compute_fault_cone(netlist, fault_wire)
    # Faulty wire values across all cycles; border wires read golden columns.
    faulty: dict[str, np.ndarray] = {fault_wire: trace.wire(fault_wire) ^ 1}
    for gate in cone.cone_gates:
        cell = netlist.library[gate.cell]
        func = cell.function
        row = np.zeros(num_cycles, dtype=np.uint16)
        for pin_index, pin in enumerate(func.pins):
            wire = gate.inputs[pin]
            vec = faulty.get(wire)
            if vec is None:
                vec = trace.wire(wire)
            row |= vec.astype(np.uint16) << pin_index
        faulty[gate.output] = _cell_lut(cell, lut_cache)[row]

    def diff(wire: str) -> np.ndarray | None:
        """Boolean faulty-vs-golden difference vector, None outside cone."""
        vec = faulty.get(wire)
        if vec is None:
            return None
        return vec != trace.wire(wire)

    escape = np.zeros(num_cycles, dtype=bool)
    # Escapes are per *role*, not per wire: a wire may drive several DFF D
    # pins and outputs at once, and ``w``'s own D role is the hold signal,
    # never an escape.
    for other_name, other in netlist.dffs.items():
        if other_name == dff_name:
            continue
        other_diff = diff(other.d)
        if other_diff is not None:
            escape |= other_diff
    for out_wire in netlist.outputs:
        out_diff = diff(out_wire)
        if out_diff is not None:
            escape |= out_diff
    if reads is not None:
        escape |= np.fromiter(
            (dff_name in cycle_reads for cycle_reads in reads),
            dtype=bool,
            count=num_cycles,
        )

    own_diff = diff(dff.d)
    hold = own_diff if own_diff is not None else np.zeros(num_cycles, dtype=bool)

    codes = np.where(
        escape,
        np.uint8(ord(EVENT_ESCAPE)),
        np.where(hold, np.uint8(ord(EVENT_HOLD)), np.uint8(ord(EVENT_KILL))),
    ).astype(np.uint8)
    return codes.tobytes().decode("ascii")
