"""Register def-use access model for the MSP430 core (inter-cycle pruning).

Over-approximates which general-purpose registers (r1, r4..r15 — the
RF-tagged set) an instruction word may read. Both the IR (valid through a
multi-cycle instruction) and the live memory-read bus (which carries the
*next* instruction during FETCH, when the shared register port already
reads its source field) are decoded; garbage words from data reads only
add spurious reads, which is conservative.
"""

from __future__ import annotations

from repro.core.intercycle import RegisterAccessModel
from repro.cpu.msp430 import isa
from repro.netlist.netlist import Netlist
from repro.synth.lower import bit_name

#: RF-tagged registers of the core (PC, SR have dedicated analyses; r3 has
#: no storage).
RF_REGISTERS = (1, *range(4, 16))


def registers_read(word: int) -> set[int]:
    """RF registers an instruction word may read (over-approximation)."""
    word &= 0xFFFF
    opcode = word >> 12
    regs: set[int] = set()

    if opcode == 0x1:  # Format II (register mode in this subset)
        reg = word & 0xF
        if reg in RF_REGISTERS:
            regs.add(reg)
        return regs

    if opcode in (0x2, 0x3):  # jumps read only flags
        return regs

    if opcode >= 0x4:  # Format I
        src = (word >> 8) & 0xF
        as_mode = (word >> 4) & 0x3
        dst = word & 0xF
        ad_mode = (word >> 7) & 0x1
        mnemonic = {v: k for k, v in isa.FORMAT1.items()}.get(opcode)

        src_is_cg = (src, as_mode) in isa.CONST_GENERATOR
        if not src_is_cg and src in RF_REGISTERS:
            # Register value used directly, as an address, or as an
            # indexed base; auto-increment also reads it.
            regs.add(src)
        if dst in RF_REGISTERS:
            if ad_mode == 1:
                regs.add(dst)  # indexed base address
            elif mnemonic != "mov":
                regs.add(dst)  # read-modify-write operand
        return regs

    return regs


def registers_written(word: int) -> set[int]:
    """RF registers an instruction word must fully overwrite.

    Under-approximation (the dual of :func:`registers_read`): only writes
    the core performs unconditionally are claimed — a register-mode Format
    II destination, a register-mode Format I destination of a non-compare,
    and the auto-incremented source pointer of an ``@Rn+`` operand.
    Memory-destination writes, jumps, and anything outside the implemented
    subset claim nothing.
    """
    word &= 0xFFFF
    opcode = word >> 12
    regs: set[int] = set()

    if opcode == 0x1:  # Format II
        func = (word >> 7) & 0x7
        mode = (word >> 4) & 0x3
        reg = word & 0xF
        if (
            func in isa.FORMAT2.values()
            and mode == isa.MODE_REGISTER
            and reg in RF_REGISTERS
        ):
            regs.add(reg)
        return regs

    if opcode in (0x2, 0x3):  # jumps write only the PC
        return regs

    mnemonic = {v: k for k, v in isa.FORMAT1.items()}.get(opcode)
    if mnemonic is None:
        return regs

    src = (word >> 8) & 0xF
    as_mode = (word >> 4) & 0x3
    dst = word & 0xF
    ad_mode = (word >> 7) & 0x1
    if (
        as_mode == isa.MODE_INDIRECT_INC
        and (src, as_mode) not in isa.CONST_GENERATOR
        and src in RF_REGISTERS
    ):
        regs.add(src)  # @Rn+ auto-increment
    if mnemonic not in ("cmp", "bit") and ad_mode == 0 and dst in RF_REGISTERS:
        regs.add(dst)
    return regs


def msp430_access_model(netlist: Netlist) -> RegisterAccessModel:
    """Def-use model over the synthesized MSP430 netlist's trace wires."""
    registers = {
        index: [bit_name(f"rf_r{index}", bit, 16) for bit in range(16)]
        for index in RF_REGISTERS
    }
    instruction_wires = [bit_name("ir", bit, 16) for bit in range(16)]
    fetch_bus = [bit_name("mem_rdata", bit, 16) for bit in range(16)]
    wires = netlist.wires()
    for wire in (*instruction_wires, *fetch_bus):
        if wire not in wires:
            raise ValueError(f"netlist lacks expected wire {wire}")
    return RegisterAccessModel(
        registers=registers,
        instruction_wires=instruction_wires,
        reads_of=registers_read,
        extra_instruction_wires=fetch_bus,
    )
