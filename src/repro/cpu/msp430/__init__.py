"""MSP430-compatible 16-bit microcontroller: ISA subset, assembler,
multi-cycle core (RTL), instruction-set simulator, and system testbench."""

from repro.cpu.msp430.asm import Msp430AssemblyError, assemble_msp430
from repro.cpu.msp430.core import build_msp430_core, synthesize_msp430
from repro.cpu.msp430.iss import Msp430Iss
from repro.cpu.msp430.system import Msp430System

__all__ = [
    "Msp430AssemblyError",
    "Msp430Iss",
    "Msp430System",
    "assemble_msp430",
    "build_msp430_core",
    "synthesize_msp430",
]
