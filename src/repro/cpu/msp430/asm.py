"""Two-pass assembler for the MSP430 subset.

Syntax::

    ; comment
    start:
        mov  #0x200, r4     ; immediate (constant generator when possible)
        mov  @r4+, r5       ; indirect auto-increment
        add  r5, 2(r6)      ; indexed destination
        mov  r5, &0x220     ; absolute destination
        jne  start
        bis  #0x10, r2      ; set CPUOFF: halt
        .word 0xBEEF

Addresses are in bytes (words are 2 bytes), matching real MSP430 tooling.
"""

from __future__ import annotations

import re

from repro.cpu.msp430 import isa


class Msp430AssemblyError(ValueError):
    """Raised on any assembly problem, with the offending line."""

    def __init__(self, line_no: int, line: str, message: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no


_LABEL_RE = re.compile(r"^\s*([A-Za-z_.$][\w.$]*):\s*(.*)$")
_REG_ALIASES = {"pc": 0, "sp": 1, "sr": 2, "cg": 3}


class _Operand:
    """A parsed operand: mode, register, optional extension word."""

    def __init__(self, mode: int, reg: int, ext: int | None = None) -> None:
        self.mode = mode
        self.reg = reg
        self.ext = ext

    @property
    def needs_ext(self) -> bool:
        """True when the operand carries an extension word."""
        return self.ext is not None


def _parse_register(token: str) -> int | None:
    token = token.lower()
    if token in _REG_ALIASES:
        return _REG_ALIASES[token]
    match = re.fullmatch(r"r(\d{1,2})", token)
    if match and 0 <= int(match.group(1)) < 16:
        return int(match.group(1))
    return None


def _parse_value(token: str, labels: dict[str, int], line_no: int, line: str) -> int:
    token = token.strip()
    if token in labels:
        return labels[token]
    negative = token.startswith("-")
    body = token[1:] if negative else token
    if body in labels:
        value = labels[body]
    else:
        try:
            value = int(body, 0)
        except ValueError:
            raise Msp430AssemblyError(line_no, line, f"bad value {token!r}") from None
    return -value if negative else value


def _parse_src(token: str, labels: dict[str, int], line_no: int, line: str) -> _Operand:
    token = token.strip()
    reg = _parse_register(token)
    if reg is not None:
        return _Operand(isa.MODE_REGISTER, reg)
    if token.startswith("#"):
        value = _parse_value(token[1:], labels, line_no, line) & 0xFFFF
        # Only literal immediates may use the constant generator: label
        # immediates must keep their extension word so that pass-1 sizes
        # (computed before label values are known) stay exact.
        is_literal = True
        try:
            int(token[1:], 0)
        except ValueError:
            is_literal = False
        if is_literal:
            cg = isa.immediate_via_cg(value)
            if cg is not None:
                return _Operand(cg[1], cg[0])
        return _Operand(isa.MODE_INDIRECT_INC, isa.REG_PC, ext=value)
    if token.startswith("@"):
        body = token[1:]
        increment = body.endswith("+")
        reg = _parse_register(body[:-1] if increment else body)
        if reg is None:
            raise Msp430AssemblyError(line_no, line, f"bad indirect operand {token!r}")
        return _Operand(isa.MODE_INDIRECT_INC if increment else isa.MODE_INDIRECT, reg)
    if token.startswith("&"):
        address = _parse_value(token[1:], labels, line_no, line) & 0xFFFF
        return _Operand(isa.MODE_INDEXED, isa.REG_SR, ext=address)
    match = re.fullmatch(r"(.+)\((\w+)\)", token)
    if match:
        reg = _parse_register(match.group(2))
        if reg is None:
            raise Msp430AssemblyError(line_no, line, f"bad index register in {token!r}")
        offset = _parse_value(match.group(1), labels, line_no, line) & 0xFFFF
        return _Operand(isa.MODE_INDEXED, reg, ext=offset)
    raise Msp430AssemblyError(line_no, line, f"cannot parse operand {token!r}")


def _parse_dst(token: str, labels: dict[str, int], line_no: int, line: str) -> _Operand:
    operand = _parse_src(token, labels, line_no, line)
    if operand.mode == isa.MODE_REGISTER:
        return operand
    if operand.mode == isa.MODE_INDEXED and operand.ext is not None:
        return operand
    raise Msp430AssemblyError(
        line_no, line, f"destination must be a register, x(Rn) or &addr: {token!r}"
    )


def _statement_words(mnemonic: str, ops: list[str]) -> int:
    """Upper bound is fine in pass 1 only if exact — so compute exactly."""
    if mnemonic == ".word":
        return 1
    if mnemonic == "halt":
        return 2  # BIS #0x10, SR with extension word
    words = 1
    if mnemonic in isa.FORMAT1 and len(ops) == 2:
        src = ops[0].strip()
        if src.startswith("#"):
            try:
                value = int(src[1:], 0) & 0xFFFF
                if isa.immediate_via_cg(value) is None:
                    words += 1
            except ValueError:
                words += 1  # label immediate: always extension word
        elif src.startswith("&") or re.fullmatch(r".+\(\w+\)", src):
            words += 1
        dst = ops[1].strip()
        if dst.startswith("&") or re.fullmatch(r".+\(\w+\)", dst):
            words += 1
    return words


def assemble_msp430(source: str) -> list[int]:
    """Assemble MSP430 source into 16-bit words (loaded at byte address 0)."""
    lines = source.splitlines()

    labels: dict[str, int] = {}
    statements: list[tuple[int, str, int]] = []
    byte_address = 0
    for line_no, raw in enumerate(lines, start=1):
        statement = raw.split(";", 1)[0].strip()
        match = _LABEL_RE.match(statement)
        if match:
            label, statement = match.group(1), match.group(2).strip()
            if label in labels:
                raise Msp430AssemblyError(line_no, raw, f"duplicate label {label!r}")
            labels[label] = byte_address
        if not statement:
            continue
        parts = statement.split(None, 1)
        mnemonic = parts[0].lower()
        ops = [o.strip() for o in parts[1].split(",")] if len(parts) > 1 else []
        statements.append((line_no, statement, byte_address))
        byte_address += 2 * _statement_words(mnemonic, ops)

    words: list[int] = []
    for line_no, statement, address in statements:
        parts = statement.split(None, 1)
        mnemonic = parts[0].lower()
        ops = [o.strip() for o in parts[1].split(",")] if len(parts) > 1 else []
        words.extend(_encode(mnemonic, ops, address, labels, line_no, statement))
    return words


def _encode(
    mnemonic: str,
    ops: list[str],
    address: int,
    labels: dict[str, int],
    line_no: int,
    line: str,
) -> list[int]:
    def need(count: int) -> None:
        if len(ops) != count:
            raise Msp430AssemblyError(
                line_no, line, f"{mnemonic} expects {count} operand(s)"
            )

    if mnemonic == ".word":
        need(1)
        return [_parse_value(ops[0], labels, line_no, line) & 0xFFFF]

    if mnemonic == "nop":  # canonical NOP: MOV r3, r3
        need(0)
        return [isa.encode_format1("mov", isa.REG_CG, isa.MODE_REGISTER, isa.REG_CG, 0)]

    if mnemonic == "halt":  # idiom: BIS #CPUOFF, SR
        need(0)
        reg, mode = isa.REG_SR, isa.MODE_INDIRECT_INC  # CG constant 8
        del reg, mode
        return _encode("bis", ["#0x10", "r2"], address, labels, line_no, line)

    if mnemonic in isa.FORMAT1:
        need(2)
        src = _parse_src(ops[0], labels, line_no, line)
        dst = _parse_dst(ops[1], labels, line_no, line)
        word = isa.encode_format1(
            mnemonic,
            src.reg,
            src.mode,
            dst.reg,
            1 if dst.mode == isa.MODE_INDEXED else 0,
        )
        words = [word]
        if src.needs_ext:
            words.append(src.ext & 0xFFFF)
        if dst.needs_ext:
            words.append(dst.ext & 0xFFFF)
        return words

    if mnemonic in isa.FORMAT2:
        need(1)
        reg = _parse_register(ops[0])
        if reg is None:
            raise Msp430AssemblyError(
                line_no, line, f"{mnemonic} supports register mode only"
            )
        return [isa.encode_format2(mnemonic, reg)]

    if mnemonic in isa.JUMPS:
        need(1)
        target = _parse_value(ops[0], labels, line_no, line)
        offset_bytes = target - address - 2
        if offset_bytes % 2:
            raise Msp430AssemblyError(line_no, line, "odd jump target")
        try:
            return [isa.encode_jump(mnemonic, offset_bytes // 2)]
        except ValueError as exc:
            raise Msp430AssemblyError(line_no, line, str(exc)) from None

    raise Msp430AssemblyError(line_no, line, f"unknown mnemonic {mnemonic!r}")
