"""MSP430-compatible multi-cycle core, described in the RTL DSL.

A classic size-optimized FSM implementation (the paper's second evaluation
target is exactly this style): one shared memory port, one shared ALU, and
a six-state control FSM::

    FETCH -> [SRCEXT] -> [SRCREAD] -> [DSTEXT] -> [DSTREAD] -> EXEC -> FETCH

Memory is external and word-oriented; the memory address register ``mar``
always holds the address being read this cycle (the testbench serves
``mem_rdata = mem[mar]``), and writes are committed from EXEC through the
``mem_we``/``mem_wr_addr``/``mem_wdata`` outputs.

Register file: r0 = PC and r2 = SR are real (non-RF-tagged) registers; r3
is the constant generator and has no storage; r1 (SP) and r4..r15 are
tagged as register-file flip-flops — giving the paper's split of an
RF-dominant fault population versus abundant multi-cycle pipeline state.
"""

from __future__ import annotations

from repro.cpu.msp430 import isa
from repro.netlist.netlist import Netlist
from repro.rtl import RtlCircuit, cat, const, mux, onehot_case, parallel_case
from repro.rtl.expr import Const, Expr
from repro.synth import synthesize

# FSM state encoding.
S_FETCH, S_SRCEXT, S_SRCREAD, S_DSTEXT, S_DSTREAD, S_EXEC = range(6)


def _mux16(select: Expr, values: list[Expr]) -> Expr:
    """Balanced 16:1 mux tree."""
    level = list(values)
    for bit_index in range(4):
        bit = select[bit_index]
        level = [
            mux(bit, level[2 * i], level[2 * i + 1])
            for i in range(len(level) // 2)
        ]
    return level[0]


def build_msp430_core() -> RtlCircuit:
    """Build the MSP430 core as an RTL circuit."""
    c = RtlCircuit("msp430")
    mem_rdata = c.input("mem_rdata", 16)

    state = c.reg("state", 3, init=S_FETCH)
    ir = c.reg("ir", 16, init=0)
    mar = c.reg("mar", 16, init=0)
    srcval = c.reg("srcval", 16, init=0)
    dstaddr = c.reg("dstaddr", 16, init=0)
    dstval = c.reg("dstval", 16, init=0)

    pc = c.reg("pc", 16, init=0)
    sr = c.reg("sr", 16, init=0)
    # r1 (SP) and r4..r15 are the register file; r3 has no storage.
    rf_indices = [1] + list(range(4, 16))
    rf = {i: c.reg(f"rf_r{i}", 16, init=0, register_file=True) for i in rf_indices}

    in_fetch = state.eq(S_FETCH)
    in_srcext = state.eq(S_SRCEXT)
    in_srcread = state.eq(S_SRCREAD)
    in_dstext = state.eq(S_DSTEXT)
    in_dstread = state.eq(S_DSTREAD)
    in_exec = state.eq(S_EXEC)

    flag_c, flag_z, flag_n = sr[isa.SR_C], sr[isa.SR_Z], sr[isa.SR_N]
    flag_v = sr[isa.SR_V]
    halted = sr[isa.SR_CPUOFF]

    # ------------------------------------------------------------------
    # ir-based decode fields (stable from SRCEXT onwards)
    # ------------------------------------------------------------------
    opcode = ir[12:16]
    src = ir[8:12]
    ad = ir[7]
    as_mode = ir[4:6]
    dst = ir[0:4]
    is_fmt1 = ir[14] | ir[15]
    is_fmt2 = opcode.eq(1)

    # ==================================================================
    # FETCH: mem_rdata is the new instruction word.
    # ==================================================================
    fw = mem_rdata  # fetched word
    f_opcode = fw[12:16]
    f_src = fw[8:12]
    f_ad = fw[7]
    f_as = fw[4:6]
    f_is_jump = fw[13] & ~fw[14] & ~fw[15]
    f_is_fmt1 = fw[14] | fw[15]
    f_is_fmt2 = f_opcode.eq(1)

    pc_plus_2 = (pc + 2).trunc(16)

    # Jump resolution.
    jump_cond = fw[10:13]
    nv = flag_n ^ flag_v
    jump_taken = parallel_case(
        [
            (jump_cond.eq(0b000), ~flag_z),
            (jump_cond.eq(0b001), flag_z),
            (jump_cond.eq(0b010), ~flag_c),
            (jump_cond.eq(0b011), flag_c),
            (jump_cond.eq(0b100), flag_n),
            (jump_cond.eq(0b101), ~nv),
            (jump_cond.eq(0b110), nv),
        ],
        default=const(1, 1),
    )
    jump_offset_bytes = cat(const(0, 1), fw[0:10]).sext(16)  # 2 * offset
    jump_target = (pc_plus_2 + jump_offset_bytes).trunc(16)
    f_pc_next = mux(f_is_jump & jump_taken, pc_plus_2, jump_target)

    # Source routing.
    f_src_is_cg3 = f_src.eq(isa.REG_CG)
    f_src_is_cg2 = f_src.eq(isa.REG_SR) & f_as[1]  # As=10/11 on r2: consts 4/8
    f_src_is_cg = f_src_is_cg3 | f_src_is_cg2
    f_src_needs_ext = f_as.eq(isa.MODE_INDEXED) & ~f_src_is_cg3
    f_src_needs_mem = f_as[1] & ~f_src_is_cg  # As=10/11, not a CG constant

    # ------------------------------------------------------------------
    # shared register read port (one 16:1 tree, size-optimized style):
    # FETCH reads the freshly-fetched word's source field, SRCEXT the IR
    # source field, every later state the IR destination field.
    # ------------------------------------------------------------------
    read_addr = parallel_case([(in_fetch, f_src), (in_srcext, src)], default=dst)
    read_pc_value = parallel_case(
        [(in_fetch, f_pc_next), (in_srcext, pc_plus_2), (in_dstext, pc_plus_2)],
        default=pc,
    )
    slots: list[Expr] = []
    for i in range(16):
        if i == isa.REG_PC:
            slots.append(read_pc_value)
        elif i == isa.REG_SR:
            slots.append(sr)
        elif i == isa.REG_CG:
            slots.append(Const(0, 16))
        else:
            slots.append(rf[i])
    reg_read = _mux16(read_addr, slots)

    f_reg_read = reg_read
    f_cg_value = parallel_case(
        [
            (f_src_is_cg3 & f_as.eq(0b01), Const(1, 16)),
            (f_src_is_cg3 & f_as.eq(0b10), Const(2, 16)),
            (f_src_is_cg3 & f_as.eq(0b11), Const(0xFFFF, 16)),
            (f_src_is_cg2 & f_as.eq(0b10), Const(4, 16)),
            (f_src_is_cg2 & f_as.eq(0b11), Const(8, 16)),
        ],
        default=f_reg_read,  # register mode (r3 reads 0 via the mux slot)
    )

    f_dst_indexed = f_is_fmt1 & f_ad

    f_next_state = onehot_case(
        [
            (f_is_jump, Const(S_FETCH, 3)),
            (f_src_needs_ext & f_is_fmt1, Const(S_SRCEXT, 3)),
            (f_src_needs_mem & f_is_fmt1, Const(S_SRCREAD, 3)),
            (f_dst_indexed, Const(S_DSTEXT, 3)),
        ],
        default=Const(S_EXEC, 3),
    )
    # Address for a direct indirect-source read (@Rn / @Rn+ / @PC+).
    f_indirect_addr = mux(f_src.eq(isa.REG_PC), f_reg_read, f_pc_next)
    f_mar_next = parallel_case(
        [
            (f_is_jump, f_pc_next),
            (f_src_needs_ext & f_is_fmt1, f_pc_next),
            (f_src_needs_mem & f_is_fmt1, f_indirect_addr),
        ],
        default=f_pc_next,
    )

    # ==================================================================
    # ir-based execute decode
    # ==================================================================
    is_mov = opcode.eq(isa.FORMAT1["mov"])
    is_add = opcode.eq(isa.FORMAT1["add"])
    is_addc = opcode.eq(isa.FORMAT1["addc"])
    is_subc = opcode.eq(isa.FORMAT1["subc"])
    is_sub = opcode.eq(isa.FORMAT1["sub"])
    is_cmp = opcode.eq(isa.FORMAT1["cmp"])
    is_bit = opcode.eq(isa.FORMAT1["bit"])
    is_bic = opcode.eq(isa.FORMAT1["bic"])
    is_bis = opcode.eq(isa.FORMAT1["bis"])
    is_xor = opcode.eq(isa.FORMAT1["xor"])
    is_and = opcode.eq(isa.FORMAT1["and"])

    func = ir[7:10]
    is_rrc = is_fmt2 & func.eq(isa.FORMAT2["rrc"])
    is_swpb = is_fmt2 & func.eq(isa.FORMAT2["swpb"])
    is_rra = is_fmt2 & func.eq(isa.FORMAT2["rra"])
    is_sxt = is_fmt2 & func.eq(isa.FORMAT2["sxt"])

    # ==================================================================
    # SRCEXT / SRCREAD / DSTEXT / DSTREAD datapath
    # ==================================================================
    src_reg_now = reg_read
    srcext_base = parallel_case(
        [
            (src.eq(isa.REG_SR), Const(0, 16)),  # absolute &addr
            (src.eq(isa.REG_PC), pc_plus_2),  # symbolic ADDR(PC)
        ],
        default=src_reg_now,
    )
    srcext_addr = (srcext_base + mem_rdata).trunc(16)

    src_autoinc = in_srcread & is_fmt1 & as_mode.eq(isa.MODE_INDIRECT_INC)
    srcread_pc_next = mux(src.eq(isa.REG_PC) & as_mode.eq(isa.MODE_INDIRECT_INC),
                          pc, pc_plus_2)

    dst_reg_now = reg_read
    dstext_base = parallel_case(
        [
            (dst.eq(isa.REG_SR), Const(0, 16)),
            (dst.eq(isa.REG_PC), pc_plus_2),
        ],
        default=dst_reg_now,
    )
    dstext_addr = (dstext_base + mem_rdata).trunc(16)
    dst_needs_read = is_fmt1 & ~is_mov

    # ==================================================================
    # EXEC: ALU, flags, write-back
    # ==================================================================
    src_op = srcval
    dst_op_f1 = mux(ad, dst_reg_now, dstval)
    fmt2_op = dst_reg_now
    dst_op = mux(is_fmt2, dst_op_f1, fmt2_op)

    is_sub_like = is_sub | is_subc | is_cmp
    adder_b = mux(is_sub_like, src_op, ~src_op)
    adder_cin = parallel_case(
        [
            (is_sub | is_cmp, const(1, 1)),
            (is_subc | is_addc, flag_c),
        ],
        default=const(0, 1),
    )
    adder_full = dst_op.add_with_carry(adder_b, adder_cin)
    adder_res = adder_full.trunc(16)
    adder_carry = adder_full[16]

    and_res = dst_op & src_op
    xor_res = dst_op ^ src_op

    shift_hi = mux(is_rrc, fmt2_op[15], flag_c)
    shift_res = cat(fmt2_op[1:16], shift_hi)
    swpb_res = cat(fmt2_op[8:16], fmt2_op[0:8])
    sxt_res = cat(fmt2_op[0:8], fmt2_op[7].replicate(8))

    is_arith = is_add | is_addc | is_sub | is_subc | is_cmp
    result = parallel_case(
        [
            (is_mov, src_op),
            (is_arith, adder_res),
            (is_and | is_bit, and_res),
            (is_xor, xor_res),
            (is_bic, dst_op & ~src_op),
            (is_bis, dst_op | src_op),
            (is_rrc | is_rra, shift_res),
            (is_swpb, swpb_res),
            (is_sxt, sxt_res),
        ],
        default=dst_op,
    )

    # Flags.
    d15, b15, r15 = dst_op[15], adder_b[15], adder_res[15]
    v_arith = (d15 & b15 & ~r15) | (~d15 & ~b15 & r15)
    z0 = result.is_zero()
    n0 = result[15]
    nz_c = ~z0  # AND/BIT/XOR/SXT set C = NOT Z

    flags_arith = is_arith
    flags_logic = is_and | is_bit | is_xor | is_sxt
    flags_shift = is_rrc | is_rra
    flags_en = in_exec & (flags_arith | flags_logic | flags_shift)

    c_val = parallel_case(
        [(flags_arith, adder_carry), (flags_shift, fmt2_op[0])], default=nz_c
    )
    v_val = parallel_case(
        [(flags_arith, v_arith), (is_xor, src_op[15] & dst_op[15])],
        default=const(0, 1),
    )

    sr_flagged = cat(
        mux(flags_en, sr[0], c_val),
        mux(flags_en, sr[1], z0),
        mux(flags_en, sr[2], n0),
        sr[3:8],
        mux(flags_en, sr[8], v_val),
        sr[9:16],
    )

    writes_result = is_fmt2 | (is_fmt1 & ~is_cmp & ~is_bit)
    reg_write = in_exec & writes_result & (~ad | is_fmt2)
    mem_write = in_exec & writes_result & is_fmt1 & ad

    # ==================================================================
    # register next-state muxes
    # ==================================================================
    def gate(register, value):
        """Freeze everything once CPUOFF is set."""
        register.next = mux(halted, value, register)

    exec_pc_write = reg_write & dst.eq(isa.REG_PC)
    pc_value = parallel_case(
        [
            (in_fetch, f_pc_next),
            (in_srcext, pc_plus_2),
            (in_srcread, srcread_pc_next),
            (in_dstext, pc_plus_2),
            (in_exec & exec_pc_write, result),
        ],
        default=pc,
    )
    gate(pc, pc_value)

    exec_sr_write = reg_write & dst.eq(isa.REG_SR)
    sr_value = parallel_case(
        [(in_exec, mux(exec_sr_write, sr_flagged, result))],
        default=sr,
    )
    gate(sr, sr_value)

    for index, register in rf.items():
        write_here = reg_write & dst.eq(index)
        inc_here = src_autoinc & src.eq(index)
        value = parallel_case(
            [
                (in_exec & write_here, result),
                (inc_here, (register + 2).trunc(16)),
            ],
            default=register,
        )
        gate(register, value)

    mar_value = parallel_case(
        [
            (in_fetch, f_mar_next),
            (in_srcext, srcext_addr),
            (in_srcread, srcread_pc_next),
            (in_dstext, mux(dst_needs_read, pc_plus_2, dstext_addr)),
            (in_dstread, pc),
            (in_exec & exec_pc_write, result),
        ],
        default=mar,
    )
    gate(mar, mar_value)

    gate(ir, mux(in_fetch, ir, mem_rdata))
    gate(srcval, parallel_case(
        [
            (in_fetch & ~f_src_needs_ext & ~f_src_needs_mem, f_cg_value),
            (in_srcread, mem_rdata),
        ],
        default=srcval,
    ))
    gate(dstaddr, parallel_case(
        [(in_dstext, dstext_addr)],
        default=dstaddr,
    ))
    gate(dstval, mux(in_dstread, dstval, mem_rdata))

    state_value = parallel_case(
        [
            (in_fetch, f_next_state),
            (in_srcext, Const(S_SRCREAD, 3)),
            (in_srcread, mux(is_fmt1 & ad, Const(S_EXEC, 3), Const(S_DSTEXT, 3))),
            (in_dstext, mux(dst_needs_read, Const(S_EXEC, 3), Const(S_DSTREAD, 3))),
            (in_dstread, Const(S_EXEC, 3)),
        ],
        default=Const(S_FETCH, 3),
    )
    gate(state, state_value)

    # ==================================================================
    # external interfaces
    # ==================================================================
    # The write bus is gated with its strobe (an idle bus drives zero), as
    # on the real part — an ungated ``result`` bus would make every
    # register/operand fault externally visible in every cycle and defeat
    # intra-cycle masking. The PC and FSM state are internal (the memory
    # interface is MAR), so they are deliberately NOT chip outputs.
    write_strobe = mem_write & ~halted
    c.output("mem_we", write_strobe)
    c.output("mem_wr_addr", mux(write_strobe, Const(0, 16), dstaddr))
    c.output("mem_wdata", mux(write_strobe, Const(0, 16), result))
    c.output("halted", halted)
    return c


def synthesize_msp430() -> Netlist:
    """Synthesize the MSP430 core onto the standard-cell library."""
    return synthesize(build_msp430_core())
