"""MSP430 system testbench: unified external memory served from MAR.

Byte addresses below ``ram_base`` map to the program ROM; addresses from
``ram_base`` upwards map to the data RAM (word granularity, like the real
part's SRAM at 0x0200). The memory read port is combinational from the
``mar`` register; writes commit from the EXEC-state outputs.
"""

from __future__ import annotations

from repro.sim.memory import RAM, ROM
from repro.sim.simulator import StateView
from repro.sim.testbench import Testbench


class Msp430System(Testbench):
    """Drives the synthesized MSP430 core with a program and a data RAM."""

    def __init__(
        self,
        program: list[int],
        ram_words: int = 256,
        ram_base: int = 0x0200,
        ram_image: dict[int, int] | None = None,
        halt_on_cpuoff: bool = True,
    ) -> None:
        self.rom = ROM(program, width=16)
        self.ram = RAM(ram_words, width=16)
        self.ram_base = ram_base
        self.halt_on_cpuoff = halt_on_cpuoff
        for word_index, value in (ram_image or {}).items():
            self.ram.words[word_index] = value & 0xFFFF

    def read_word(self, byte_address: int) -> int:
        """Combinational memory read (ROM below ram_base, RAM above)."""
        byte_address &= 0xFFFF
        if byte_address >= self.ram_base:
            return self.ram.read(((byte_address - self.ram_base) >> 1) % len(self.ram))
        return self.rom.read(byte_address >> 1)

    def drive(self, cycle: int, state: StateView) -> dict[str, int]:
        """Serve the memory read addressed by the MAR register."""
        return {"mem_rdata": self.read_word(state.read_reg("mar"))}

    def observe(self, cycle: int, outputs: dict[str, int]) -> bool:
        """Commit memory writes; halt on CPUOFF if configured."""
        if outputs.get("mem_we"):
            address = outputs["mem_wr_addr"] & 0xFFFF
            if address >= self.ram_base:
                word_index = ((address - self.ram_base) >> 1) % len(self.ram)
                self.ram.write(word_index, outputs["mem_wdata"], cycle=cycle)
        return bool(outputs.get("halted")) and self.halt_on_cpuoff
