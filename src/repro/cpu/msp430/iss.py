"""MSP430 instruction-set simulator (architectural golden model)."""

from __future__ import annotations

from repro.cpu.msp430 import isa
from repro.sim.memory import RAM, ROM


class Msp430Iss:
    """Architectural interpreter for the implemented MSP430 subset.

    Program and data share one byte-addressed space: addresses below
    ``rom_bytes`` read from the ROM, the rest from RAM (word granularity).
    """

    def __init__(self, rom: ROM, ram: RAM, ram_base: int = 0x0200) -> None:
        self.rom = rom
        self.ram = ram
        self.ram_base = ram_base
        self.regs = [0] * 16
        self.instructions_retired = 0

    # ------------------------------------------------------------------
    @property
    def pc(self) -> int:
        """Program counter (r0)."""
        return self.regs[isa.REG_PC]

    @pc.setter
    def pc(self, value: int) -> None:
        self.regs[isa.REG_PC] = value & 0xFFFF

    @property
    def sr(self) -> int:
        """Status register (r2)."""
        return self.regs[isa.REG_SR]

    @sr.setter
    def sr(self, value: int) -> None:
        self.regs[isa.REG_SR] = value & 0xFFFF

    @property
    def halted(self) -> bool:
        """True once CPUOFF is set."""
        return bool(self.sr & (1 << isa.SR_CPUOFF))

    def _flag(self, bit: int) -> int:
        return (self.sr >> bit) & 1

    def _set_flags(self, c=None, z=None, n=None, v=None) -> None:
        for bit, value in ((isa.SR_C, c), (isa.SR_Z, z), (isa.SR_N, n), (isa.SR_V, v)):
            if value is None:
                continue
            if value:
                self.sr |= 1 << bit
            else:
                self.sr &= ~(1 << bit)

    # ------------------------------------------------------------------
    def read_word(self, byte_address: int) -> int:
        """Read from the unified ROM/RAM byte-address space."""
        byte_address &= 0xFFFF
        if byte_address >= self.ram_base:
            return self.ram.read(((byte_address - self.ram_base) >> 1) % len(self.ram))
        return self.rom.read(byte_address >> 1)

    def write_word(self, byte_address: int, value: int) -> None:
        """Write a word (ROM-space writes are dropped)."""
        byte_address &= 0xFFFF
        if byte_address >= self.ram_base:
            self.ram.write(
                ((byte_address - self.ram_base) >> 1) % len(self.ram), value, cycle=-1
            )
        # Writes into ROM space are dropped (open bus).

    def _fetch(self) -> int:
        word = self.read_word(self.pc)
        self.pc += 2
        return word

    # ------------------------------------------------------------------
    def _resolve_src(self, reg: int, mode: int) -> int:
        constant = isa.CONST_GENERATOR.get((reg, mode))
        if constant is not None:
            return constant
        if mode == isa.MODE_REGISTER:
            return self.regs[reg]
        if mode == isa.MODE_INDEXED:
            ext = self._fetch()
            base = 0 if reg == isa.REG_SR else self.regs[reg]
            return self.read_word(base + ext)
        if mode == isa.MODE_INDIRECT:
            return self.read_word(self.regs[reg])
        # Indirect auto-increment (covers #imm via @PC+).
        address = self.regs[reg]
        value = self.read_word(address)
        self.regs[reg] = (address + 2) & 0xFFFF
        return value

    def _resolve_dst_address(self, reg: int, ad_mode: int) -> int | None:
        """None means register destination; otherwise the byte address."""
        if ad_mode == 0:
            return None
        ext = self._fetch()
        base = 0 if reg == isa.REG_SR else self.regs[reg]
        return (base + ext) & 0xFFFF

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Fetch, decode, and execute one instruction."""
        if self.halted:
            return
        word = self._fetch()
        self.instructions_retired += 1

        opcode = word >> 12
        if opcode == 0x1:  # Format II
            func = (word >> 7) & 0x7
            mode = (word >> 4) & 0x3
            reg = word & 0xF
            if mode != isa.MODE_REGISTER:
                raise ValueError(
                    f"format-II non-register mode unimplemented: {word:#x}"
                )
            operand = self.regs[reg]
            if func == isa.FORMAT2["rrc"]:
                carry_in = self._flag(isa.SR_C)
                result = (operand >> 1) | (carry_in << 15)
                self._set_flags(c=operand & 1, z=int(result == 0), n=result >> 15, v=0)
            elif func == isa.FORMAT2["rra"]:
                result = (operand >> 1) | (operand & 0x8000)
                self._set_flags(c=operand & 1, z=int(result == 0), n=result >> 15, v=0)
            elif func == isa.FORMAT2["swpb"]:
                result = ((operand << 8) | (operand >> 8)) & 0xFFFF
            elif func == isa.FORMAT2["sxt"]:
                result = operand & 0xFF
                if result & 0x80:
                    result |= 0xFF00
                self._set_flags(
                    c=int(result != 0), z=int(result == 0), n=result >> 15, v=0
                )
            else:
                raise ValueError(f"unimplemented format-II function {func}")
            self.regs[reg] = result & 0xFFFF
            return

        if opcode == 0x2 or opcode == 0x3:  # jumps
            condition = (word >> 10) & 0x7
            offset = word & 0x3FF
            if offset >= 512:
                offset -= 1024
            c, z, n = self._flag(isa.SR_C), self._flag(isa.SR_Z), self._flag(isa.SR_N)
            v = self._flag(isa.SR_V)
            take = {
                0b000: not z, 0b001: z, 0b010: not c, 0b011: c,
                0b100: n, 0b101: not (n ^ v), 0b110: bool(n ^ v), 0b111: True,
            }[condition]
            if take:
                self.pc += 2 * offset
            return

        mnemonic = {v: k for k, v in isa.FORMAT1.items()}.get(opcode)
        if mnemonic is None:
            raise ValueError(f"unimplemented instruction {word:#06x}")
        src_reg = (word >> 8) & 0xF
        ad_mode = (word >> 7) & 0x1
        as_mode = (word >> 4) & 0x3
        dst_reg = word & 0xF

        src = self._resolve_src(src_reg, as_mode)
        dst_address = self._resolve_dst_address(dst_reg, ad_mode)
        if dst_address is None:
            dst = self.regs[dst_reg]
        elif mnemonic == "mov":
            dst = 0  # MOV never reads the destination
        else:
            dst = self.read_word(dst_address)

        result, write = self._execute_format1(mnemonic, src, dst)
        if write:
            if dst_address is None:
                if dst_reg != isa.REG_CG:  # r3 writes are discarded
                    self.regs[dst_reg] = result & 0xFFFF
            else:
                self.write_word(dst_address, result & 0xFFFF)

    def _execute_format1(self, mnemonic: str, src: int, dst: int) -> tuple[int, bool]:
        if mnemonic == "mov":
            return src, True
        if mnemonic in ("add", "addc", "sub", "subc", "cmp"):
            if mnemonic in ("sub", "subc", "cmp"):
                operand = (~src) & 0xFFFF
                carry = (
                    1 if mnemonic in ("sub", "cmp") else self._flag(isa.SR_C)
                )
            else:
                operand = src
                carry = 0 if mnemonic == "add" else self._flag(isa.SR_C)
            total = dst + operand + carry
            result = total & 0xFFFF
            d15, o15, r15 = dst >> 15, operand >> 15, result >> 15
            overflow = (d15 & o15 & (1 - r15)) | ((1 - d15) & (1 - o15) & r15)
            self._set_flags(
                c=total >> 16, z=int(result == 0), n=r15, v=overflow
            )
            return result, mnemonic not in ("cmp",)
        if mnemonic in ("and", "bit"):
            result = dst & src
            self._set_flags(
                c=int(result != 0), z=int(result == 0), n=result >> 15, v=0
            )
            return result, mnemonic == "and"
        if mnemonic == "xor":
            result = dst ^ src
            self._set_flags(
                c=int(result != 0),
                z=int(result == 0),
                n=result >> 15,
                v=(src >> 15) & (dst >> 15),
            )
            return result, True
        if mnemonic == "bic":
            return dst & ~src, True
        if mnemonic == "bis":
            return dst | src, True
        raise AssertionError(mnemonic)

    def run(self, max_instructions: int = 1_000_000) -> int:
        """Run until CPUOFF or the instruction budget; returns retired count."""
        for _ in range(max_instructions):
            if self.halted:
                break
            self.step()
        return self.instructions_retired
