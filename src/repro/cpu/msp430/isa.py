"""MSP430 instruction subset: encodings and constants.

Word-mode (``.W``) instructions only; the encodings are bit-compatible with
the TI MSP430x1xx family ISA for the covered subset:

- Format I (two-operand): MOV ADD ADDC SUBC SUB CMP BIT BIC BIS XOR AND
- Format II (one-operand, register mode): RRC SWPB RRA SXT
- Jumps: JNE JEQ JNC JC JN JGE JL JMP

Addressing modes: register, indexed ``x(Rn)``, absolute ``&addr`` (r2-based
indexed), indirect ``@Rn``, indirect auto-increment ``@Rn+``, and immediate
``#imm`` (``@PC+`` or the r2/r3 constant generator where possible).

Status-register (r2) bits: C, Z, N, GIE, CPUOFF, ..., V. ``BIS #0x10, SR``
(set CPUOFF) is the idiomatic halt and is treated as such by the testbench.
"""

from __future__ import annotations

#: Format I opcodes (bits 15..12).
FORMAT1 = {
    "mov": 0x4,
    "add": 0x5,
    "addc": 0x6,
    "subc": 0x7,
    "sub": 0x8,
    "cmp": 0x9,
    "bit": 0xB,
    "bic": 0xC,
    "bis": 0xD,
    "xor": 0xE,
    "and": 0xF,
}

#: Format II opcodes (bits 9..7 under the 000100 prefix).
FORMAT2 = {
    "rrc": 0b000,
    "swpb": 0b001,
    "rra": 0b010,
    "sxt": 0b011,
}

#: Jump conditions (bits 12..10).
JUMPS = {
    "jne": 0b000,
    "jnz": 0b000,
    "jeq": 0b001,
    "jz": 0b001,
    "jnc": 0b010,
    "jlo": 0b010,
    "jc": 0b011,
    "jhs": 0b011,
    "jn": 0b100,
    "jge": 0b101,
    "jl": 0b110,
    "jmp": 0b111,
}

#: Addressing-mode codes (As / Ad).
MODE_REGISTER = 0b00
MODE_INDEXED = 0b01
MODE_INDIRECT = 0b10
MODE_INDIRECT_INC = 0b11

#: Register aliases.
REG_PC, REG_SP, REG_SR, REG_CG = 0, 1, 2, 3

#: Status-register bits.
SR_C, SR_Z, SR_N, SR_GIE, SR_CPUOFF = 0, 1, 2, 3, 4
SR_V = 8

#: Constant-generator values: (register, As) -> constant.
CONST_GENERATOR = {
    (REG_SR, MODE_INDIRECT): 4,
    (REG_SR, MODE_INDIRECT_INC): 8,
    (REG_CG, MODE_REGISTER): 0,
    (REG_CG, MODE_INDEXED): 1,
    (REG_CG, MODE_INDIRECT): 2,
    (REG_CG, MODE_INDIRECT_INC): 0xFFFF,
}


def encode_format1(
    mnemonic: str, src: int, as_mode: int, dst: int, ad_mode: int
) -> int:
    """Two-operand encoding: ``oooo ssss a b aa dddd``."""
    if not 0 <= src < 16 or not 0 <= dst < 16:
        raise ValueError("registers must be r0..r15")
    if ad_mode not in (0, 1):
        raise ValueError("destination mode must be register or indexed")
    return (
        (FORMAT1[mnemonic] << 12)
        | (src << 8)
        | (ad_mode << 7)
        | (as_mode << 4)
        | dst
    )


def encode_format2(mnemonic: str, reg: int, mode: int = MODE_REGISTER) -> int:
    """Single-operand encoding under the ``000100`` prefix."""
    if not 0 <= reg < 16:
        raise ValueError("register must be r0..r15")
    return 0x1000 | (FORMAT2[mnemonic] << 7) | (mode << 4) | reg


def encode_jump(mnemonic: str, offset_words: int) -> int:
    """``001c ccoo oooo oooo``; target = PC + 2 + 2*offset."""
    if not -512 <= offset_words < 512:
        raise ValueError(f"jump offset {offset_words} out of range")
    return 0x2000 | (JUMPS[mnemonic] << 10) | (offset_words & 0x3FF)


def immediate_via_cg(value: int) -> tuple[int, int] | None:
    """(register, As) encoding a constant without an extension word."""
    value &= 0xFFFF
    for (reg, mode), constant in CONST_GENERATOR.items():
        if constant == value:
            return (reg, mode)
    return None
