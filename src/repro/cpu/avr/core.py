"""AVR-compatible 2-stage pipelined core, described in the RTL DSL.

Microarchitecture (mirroring the classic AVR "fetch / execute" overlap):

- stage 1 (fetch): ``pc`` addresses program memory (external, supplied by
  the testbench through ``instr_in``); the fetched word lands in ``ir``.
- stage 2 (execute): decode ``ir``, read the 32×8 register file, run the
  ALU, write back, update SREG. Taken branches redirect ``pc`` and set a
  one-cycle ``flush`` bubble (2-cycle taken branches, as on real AVRs).

Call support uses a small hardware return-address stack (RCALL pushes,
RET pops; depth ``isa.CALL_STACK_DEPTH``, silently wrapping) — the common
choice for deeply-embedded FPGA subsets without an SRAM stack. A free
running timer peripheral (3-bit prescaler, 8-bit TCNT0, sticky overflow
flag) is readable through the IN instruction, alongside an external
``pin_in`` port.

External memory interfaces (the paper's system model keeps memories outside
the fault-injection target): ``instr_in``/``pc`` for program ROM,
``dmem_*`` for data RAM addressed by the X pointer (r27:r26), ``port_*``
for OUT, and a sticky ``halted`` flag raised by SLEEP.
"""

from __future__ import annotations

from functools import reduce

from repro.netlist.netlist import Netlist
from repro.rtl import RtlCircuit, cat, const, mux, parallel_case
from repro.rtl.expr import Const, Expr
from repro.synth import synthesize

PC_BITS = 11  # 2K-word program space


def _match(ir: Expr, pattern: str) -> Expr:
    """Decode helper: AND of IR bits against an MSB-first pattern string.

    ``pattern`` has 16 significant characters ('0', '1', 'x'); underscores
    are cosmetic. ``pattern[0]`` is bit 15.
    """
    pattern = pattern.replace("_", "")
    if len(pattern) != 16:
        raise ValueError(f"pattern {pattern!r} must have 16 bits")
    literals = []
    for position, char in enumerate(pattern):
        bit = ir[15 - position]
        if char == "1":
            literals.append(bit)
        elif char == "0":
            literals.append(~bit)
        elif char != "x":
            raise ValueError(f"bad pattern char {char!r}")
    return reduce(lambda a, b: a & b, literals)


def _mux_tree(select: Expr, values: list[Expr]) -> Expr:
    """Balanced 2^k:1 mux tree (the area-optimized RF read port)."""
    if len(values) != (1 << select.width):
        raise ValueError(f"need {1 << select.width} values, got {len(values)}")
    level = list(values)
    for bit_index in range(select.width):
        bit = select[bit_index]
        level = [
            mux(bit, level[2 * i], level[2 * i + 1]) for i in range(len(level) // 2)
        ]
    return level[0]


def build_avr_core() -> RtlCircuit:
    """Build the AVR core as an RTL circuit (synthesize with
    :func:`synthesize_avr`)."""
    c = RtlCircuit("avr")

    from repro.cpu.avr import isa

    instr_in = c.input("instr_in", 16)
    dmem_rdata = c.input("dmem_rdata", 8)
    pin_in = c.input("pin_in", 8)

    pc = c.reg("pc", PC_BITS, init=0)
    ir = c.reg("ir", 16, init=0)  # resets to NOP
    flush = c.reg("flush", 1, init=0)
    halted_reg = c.reg("halted_reg", 1, init=0)
    sreg = c.reg("sreg", 8, init=0)
    rf = [c.reg(f"rf_r{i}", 8, init=0, register_file=True) for i in range(32)]

    # Hardware return-address stack (depth must be a power of two so the
    # stack pointer wraps naturally).
    call_stack = [
        c.reg(f"rstack{i}", PC_BITS, init=0) for i in range(isa.CALL_STACK_DEPTH)
    ]
    csp_bits = max(1, (isa.CALL_STACK_DEPTH - 1).bit_length())
    csp = c.reg("csp", csp_bits, init=0)

    # Timer0 peripheral: prescaler, counter, sticky overflow flag.
    prescaler = c.reg("t0_presc", isa.TIMER_PRESCALER_BITS, init=0)
    tcnt = c.reg("t0_cnt", 8, init=0)
    tov = c.reg("t0_ov", 1, init=0)

    valid = ~flush & ~halted_reg

    # ------------------------------------------------------------------
    # decode
    # ------------------------------------------------------------------
    is_add = _match(ir, "000011xxxxxxxxxx")
    is_adc = _match(ir, "000111xxxxxxxxxx")
    is_sub = _match(ir, "000110xxxxxxxxxx")
    is_sbc = _match(ir, "000010xxxxxxxxxx")
    is_cp = _match(ir, "000101xxxxxxxxxx")
    is_cpc = _match(ir, "000001xxxxxxxxxx")
    is_and = _match(ir, "001000xxxxxxxxxx")
    is_eor = _match(ir, "001001xxxxxxxxxx")
    is_or = _match(ir, "001010xxxxxxxxxx")
    is_mov = _match(ir, "001011xxxxxxxxxx")

    is_cpi = _match(ir, "0011xxxxxxxxxxxx")
    is_sbci = _match(ir, "0100xxxxxxxxxxxx")
    is_subi = _match(ir, "0101xxxxxxxxxxxx")
    is_ori = _match(ir, "0110xxxxxxxxxxxx")
    is_andi = _match(ir, "0111xxxxxxxxxxxx")
    is_ldi = _match(ir, "1110xxxxxxxxxxxx")

    one_op_prefix = _match(ir, "1001010xxxxxxxxx")
    func = ir[0:4]
    is_com = one_op_prefix & func.eq(0b0000)
    is_neg = one_op_prefix & func.eq(0b0001)
    is_swap = one_op_prefix & func.eq(0b0010)
    is_inc = one_op_prefix & func.eq(0b0011)
    is_asr = one_op_prefix & func.eq(0b0101)
    is_lsr = one_op_prefix & func.eq(0b0110)
    is_ror = one_op_prefix & func.eq(0b0111)
    is_dec = one_op_prefix & func.eq(0b1010)
    is_sleep = ir.eq(0x9588)

    is_branch = _match(ir, "11110xxxxxxxxxxx")
    is_rjmp = _match(ir, "1100xxxxxxxxxxxx")
    is_rcall = _match(ir, "1101xxxxxxxxxxxx")
    is_ret = ir.eq(0x9508)
    is_ldst = _match(ir, "100100xxxxxx110x")
    is_st = is_ldst & ir[9]
    is_ld = is_ldst & ~ir[9]
    is_out = _match(ir, "10111xxxxxxxxxxx")
    is_in = _match(ir, "10110xxxxxxxxxxx")

    is_imm_class = is_cpi | is_sbci | is_subi | is_ori | is_andi | is_ldi

    # ------------------------------------------------------------------
    # register-file read
    # ------------------------------------------------------------------
    d5 = cat(ir[4:8], ir[8])
    r5 = cat(ir[0:4], ir[9])
    d_imm = cat(ir[4:8], const(1, 1))  # immediate ops address r16..r31
    rd_addr = mux(is_imm_class, d5, d_imm)

    rd_val = _mux_tree(rd_addr, list(rf))
    rr_val = _mux_tree(r5, list(rf))

    k8 = cat(ir[0:4], ir[8:12])
    b_main = mux(is_imm_class, rr_val, k8)

    # ------------------------------------------------------------------
    # ALU
    # ------------------------------------------------------------------
    flag_c = sreg[0]
    flag_z = sreg[1]

    one8 = Const(1, 8)
    zero8 = Const(0, 8)

    add_b = mux(is_inc, b_main, one8)
    add_cin = is_adc & flag_c
    add_full = rd_val.add_with_carry(add_b, add_cin)
    add_res = add_full.trunc(8)
    add_carry = add_full[8]

    sub_a = mux(is_neg, rd_val, zero8)
    sub_b = parallel_case([(is_neg, rd_val), (is_dec, one8)], default=b_main)
    sub_bin = (is_sbc | is_cpc | is_sbci) & flag_c
    sub_full = sub_a.sub_with_borrow(sub_b, sub_bin)
    sub_res = sub_full.trunc(8)
    sub_borrow = ~sub_full[8]

    logic_res = parallel_case(
        [
            (is_and | is_andi, rd_val & b_main),
            (is_or | is_ori, rd_val | b_main),
        ],
        default=rd_val ^ b_main,
    )

    shift_hi = parallel_case(
        [(is_ror, flag_c), (is_asr, rd_val[7])], default=const(0, 1)
    )
    shift_res = cat(rd_val[1:8], shift_hi)

    is_add_class = is_add | is_adc | is_inc
    is_sub_res_class = is_sub | is_sbc | is_subi | is_sbci | is_neg | is_dec
    is_cmp_class = is_cp | is_cpc | is_cpi
    is_logic_class = is_and | is_andi | is_or | is_ori | is_eor
    is_shift_class = is_lsr | is_ror | is_asr

    # I/O read data (IN instruction): core-internal peripherals + pins.
    io_address = cat(ir[0:4], ir[9:11])
    io_read = parallel_case(
        [
            (io_address.eq(isa.IO_TCNT0), tcnt),
            (io_address.eq(isa.IO_TIFR), tov.zext(8)),
            (io_address.eq(isa.IO_PIN), pin_in),
        ],
        default=Const(0, 8),
    )

    result = parallel_case(
        [
            (is_add_class, add_res),
            (is_sub_res_class, sub_res),
            (is_logic_class, logic_res),
            (is_mov | is_ldi, b_main),
            (is_shift_class, shift_res),
            (is_com, ~rd_val),
            (is_swap, cat(rd_val[4:8], rd_val[0:4])),
            (is_ld, dmem_rdata),
            (is_in, io_read),
        ],
        default=rd_val,
    )

    # Value feeding flag computation (compares use the unwritten sub result).
    flag_value = mux(is_cmp_class, result, sub_res)

    # ------------------------------------------------------------------
    # SREG
    # ------------------------------------------------------------------
    a7, r7 = rd_val[7], flag_value[7]
    add_b7 = add_b[7]
    sub_a7, sub_b7 = sub_a[7], sub_b[7]
    a3, r3 = rd_val[3], flag_value[3]
    add_b3 = add_b[3]
    sub_a3, sub_b3 = sub_a[3], sub_b[3]

    v_add = (a7 & add_b7 & ~r7) | (~a7 & ~add_b7 & r7)
    v_sub = (sub_a7 & ~sub_b7 & ~r7) | (~sub_a7 & sub_b7 & r7)
    h_add = (a3 & add_b3) | (add_b3 & ~r3) | (a3 & ~r3)
    h_sub = (~sub_a3 & sub_b3) | (sub_b3 & r3) | (r3 & ~sub_a3)

    z0 = flag_value.is_zero()
    n0 = r7

    sub_flags = is_sub_res_class | is_cmp_class
    c_en = is_add | is_adc | is_sub | is_subi | is_sbc | is_sbci | is_cp | \
        is_cpc | is_cpi | is_neg | is_shift_class | is_com
    nzvs_en = is_add_class | sub_flags | is_logic_class | is_shift_class | is_com
    h_en = is_add | is_adc | (sub_flags & ~is_dec)
    z_keep = is_cpc | is_sbc | is_sbci

    shift_c = rd_val[0]
    c_val = parallel_case(
        [
            (is_add | is_adc, add_carry),
            (is_shift_class, shift_c),
            (is_com, const(1, 1)),
        ],
        default=sub_borrow,
    )
    v_val = parallel_case(
        [
            (is_add_class, v_add),
            (sub_flags, v_sub),
            (is_shift_class, n0 ^ c_val),
        ],
        default=const(0, 1),
    )
    h_val = mux(is_add | is_adc, h_sub, h_add)
    z_val = mux(z_keep, z0, z0 & flag_z)

    update = valid
    c_next = mux(update & c_en, sreg[0], c_val)
    z_next = mux(update & nzvs_en, sreg[1], z_val)
    n_next = mux(update & nzvs_en, sreg[2], n0)
    v_next = mux(update & nzvs_en, sreg[3], v_val)
    s_next = mux(update & nzvs_en, sreg[4], n0 ^ v_val)
    h_next = mux(update & h_en, sreg[5], h_val)
    sreg.next = cat(c_next, z_next, n_next, v_next, s_next, h_next, sreg[6], sreg[7])

    # ------------------------------------------------------------------
    # register-file write (result port + X post-increment port)
    # ------------------------------------------------------------------
    writes_result = (
        is_add_class
        | is_sub_res_class
        | is_logic_class
        | is_mov
        | is_ldi
        | is_shift_class
        | is_com
        | is_swap
        | is_ld
        | is_in
    )
    rf_we = valid & writes_result

    x_pointer = cat(rf[26], rf[27])
    x_inc = (x_pointer + 1).trunc(16)
    x_we = valid & is_ldst & ir[0]

    for index, reg in enumerate(rf):
        write_here = rf_we & rd_addr.eq(index)
        value = mux(write_here, reg, result)
        if index == 26:
            value = mux(x_we, value, x_inc[0:8])
        elif index == 27:
            value = mux(x_we, value, x_inc[8:16])
        reg.next = value

    # ------------------------------------------------------------------
    # branches and program counter
    # ------------------------------------------------------------------
    flag_selected = _mux_tree(ir[0:3], [sreg[i] for i in range(8)])
    branch_taken = is_branch & (flag_selected ^ ir[10])
    branch_offset = ir[3:10].sext(PC_BITS)
    rjmp_offset = ir[0:12].sext(12).trunc(PC_BITS)

    # Hardware return-address stack: RCALL pushes the fall-through address
    # (current pc), RET pops. A 2-bit stack pointer wraps silently.
    csp_minus_1 = (csp - 1).trunc(csp.width)
    stack_top = _mux_tree(csp_minus_1, list(call_stack))
    push = valid & is_rcall
    pop = valid & is_ret
    for index, entry in enumerate(call_stack):
        write_entry = push & csp.eq(index)
        entry.next = mux(
            halted_reg, mux(write_entry, entry, pc), entry
        )
    csp.next = parallel_case(
        [(push, (csp + 1).trunc(csp.width)), (pop, csp_minus_1)], default=csp
    )

    taken = valid & (branch_taken | is_rjmp | is_rcall | is_ret)
    target_offset = mux(is_rjmp | is_rcall, branch_offset, rjmp_offset)
    pc_plus_1 = (pc + 1).trunc(PC_BITS)
    pc_relative = (pc + target_offset).trunc(PC_BITS)
    pc_target = mux(is_ret, pc_relative, stack_top)
    pc_next = mux(taken, pc_plus_1, pc_target)
    pc.next = mux(halted_reg, pc_next, pc)

    ir.next = mux(halted_reg, instr_in, ir)
    flush.next = taken
    halted_reg.next = halted_reg | (valid & is_sleep)

    # Timer0: free-running prescaler; TCNT0 advances on prescaler wrap; the
    # overflow flag is sticky until reset.
    tick = prescaler.reduce_and()
    prescaler.next = mux(halted_reg, (prescaler + 1).trunc(prescaler.width), prescaler)
    tcnt_next = (tcnt + 1).trunc(8)
    tcnt.next = mux(halted_reg, mux(tick, tcnt, tcnt_next), tcnt)
    tov.next = tov | (~halted_reg & tick & tcnt.reduce_and())

    # ------------------------------------------------------------------
    # external interfaces
    # ------------------------------------------------------------------
    # Output buses are gated with their strobes (an idle bus drives zero),
    # as on the real part — an ungated bus would make every register fault
    # externally visible in every cycle and defeat intra-cycle masking.
    mem_access = valid & is_ldst
    port_access = valid & is_out
    c.output("pc_out", pc)  # program-memory address bus: always driving
    c.output("dmem_addr", mux(mem_access, Const(0, 16), x_pointer))
    c.output("dmem_wdata", mux(valid & is_st, Const(0, 8), rd_val))
    c.output("dmem_we", valid & is_st)
    c.output("port_addr", mux(port_access, Const(0, 6), cat(ir[0:4], ir[9:11])))
    c.output("port_wdata", mux(port_access, Const(0, 8), rd_val))
    c.output("port_we", port_access)
    c.output("halted", halted_reg | (valid & is_sleep))
    return c


def synthesize_avr() -> Netlist:
    """Synthesize the AVR core onto the standard-cell library."""
    return synthesize(build_avr_core())
