"""A small two-pass AVR assembler for the implemented subset.

Syntax (one instruction per line)::

    ; comment
    loop:               ; label
        ldi r24, 0x10   ; immediates: decimal, 0x.., 0b.., 'c', lo8()/hi8()
        add r24, r25
        brne loop
        .word 0x1234    ; raw data word
        sleep

Labels are case-sensitive; mnemonics and registers are case-insensitive.
Branch/jump targets are labels (or absolute word addresses).
"""

from __future__ import annotations

import re

from repro.cpu.avr import isa


class AvrAssemblyError(ValueError):
    """Raised on any assembly problem, with the offending line."""

    def __init__(self, line_no: int, line: str, message: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no


_LABEL_RE = re.compile(r"^\s*([A-Za-z_.$][\w.$]*):\s*(.*)$")


def _parse_register(token: str, line_no: int, line: str) -> int:
    match = re.fullmatch(r"[rR](\d{1,2})", token.strip())
    if not match or not 0 <= int(match.group(1)) < 32:
        raise AvrAssemblyError(line_no, line, f"bad register {token!r}")
    return int(match.group(1))


def _parse_value(token: str, labels: dict[str, int], line_no: int, line: str) -> int:
    token = token.strip()
    lo8 = re.fullmatch(r"lo8\((.+)\)", token)
    hi8 = re.fullmatch(r"hi8\((.+)\)", token)
    if lo8:
        return _parse_value(lo8.group(1), labels, line_no, line) & 0xFF
    if hi8:
        return (_parse_value(hi8.group(1), labels, line_no, line) >> 8) & 0xFF
    if token in labels:
        return labels[token]
    if re.fullmatch(r"'.'", token):
        return ord(token[1])
    try:
        return int(token, 0)
    except ValueError:
        raise AvrAssemblyError(line_no, line, f"bad value {token!r}") from None


def _split_statement(line: str) -> str:
    return line.split(";", 1)[0].strip()


def _tokenize(statement: str) -> tuple[str, list[str]]:
    parts = statement.split(None, 1)
    mnemonic = parts[0].lower()
    operands = [op.strip() for op in parts[1].split(",")] if len(parts) > 1 else []
    return mnemonic, operands


def _instruction_size(mnemonic: str) -> int:
    return 1  # every implemented instruction is one 16-bit word


def assemble_avr(source: str) -> list[int]:
    """Assemble AVR source into a list of 16-bit program words."""
    lines = source.splitlines()

    # Pass 1: label addresses.
    labels: dict[str, int] = {}
    address = 0
    statements: list[tuple[int, str, int]] = []  # (line_no, statement, address)
    for line_no, raw in enumerate(lines, start=1):
        statement = _split_statement(raw)
        match = _LABEL_RE.match(statement)
        if match:
            label, statement = match.group(1), match.group(2).strip()
            if label in labels:
                raise AvrAssemblyError(line_no, raw, f"duplicate label {label!r}")
            labels[label] = address
        if not statement:
            continue
        mnemonic, _ = _tokenize(statement)
        statements.append((line_no, statement, address))
        address += _instruction_size(mnemonic)

    # Pass 2: encode.
    words: list[int] = []
    for line_no, statement, addr in statements:
        mnemonic, ops = _tokenize(statement)
        words.append(_encode(mnemonic, ops, addr, labels, line_no, statement))
    return words


def _encode(
    mnemonic: str,
    ops: list[str],
    address: int,
    labels: dict[str, int],
    line_no: int,
    line: str,
) -> int:
    def need(count: int) -> None:
        if len(ops) != count:
            raise AvrAssemblyError(
                line_no, line, f"{mnemonic} expects {count} operand(s), got {len(ops)}"
            )

    if mnemonic == ".word":
        need(1)
        return _parse_value(ops[0], labels, line_no, line) & 0xFFFF

    if mnemonic == "nop":
        need(0)
        return isa.OPCODE_NOP
    if mnemonic == "sleep":
        need(0)
        return isa.OPCODE_SLEEP

    if mnemonic in ("lsl", "rol", "tst", "clr"):
        # Standard aliases onto two-operand ops with Rd == Rr.
        need(1)
        rd = _parse_register(ops[0], line_no, line)
        alias = {"lsl": "add", "rol": "adc", "tst": "and", "clr": "eor"}[mnemonic]
        return isa.encode_two_op(alias, rd, rd)

    if mnemonic in isa.TWO_OP:
        need(2)
        rd = _parse_register(ops[0], line_no, line)
        rr = _parse_register(ops[1], line_no, line)
        return isa.encode_two_op(mnemonic, rd, rr)

    if mnemonic in isa.IMM_OP:
        need(2)
        rd = _parse_register(ops[0], line_no, line)
        value = _parse_value(ops[1], labels, line_no, line)
        try:
            return isa.encode_imm_op(mnemonic, rd, value)
        except ValueError as exc:
            raise AvrAssemblyError(line_no, line, str(exc)) from None

    if mnemonic in isa.ONE_OP:
        need(1)
        rd = _parse_register(ops[0], line_no, line)
        return isa.encode_one_op(mnemonic, rd)

    if mnemonic in isa.BRANCHES:
        need(1)
        target = _parse_value(ops[0], labels, line_no, line)
        offset = target - address - 1
        try:
            return isa.encode_branch(mnemonic, offset)
        except ValueError as exc:
            raise AvrAssemblyError(line_no, line, str(exc)) from None

    if mnemonic in ("rjmp", "rcall"):
        need(1)
        target = _parse_value(ops[0], labels, line_no, line)
        encode = isa.encode_rjmp if mnemonic == "rjmp" else isa.encode_rcall
        try:
            return encode(target - address - 1)
        except ValueError as exc:
            raise AvrAssemblyError(line_no, line, str(exc)) from None

    if mnemonic == "ret":
        need(0)
        return isa.OPCODE_RET

    if mnemonic == "in":
        need(2)
        rd = _parse_register(ops[0], line_no, line)
        port = _parse_value(ops[1], labels, line_no, line)
        try:
            return isa.encode_in(rd, port)
        except ValueError as exc:
            raise AvrAssemblyError(line_no, line, str(exc)) from None

    if mnemonic == "ld":
        need(2)
        rd = _parse_register(ops[0], line_no, line)
        mode = ops[1].lower()
        if mode not in ("x", "x+"):
            raise AvrAssemblyError(line_no, line, f"unsupported addressing {ops[1]!r}")
        return isa.encode_ld_st("ld", rd, post_increment=mode == "x+")

    if mnemonic == "st":
        need(2)
        mode = ops[0].lower()
        if mode not in ("x", "x+"):
            raise AvrAssemblyError(line_no, line, f"unsupported addressing {ops[0]!r}")
        rr = _parse_register(ops[1], line_no, line)
        return isa.encode_ld_st("st", rr, post_increment=mode == "x+")

    if mnemonic == "out":
        need(2)
        port = _parse_value(ops[0], labels, line_no, line)
        rr = _parse_register(ops[1], line_no, line)
        try:
            return isa.encode_out(port, rr)
        except ValueError as exc:
            raise AvrAssemblyError(line_no, line, str(exc)) from None

    raise AvrAssemblyError(line_no, line, f"unknown mnemonic {mnemonic!r}")
