"""AVR instruction subset: encodings and field helpers.

The implemented subset covers what the two test programs (``fib()`` and
``conv()``) need — register-register and register-immediate ALU ops, the
SREG-conditional branches, relative jump, X-pointer loads/stores with
post-increment, one-operand ops (shifts etc.), OUT to a port, NOP and SLEEP
(used as the halt instruction).

All encodings follow the real AVR instruction-set manual, so binaries are
bit-compatible for the covered subset.
"""

from __future__ import annotations

#: SREG bit positions.
SREG_C, SREG_Z, SREG_N, SREG_V, SREG_S, SREG_H, SREG_T, SREG_I = range(8)

#: Two-operand register ops: mnemonic -> top-6-bit opcode (bits 15..10).
TWO_OP = {
    "cpc": 0b000001,
    "sbc": 0b000010,
    "add": 0b000011,
    "cp": 0b000101,
    "sub": 0b000110,
    "adc": 0b000111,
    "and": 0b001000,
    "eor": 0b001001,
    "or": 0b001010,
    "mov": 0b001011,
}

#: Immediate ops (Rd in r16..r31): mnemonic -> top-4-bit opcode.
IMM_OP = {
    "cpi": 0b0011,
    "sbci": 0b0100,
    "subi": 0b0101,
    "ori": 0b0110,
    "andi": 0b0111,
    "ldi": 0b1110,
}

#: One-operand ops (1001 010d dddd ffff): mnemonic -> 4-bit function code.
ONE_OP = {
    "com": 0b0000,
    "neg": 0b0001,
    "swap": 0b0010,
    "inc": 0b0011,
    "asr": 0b0101,
    "lsr": 0b0110,
    "ror": 0b0111,
    "dec": 0b1010,
}

#: Branch aliases: mnemonic -> (SREG bit, branch-if-set).
BRANCHES = {
    "brcs": (SREG_C, True),
    "brlo": (SREG_C, True),
    "brcc": (SREG_C, False),
    "brsh": (SREG_C, False),
    "breq": (SREG_Z, True),
    "brne": (SREG_Z, False),
    "brmi": (SREG_N, True),
    "brpl": (SREG_N, False),
    "brvs": (SREG_V, True),
    "brvc": (SREG_V, False),
    "brlt": (SREG_S, True),
    "brge": (SREG_S, False),
}

OPCODE_NOP = 0x0000
OPCODE_SLEEP = 0x9588
OPCODE_RET = 0x9508

#: Depth of the hardware return-address stack (RCALL/RET).
CALL_STACK_DEPTH = 2

#: I/O addresses served by the core itself (timer peripheral + pins).
IO_TCNT0 = 0x32
IO_PIN = 0x36
IO_TIFR = 0x38

#: Timer0 prescaler: TCNT0 increments every 2**TIMER_PRESCALER_BITS cycles.
TIMER_PRESCALER_BITS = 3


def encode_two_op(mnemonic: str, rd: int, rr: int) -> int:
    """``0000 11rd dddd rrrr`` style register-register encoding."""
    op = TWO_OP[mnemonic]
    if not 0 <= rd < 32 or not 0 <= rr < 32:
        raise ValueError(f"{mnemonic}: registers must be r0..r31")
    return (
        (op << 10)
        | ((rr >> 4) << 9)
        | ((rd >> 4) << 8)
        | ((rd & 0xF) << 4)
        | (rr & 0xF)
    )


def encode_imm_op(mnemonic: str, rd: int, value: int) -> int:
    """``xxxx KKKK dddd KKKK`` register-immediate encoding (rd in 16..31)."""
    op = IMM_OP[mnemonic]
    if not 16 <= rd < 32:
        raise ValueError(f"{mnemonic}: Rd must be r16..r31, got r{rd}")
    value &= 0xFF
    return (op << 12) | ((value >> 4) << 8) | ((rd - 16) << 4) | (value & 0xF)


def encode_one_op(mnemonic: str, rd: int) -> int:
    """``1001 010d dddd ffff`` one-operand encoding."""
    func = ONE_OP[mnemonic]
    if not 0 <= rd < 32:
        raise ValueError(f"{mnemonic}: Rd must be r0..r31")
    return 0x9400 | ((rd >> 4) << 8) | ((rd & 0xF) << 4) | func


def encode_branch(mnemonic: str, offset: int) -> int:
    """``1111 0Bkk kkkk ksss`` conditional relative branch (-64..63 words)."""
    bit, if_set = BRANCHES[mnemonic]
    if not -64 <= offset < 64:
        raise ValueError(f"{mnemonic}: branch offset {offset} out of range")
    clear = 0 if if_set else 1
    return 0xF000 | (clear << 10) | ((offset & 0x7F) << 3) | bit


def encode_rjmp(offset: int) -> int:
    """``1100 kkkk kkkk kkkk`` relative jump (-2048..2047 words)."""
    if not -2048 <= offset < 2048:
        raise ValueError(f"rjmp: offset {offset} out of range")
    return 0xC000 | (offset & 0xFFF)


def encode_rcall(offset: int) -> int:
    """``1101 kkkk kkkk kkkk`` relative call (-2048..2047 words)."""
    if not -2048 <= offset < 2048:
        raise ValueError(f"rcall: offset {offset} out of range")
    return 0xD000 | (offset & 0xFFF)


def encode_in(rd: int, address: int) -> int:
    """``1011 0AAd dddd AAAA`` i/o port read."""
    if not 0 <= address < 64:
        raise ValueError(f"in: i/o address {address} out of range")
    if not 0 <= rd < 32:
        raise ValueError("in: register must be r0..r31")
    return (
        0xB000
        | ((address >> 4) << 9)
        | ((rd >> 4) << 8)
        | ((rd & 0xF) << 4)
        | (address & 0xF)
    )


def encode_ld_st(mnemonic: str, reg: int, post_increment: bool) -> int:
    """``1001 00sd dddd 11ei`` X-pointer load/store."""
    if not 0 <= reg < 32:
        raise ValueError(f"{mnemonic}: register must be r0..r31")
    store = 1 if mnemonic == "st" else 0
    low = 0b1101 if post_increment else 0b1100
    return 0x9000 | (store << 9) | ((reg >> 4) << 8) | ((reg & 0xF) << 4) | low


def encode_out(address: int, rr: int) -> int:
    """``1011 1AAr rrrr AAAA`` i/o port write."""
    if not 0 <= address < 64:
        raise ValueError(f"out: i/o address {address} out of range")
    if not 0 <= rr < 32:
        raise ValueError("out: register must be r0..r31")
    return (
        0xB800
        | ((address >> 4) << 9)
        | ((rr >> 4) << 8)
        | ((rr & 0xF) << 4)
        | (address & 0xF)
    )
