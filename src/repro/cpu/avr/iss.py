"""AVR instruction-set simulator (architectural golden model).

Executes the same subset as the RTL core, one instruction per :meth:`step`.
The pipelined netlist core must produce exactly this architectural behaviour
(register file, SREG, PC trajectory, memory and port writes) — the
cross-check tests in ``tests/cpu`` rely on it.
"""

from __future__ import annotations

from repro.cpu.avr import isa
from repro.sim.memory import RAM, ROM


class AvrIss:
    """Architectural interpreter for the implemented AVR subset."""

    def __init__(self, rom: ROM, ram: RAM, pin_in: int = 0) -> None:
        self.rom = rom
        self.ram = ram
        self.regs = [0] * 32
        self.pc = 0
        self.sreg = 0
        self.halted = False
        #: Chronological (address, value) port writes (OUT instructions).
        self.port_log: list[tuple[int, int]] = []
        self.instructions_retired = 0
        #: Hardware return-address stack (RCALL/RET), wrapping.
        self.call_stack = [0] * isa.CALL_STACK_DEPTH
        self.csp = 0
        #: Value presented on the external input port (IN isa.IO_PIN).
        self.pin_in = pin_in & 0xFF
        #: Elapsed clock cycles; instruction 1 executes in cycle 1 (cycle 0
        #: is the initial fetch), taken control transfers cost one bubble.
        self.cycle = 1

    # ------------------------------------------------------------------
    def _flag(self, bit: int) -> int:
        return (self.sreg >> bit) & 1

    def _set_flags(self, **flags: int) -> None:
        for name, value in flags.items():
            bit = {
                "c": isa.SREG_C, "z": isa.SREG_Z, "n": isa.SREG_N,
                "v": isa.SREG_V, "s": isa.SREG_S, "h": isa.SREG_H,
            }[name]
            if value:
                self.sreg |= 1 << bit
            else:
                self.sreg &= ~(1 << bit)

    @property
    def x_pointer(self) -> int:
        """The 16-bit X pointer (r27:r26)."""
        return self.regs[26] | (self.regs[27] << 8)

    @x_pointer.setter
    def x_pointer(self, value: int) -> None:
        self.regs[26] = value & 0xFF
        self.regs[27] = (value >> 8) & 0xFF

    # ------------------------------------------------------------------
    def _alu_add(self, a: int, b: int, carry: int) -> int:
        total = a + b + carry
        result = total & 0xFF
        a7, b7, r7 = a >> 7, b >> 7, result >> 7
        a3, b3, r3 = (a >> 3) & 1, (b >> 3) & 1, (result >> 3) & 1
        v = (a7 & b7 & (1 - r7)) | ((1 - a7) & (1 - b7) & r7)
        n = r7
        self._set_flags(
            c=total >> 8,
            z=int(result == 0),
            n=n,
            v=v,
            s=n ^ v,
            h=(a3 & b3) | (b3 & (1 - r3)) | (a3 & (1 - r3)),
        )
        return result

    def _alu_sub(self, a: int, b: int, borrow: int, keep_z: bool = False) -> int:
        total = a - b - borrow
        result = total & 0xFF
        a7, b7, r7 = a >> 7, b >> 7, result >> 7
        a3, b3, r3 = (a >> 3) & 1, (b >> 3) & 1, (result >> 3) & 1
        v = (a7 & (1 - b7) & (1 - r7)) | ((1 - a7) & b7 & r7)
        n = r7
        z = int(result == 0)
        if keep_z:
            z &= self._flag(isa.SREG_Z)
        self._set_flags(
            c=int(total < 0),
            z=z,
            n=n,
            v=v,
            s=n ^ v,
            h=((1 - a3) & b3) | (b3 & r3) | (r3 & (1 - a3)),
        )
        return result

    def _alu_logic(self, result: int) -> int:
        n = result >> 7
        self._set_flags(z=int(result == 0), n=n, v=0, s=n)
        return result

    # ------------------------------------------------------------------
    @property
    def tcnt0(self) -> int:
        """Timer0 counter value visible in the current cycle."""
        return (self.cycle >> isa.TIMER_PRESCALER_BITS) & 0xFF

    @property
    def tov0(self) -> int:
        """Sticky timer-overflow flag visible in the current cycle."""
        return int((self.cycle >> isa.TIMER_PRESCALER_BITS) >= 256)

    def step(self) -> None:
        """Fetch, decode, and execute one instruction (cycle-accounted)."""
        if self.halted:
            return
        self._taken = False
        self._execute()
        # Taken control transfers flush the fetch stage: one bubble cycle.
        self.cycle += 2 if self._taken else 1

    def _execute(self) -> None:
        word = self.rom.read(self.pc)
        self.pc = (self.pc + 1) % (1 << 11)
        self.instructions_retired += 1

        if word == isa.OPCODE_NOP:
            return
        if word == isa.OPCODE_SLEEP:
            self.halted = True
            return
        if word == isa.OPCODE_RET:
            self.csp = (self.csp - 1) % isa.CALL_STACK_DEPTH
            self.pc = self.call_stack[self.csp]
            self._taken = True
            return

        top6 = word >> 10
        top4 = word >> 12
        d5 = ((word >> 4) & 0xF) | (((word >> 8) & 1) << 4)
        r5 = (word & 0xF) | (((word >> 9) & 1) << 4)

        two_op = {v: k for k, v in isa.TWO_OP.items()}.get(top6)
        if two_op is not None:
            a, b = self.regs[d5], self.regs[r5]
            if two_op == "add":
                self.regs[d5] = self._alu_add(a, b, 0)
            elif two_op == "adc":
                self.regs[d5] = self._alu_add(a, b, self._flag(isa.SREG_C))
            elif two_op == "sub":
                self.regs[d5] = self._alu_sub(a, b, 0)
            elif two_op == "sbc":
                self.regs[d5] = self._alu_sub(a, b, self._flag(isa.SREG_C), keep_z=True)
            elif two_op == "cp":
                self._alu_sub(a, b, 0)
            elif two_op == "cpc":
                self._alu_sub(a, b, self._flag(isa.SREG_C), keep_z=True)
            elif two_op == "and":
                self.regs[d5] = self._alu_logic(a & b)
            elif two_op == "or":
                self.regs[d5] = self._alu_logic(a | b)
            elif two_op == "eor":
                self.regs[d5] = self._alu_logic(a ^ b)
            elif two_op == "mov":
                self.regs[d5] = b
            return

        imm_op = {v: k for k, v in isa.IMM_OP.items()}.get(top4)
        if imm_op is not None:
            rd = 16 + ((word >> 4) & 0xF)
            value = ((word >> 4) & 0xF0) | (word & 0xF)
            a = self.regs[rd]
            if imm_op == "ldi":
                self.regs[rd] = value
            elif imm_op == "subi":
                self.regs[rd] = self._alu_sub(a, value, 0)
            elif imm_op == "sbci":
                self.regs[rd] = self._alu_sub(
                    a, value, self._flag(isa.SREG_C), keep_z=True
                )
            elif imm_op == "cpi":
                self._alu_sub(a, value, 0)
            elif imm_op == "andi":
                self.regs[rd] = self._alu_logic(a & value)
            elif imm_op == "ori":
                self.regs[rd] = self._alu_logic(a | value)
            return

        if (word & 0xFE00) == 0x9400:
            func = word & 0xF
            one_op = {v: k for k, v in isa.ONE_OP.items()}.get(func)
            if one_op is None:
                raise ValueError(f"unimplemented one-op function {func:#x}")
            a = self.regs[d5]
            if one_op == "inc":
                result = (a + 1) & 0xFF
                n = result >> 7
                v = int(result == 0x80)
                self._set_flags(z=int(result == 0), n=n, v=v, s=n ^ v)
            elif one_op == "dec":
                result = (a - 1) & 0xFF
                n = result >> 7
                v = int(result == 0x7F)
                self._set_flags(z=int(result == 0), n=n, v=v, s=n ^ v)
            elif one_op == "com":
                result = (~a) & 0xFF
                n = result >> 7
                self._set_flags(c=1, z=int(result == 0), n=n, v=0, s=n)
            elif one_op == "neg":
                result = self._alu_sub(0, a, 0)
            elif one_op == "swap":
                result = ((a << 4) | (a >> 4)) & 0xFF
            elif one_op in ("lsr", "ror", "asr"):
                carry_in = self._flag(isa.SREG_C)
                c = a & 1
                if one_op == "lsr":
                    result = a >> 1
                elif one_op == "ror":
                    result = (a >> 1) | (carry_in << 7)
                else:
                    result = (a >> 1) | (a & 0x80)
                n = result >> 7
                v = n ^ c
                self._set_flags(c=c, z=int(result == 0), n=n, v=v, s=n ^ v)
            self.regs[d5] = result
            return

        if (word & 0xF800) == 0xF000:
            bit = word & 0x7
            branch_if_clear = (word >> 10) & 1
            offset = (word >> 3) & 0x7F
            if offset >= 64:
                offset -= 128
            if self._flag(bit) != branch_if_clear:
                self.pc = (self.pc + offset) % (1 << 11)
                self._taken = True
            return

        if (word & 0xE000) == 0xC000:  # RJMP / RCALL
            offset = word & 0xFFF
            if offset >= 2048:
                offset -= 4096
            if word & 0x1000:  # RCALL: push the fall-through address
                self.call_stack[self.csp] = self.pc
                self.csp = (self.csp + 1) % isa.CALL_STACK_DEPTH
            self.pc = (self.pc + offset) % (1 << 11)
            self._taken = True
            return

        if (word & 0xFC00) == 0x9000 and (word & 0xE) == 0xC:
            store = (word >> 9) & 1
            post_increment = word & 1
            address = self.x_pointer
            if store:
                self.ram.write(address % len(self.ram), self.regs[d5], cycle=-1)
            else:
                self.regs[d5] = self.ram.read(address % len(self.ram))
            if post_increment:
                self.x_pointer = (address + 1) & 0xFFFF
            return

        if (word & 0xF800) == 0xB800:
            port = (word & 0xF) | (((word >> 9) & 0x3) << 4)
            self.port_log.append((port, self.regs[d5]))
            return

        if (word & 0xF800) == 0xB000:  # IN
            port = (word & 0xF) | (((word >> 9) & 0x3) << 4)
            if port == isa.IO_TCNT0:
                self.regs[d5] = self.tcnt0
            elif port == isa.IO_TIFR:
                self.regs[d5] = self.tov0
            elif port == isa.IO_PIN:
                self.regs[d5] = self.pin_in
            else:
                self.regs[d5] = 0
            return

        raise ValueError(
            f"unimplemented instruction {word:#06x} at pc={self.pc - 1:#x}"
        )

    def run(self, max_instructions: int = 1_000_000) -> int:
        """Run until SLEEP or the instruction budget; returns retired count."""
        for _ in range(max_instructions):
            if self.halted:
                break
            self.step()
        return self.instructions_retired
