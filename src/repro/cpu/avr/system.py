"""AVR system testbench: external program ROM, data RAM, and i/o port.

The paper's fault model targets CPU flip-flops only; program and data
memory live outside the netlist, in this testbench. Program memory is
addressed by the ``pc`` register, data memory by the X pointer registers
(r27:r26) — both read directly from flip-flop state, exactly as an FPGA
HAFI platform wires block RAMs to the emulated core.
"""

from __future__ import annotations

from repro.cpu.avr.core import PC_BITS
from repro.sim.memory import RAM, ROM
from repro.sim.simulator import StateView
from repro.sim.testbench import Testbench


class AvrSystem(Testbench):
    """Drives the synthesized AVR core with a program and a data RAM."""

    def __init__(
        self,
        program: list[int],
        ram_size: int = 256,
        ram_image: dict[int, int] | None = None,
        halt_on_sleep: bool = True,
        pin_in: int = 0,
    ) -> None:
        self.rom = ROM(program, width=16)
        self.ram = RAM(ram_size, width=8)
        for address, value in (ram_image or {}).items():
            self.ram.words[address] = value & 0xFF
        self.halt_on_sleep = halt_on_sleep
        #: Value presented on the external input port (IN isa.IO_PIN).
        self.pin_in = pin_in & 0xFF
        #: Chronological (cycle, port, value) log of OUT writes.
        self.port_log: list[tuple[int, int, int]] = []

    def drive(self, cycle: int, state: StateView) -> dict[str, int]:
        """Serve instruction/data reads from the PC and X registers."""
        pc = state.read_reg("pc") & ((1 << PC_BITS) - 1)
        x_pointer = state.read_reg("rf_r26") | (state.read_reg("rf_r27") << 8)
        return {
            "instr_in": self.rom.read(pc),
            "dmem_rdata": self.ram.read(x_pointer % len(self.ram)),
            "pin_in": self.pin_in,
        }

    def observe(self, cycle: int, outputs: dict[str, int]) -> bool:
        """Commit memory/port writes; halt on SLEEP if configured."""
        if outputs.get("dmem_we"):
            address = outputs["dmem_addr"] % len(self.ram)
            self.ram.write(address, outputs["dmem_wdata"], cycle=cycle)
        if outputs.get("port_we"):
            self.port_log.append((cycle, outputs["port_addr"], outputs["port_wdata"]))
        return bool(outputs.get("halted")) and self.halt_on_sleep
