"""AVR-compatible 8-bit microcontroller: ISA subset, assembler, 2-stage
pipelined core (RTL), instruction-set simulator, and system testbench."""

from repro.cpu.avr.asm import AvrAssemblyError, assemble_avr
from repro.cpu.avr.core import build_avr_core, synthesize_avr
from repro.cpu.avr.iss import AvrIss
from repro.cpu.avr.system import AvrSystem

__all__ = [
    "AvrAssemblyError",
    "AvrIss",
    "AvrSystem",
    "assemble_avr",
    "build_avr_core",
    "synthesize_avr",
]
