"""Register def-use access model for the AVR core (inter-cycle pruning).

``registers_read`` over-approximates, per instruction word, which
general-purpose registers the execute stage can observe — everything the
decode gating lets through to an endpoint. Used by
:mod:`repro.core.intercycle` to prune register-file faults that die
overwritten-unread, the ISA-level complement the paper points to in
Sec. 6.3.
"""

from __future__ import annotations

from repro.core.intercycle import RegisterAccessModel
from repro.cpu.avr import isa
from repro.netlist.netlist import Netlist
from repro.synth.lower import bit_name


def registers_read(word: int) -> set[int]:
    """Registers an instruction word may read (over-approximation)."""
    word &= 0xFFFF
    if word in (isa.OPCODE_NOP, isa.OPCODE_SLEEP, isa.OPCODE_RET):
        return set()

    d5 = ((word >> 4) & 0xF) | (((word >> 8) & 1) << 4)
    r5 = (word & 0xF) | (((word >> 9) & 1) << 4)
    top6 = word >> 10
    top4 = word >> 12

    two_op = {v: k for k, v in isa.TWO_OP.items()}.get(top6)
    if two_op is not None:
        if two_op == "mov":
            return {r5}
        return {d5, r5}

    imm_op = {v: k for k, v in isa.IMM_OP.items()}.get(top4)
    if imm_op is not None:
        if imm_op == "ldi":
            return set()
        return {16 + ((word >> 4) & 0xF)}

    if (word & 0xFE00) == 0x9400 and (word & 0xF) in isa.ONE_OP.values():
        return {d5}

    if (word & 0xFC00) == 0x9000 and (word & 0xE) == 0xC:  # LD/ST via X
        store = (word >> 9) & 1
        regs = {26, 27}  # the X pointer is always read (address / increment)
        if store:
            regs.add(d5)
        return regs

    if (word & 0xF800) == 0xB800:  # OUT
        return {d5}

    # IN, branches, RJMP, RCALL and anything unimplemented read no GPRs.
    return set()


def registers_written(word: int) -> set[int]:
    """Registers an instruction word must fully overwrite.

    The dual of :func:`registers_read`: where reads over-approximate (a
    spurious read only weakens a deadness claim), writes *under*-approximate
    — every register returned is unconditionally written by the execute
    stage (``rf_we``/``x_we`` decode), so the static dataflow layer may
    treat it as a kill.
    """
    word &= 0xFFFF
    if word in (isa.OPCODE_NOP, isa.OPCODE_SLEEP, isa.OPCODE_RET):
        return set()

    d5 = ((word >> 4) & 0xF) | (((word >> 8) & 1) << 4)
    top6 = word >> 10
    top4 = word >> 12

    two_op = {v: k for k, v in isa.TWO_OP.items()}.get(top6)
    if two_op is not None:
        if two_op in ("cp", "cpc"):
            return set()  # compares set SREG only
        return {d5}

    imm_op = {v: k for k, v in isa.IMM_OP.items()}.get(top4)
    if imm_op is not None:
        if imm_op == "cpi":
            return set()
        return {16 + ((word >> 4) & 0xF)}

    if (word & 0xFE00) == 0x9400 and (word & 0xF) in isa.ONE_OP.values():
        return {d5}

    if (word & 0xFC00) == 0x9000 and (word & 0xE) == 0xC:  # LD/ST via X
        store = (word >> 9) & 1
        regs = set() if store else {d5}
        if word & 1:  # post-increment updates the X pointer
            regs |= {26, 27}
        return regs

    if (word & 0xF800) == 0xB000:  # IN
        return {d5}

    # OUT, branches, RJMP, RCALL and anything unimplemented write no GPRs.
    return set()


def avr_access_model(netlist: Netlist) -> RegisterAccessModel:
    """Def-use model over the synthesized AVR netlist's trace wires."""
    registers = {
        index: [bit_name(f"rf_r{index}", bit, 8) for bit in range(8)]
        for index in range(32)
    }
    instruction_wires = [bit_name("ir", bit, 16) for bit in range(16)]
    missing = [w for w in instruction_wires if w not in netlist.wires()]
    if missing:
        raise ValueError(f"netlist lacks expected IR wires: {missing[:3]}")
    return RegisterAccessModel(
        registers=registers,
        instruction_wires=instruction_wires,
        reads_of=registers_read,
        valid_wire="flush",
        valid_active_low=True,
    )
