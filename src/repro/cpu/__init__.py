"""The two evaluation CPUs: an AVR-compatible 2-stage RISC core and an
MSP430-compatible multi-cycle core (paper Sec. 5)."""
