"""Cycle-accurate netlist simulation (compiled to straight-line Python)."""

from repro.sim.compiler import CompiledNetlist, compile_netlist
from repro.sim.memory import RAM, ROM
from repro.sim.simulator import SimulationResult, Simulator, StateView
from repro.sim.spec import SimulatorSpec
from repro.sim.testbench import ConstantTestbench, TableTestbench, Testbench

__all__ = [
    "RAM",
    "ROM",
    "CompiledNetlist",
    "ConstantTestbench",
    "SimulationResult",
    "Simulator",
    "SimulatorSpec",
    "StateView",
    "TableTestbench",
    "Testbench",
    "compile_netlist",
]
