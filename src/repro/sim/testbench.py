"""Testbench protocol for driving netlist simulations.

A testbench supplies word-level input values each cycle (it may inspect the
current register state, e.g. to model memories addressed by a PC register)
and observes word-level outputs at the end of each cycle (e.g. to commit
memory writes or detect a halt condition).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


class Testbench:
    """Base testbench: drives all inputs to zero, never halts."""

    def drive(self, cycle: int, state: "StateReader") -> dict[str, int]:
        """Word-level input values for this cycle (missing inputs become 0)."""
        return {}

    def observe(self, cycle: int, outputs: Mapping[str, int]) -> bool:
        """Called with word-level outputs after the cycle; True halts the run."""
        return False


class StateReader:
    """Read-only view of register state offered to testbenches (protocol)."""

    def read_reg(self, name: str) -> int:
        """Word value of a named register."""
        raise NotImplementedError

    def read_ff(self, name: str) -> int:
        """Bit value of a named flip-flop."""
        raise NotImplementedError


class ConstantTestbench(Testbench):
    """Holds every input at a fixed word value."""

    def __init__(self, values: Mapping[str, int] | None = None) -> None:
        self.values = dict(values or {})

    def drive(self, cycle: int, state: StateReader) -> dict[str, int]:
        """Constant input words every cycle."""
        return dict(self.values)


class TableTestbench(Testbench):
    """Plays back a per-cycle table of input words (repeats the last row)."""

    def __init__(self, rows: Sequence[Mapping[str, int]]) -> None:
        if not rows:
            raise ValueError("TableTestbench needs at least one row")
        self.rows = [dict(row) for row in rows]

    def drive(self, cycle: int, state: StateReader) -> dict[str, int]:
        """Row for this cycle (last row repeats)."""
        index = min(cycle, len(self.rows) - 1)
        return dict(self.rows[index])
