"""Simple word-addressed memory models for CPU testbenches.

The paper's system model puts program and data memory *outside* the netlist
(faults target CPU flip-flops); these classes model that external memory in
the testbench.
"""

from __future__ import annotations

from collections.abc import Iterable


class ROM:
    """Read-only word memory; out-of-range reads return 0 (open bus)."""

    def __init__(self, words: Iterable[int], width: int) -> None:
        self.width = width
        self._mask = (1 << width) - 1
        self.words = [w & self._mask for w in words]

    def read(self, address: int) -> int:
        """Word at ``address`` (0 beyond the end — open bus)."""
        if 0 <= address < len(self.words):
            return self.words[address]
        return 0

    def __len__(self) -> int:
        return len(self.words)


class RAM:
    """Word-addressed RAM with a write log (for result checking)."""

    def __init__(self, size: int, width: int, fill: int = 0) -> None:
        self.width = width
        self._mask = (1 << width) - 1
        self.words = [fill & self._mask] * size
        #: Chronological (cycle, address, value) log of committed writes.
        self.write_log: list[tuple[int, int, int]] = []

    def read(self, address: int) -> int:
        """Word at ``address`` (0 beyond the end — open bus)."""
        if 0 <= address < len(self.words):
            return self.words[address]
        return 0

    def write(self, address: int, value: int, cycle: int = -1) -> None:
        """Commit a write (ignored out of range) and log it."""
        if 0 <= address < len(self.words):
            self.words[address] = value & self._mask
            self.write_log.append((cycle, address, value & self._mask))

    def load(self, address: int, values: Iterable[int]) -> None:
        """Bulk-initialize memory starting at ``address`` (not logged)."""
        for offset, value in enumerate(values):
            self.words[address + offset] = value & self._mask

    def __len__(self) -> int:
        return len(self.words)
