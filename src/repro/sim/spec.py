"""Serializable simulator specs for cross-process campaign workers.

A :class:`SimulatorSpec` carries everything a *different process* needs to
rebuild a compiled simulator: the netlist's lossless JSON form plus the
cell-library name. The campaign runner ships specs to spawned workers
(pickled through ``multiprocessing``), where :meth:`SimulatorSpec.build`
compiles the netlist exactly once per process — a worker that executes
thousands of injections pays the compile cost once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.json_io import netlist_from_json, netlist_to_json
from repro.netlist.netlist import Netlist
from repro.obs import counter
from repro.sim.simulator import Simulator

#: Per-process memo of built simulators, keyed by the spec's content hash.
_BUILT: dict[str, Simulator] = {}


def _library_by_name(name: str):
    from repro.cells import nangate15_library

    library = nangate15_library()
    if library.name != name:
        raise ValueError(
            f"netlist requires cell library {name!r}; only {library.name!r} "
            "is available in this process"
        )
    return library


@dataclass(frozen=True)
class SimulatorSpec:
    """A picklable recipe for building a :class:`Simulator` anywhere."""

    netlist_json: str
    library: str

    @classmethod
    def from_netlist(cls, netlist: Netlist) -> SimulatorSpec:
        """Capture a netlist into a spec (loses the compiled form only)."""
        return cls(
            netlist_json=netlist_to_json(netlist), library=netlist.library.name
        )

    @classmethod
    def from_simulator(cls, simulator: Simulator) -> SimulatorSpec:
        """Capture the netlist behind an existing simulator."""
        return cls.from_netlist(simulator.netlist)

    @property
    def content_hash(self) -> str:
        """Hash keying the per-process build memo (and journal headers)."""
        import hashlib

        return hashlib.sha256(self.netlist_json.encode()).hexdigest()[:16]

    def build(self) -> Simulator:
        """Compile (once per process) and return the simulator."""
        key = self.content_hash
        simulator = _BUILT.get(key)
        if simulator is None:
            counter("sim.spec.builds").inc()
            netlist = netlist_from_json(
                self.netlist_json, _library_by_name(self.library)
            )
            simulator = Simulator(netlist)
            _BUILT[key] = simulator
        else:
            counter("sim.spec.build_cache_hits").inc()
        return simulator
