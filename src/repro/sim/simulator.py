"""The cycle-accurate simulator driving a compiled netlist.

The per-cycle contract (matching the paper's synchronous-circuit model):

1. the testbench computes this cycle's primary-input words from the current
   register state (external memories are addressed by registers);
2. optional SEU injection flips flip-flop Q bits *before* evaluation — the
   flipped value is what the combinational logic sees this cycle;
3. the combinational logic is evaluated once; all wire values are recorded;
4. the testbench observes the output words (memory writes commit, halt is
   detected);
5. the D values become the next state.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.netlist.netlist import Netlist
from repro.obs import counter, span
from repro.sim.compiler import CompiledNetlist
from repro.sim.testbench import Testbench
from repro.synth.lower import bit_name
from repro.trace.trace import Trace


class StateView:
    """Read-only register/FF view handed to testbenches."""

    def __init__(
        self,
        state: list[int],
        dff_index: dict[str, int],
        reg_widths: Mapping[str, int],
    ) -> None:
        self._state = state
        self._dff_index = dff_index
        self._reg_widths = reg_widths

    def read_ff(self, name: str) -> int:
        """Current value of one flip-flop by DFF name."""
        return self._state[self._dff_index[name]]

    def read_reg(self, name: str) -> int:
        """Assemble a word-level register value from its DFF bits."""
        width = self._reg_widths.get(name)
        if width is None:
            raise KeyError(f"unknown register {name!r}")
        value = 0
        for bit in range(width):
            dff_name = bit_name(name, bit, width)
            index = self._dff_index.get(dff_name)
            if index is not None:  # bits optimized away read as 0
                value |= self._state[index] << bit
        return value


class RecordingStateView(StateView):
    """StateView that records which DFFs the testbench reads this cycle.

    ``read_reg`` records every *present* bit DFF of the word (bits optimized
    away read as constant 0 and cannot carry a fault, so they are not
    recorded). The recorded name sets feed the def-use analysis: a cycle in
    which the testbench reads a flip-flop is a *use* of that bit even when
    no netlist endpoint observes it.
    """

    def __init__(
        self,
        state: list[int],
        dff_index: dict[str, int],
        reg_widths: Mapping[str, int],
        sink: set[str],
    ) -> None:
        super().__init__(state, dff_index, reg_widths)
        self._sink = sink

    def read_ff(self, name: str) -> int:
        value = self._state[self._dff_index[name]]
        self._sink.add(name)
        return value

    def read_reg(self, name: str) -> int:
        width = self._reg_widths.get(name)
        if width is None:
            raise KeyError(f"unknown register {name!r}")
        value = 0
        for bit in range(width):
            dff_name = bit_name(name, bit, width)
            index = self._dff_index.get(dff_name)
            if index is not None:
                self._sink.add(dff_name)
                value |= self._state[index] << bit
        return value


class SimulationResult:
    """Outcome of a simulation run."""

    def __init__(
        self,
        trace: Trace | None,
        cycles: int,
        halted: bool,
        final_state: list[int],
        outputs_last: dict[str, int],
        reads: list[frozenset[str]] | None = None,
    ) -> None:
        self.trace = trace
        self.cycles = cycles
        self.halted = halted
        self.final_state = final_state
        self.outputs_last = outputs_last
        #: Per-cycle sets of DFF names the testbench read (``record_reads``).
        self.reads = reads

    def __repr__(self) -> str:
        status = "halted" if self.halted else "ran"
        return f"SimulationResult({status} after {self.cycles} cycles)"


class Simulator:
    """Runs testbench-driven (optionally fault-injected) simulations."""

    def __init__(
        self, netlist: Netlist, compiled: CompiledNetlist | None = None
    ) -> None:
        self.netlist = netlist
        self.compiled = compiled or CompiledNetlist(netlist)
        self.dff_index = {name: i for i, name in enumerate(self.compiled.dff_names)}
        self.input_widths: dict[str, int] = dict(
            netlist.attributes.get("input_widths")  # type: ignore[arg-type]
            or {wire: 1 for wire in netlist.inputs}
        )
        self.output_widths: dict[str, int] = dict(
            netlist.attributes.get("output_widths")  # type: ignore[arg-type]
            or {wire: 1 for wire in netlist.outputs}
        )
        self.reg_widths: dict[str, int] = dict(
            netlist.attributes.get("reg_widths") or {}  # type: ignore[arg-type]
        )
        # Precompute word → input-bit-list expansion order.
        self._input_plan: list[tuple[str, int]] = []  # (word name, bit) per wire
        input_positions = {wire: i for i, wire in enumerate(self.compiled.input_wires)}
        self._input_order: list[tuple[int, str, int]] = []
        for word, width in self.input_widths.items():
            for bit in range(width):
                wire = bit_name(word, bit, width)
                position = input_positions.get(wire)
                if position is None:
                    raise ValueError(f"input wire {wire} missing from netlist")
                self._input_order.append((position, word, bit))
        self._output_plan: list[tuple[str, int]] = []
        for word, width in self.output_widths.items():
            for bit in range(width):
                self._output_plan.append((word, bit))

    # ------------------------------------------------------------------
    def pack_inputs(self, words: Mapping[str, int]) -> list[int]:
        """Expand word-level input values to the netlist's input-bit list."""
        inputs = [0] * len(self.compiled.input_wires)
        for position, word, bit in self._input_order:
            inputs[position] = (words.get(word, 0) >> bit) & 1
        return inputs

    def unpack_outputs(self, outputs: tuple[int, ...]) -> dict[str, int]:
        """Assemble word-level output values from the output-bit tuple."""
        words: dict[str, int] = {}
        for (word, bit), value in zip(self._output_plan, outputs):
            words[word] = words.get(word, 0) | (value << bit)
        return words

    # ------------------------------------------------------------------
    def run(
        self,
        testbench: Testbench | None = None,
        max_cycles: int = 10000,
        record_trace: bool = True,
        flips: Mapping[int, list[str]] | None = None,
        record_reads: bool = False,
    ) -> SimulationResult:
        """Simulate up to ``max_cycles`` (or until the testbench halts).

        ``flips`` maps cycle → list of DFF names whose Q value is inverted
        at the start of that cycle (SEU injection). With ``record_reads``
        the result carries per-cycle sets of DFF names the testbench read.
        """
        testbench = testbench or Testbench()
        step = self.compiled.step
        state = self.compiled.initial_state()
        rows: list[tuple[int, ...]] = []
        reads: list[frozenset[str]] | None = [] if record_reads else None
        halted = False
        out_words: dict[str, int] = {}
        cycle = 0
        # Instrumentation stays *outside* the per-cycle loop: one span and a
        # few counter increments per run (see benchmarks/test_bench_obs_overhead).
        with span("sim/run", netlist=self.netlist.name, injected=bool(flips)):
            for cycle in range(max_cycles):
                if flips and cycle in flips:
                    for dff_name in flips[cycle]:
                        index = self.dff_index[dff_name]
                        state[index] ^= 1
                if reads is None:
                    view: StateView = StateView(
                        state, self.dff_index, self.reg_widths
                    )
                else:
                    sink: set[str] = set()
                    view = RecordingStateView(
                        state, self.dff_index, self.reg_widths, sink
                    )
                in_words = testbench.drive(cycle, view)
                if reads is not None:
                    reads.append(frozenset(sink))
                inputs = self.pack_inputs(in_words)
                state, outputs, row = step(state, inputs)
                if record_trace:
                    rows.append(row)
                out_words = self.unpack_outputs(outputs)
                if testbench.observe(cycle, out_words):
                    halted = True
                    cycle += 1
                    break
            else:
                cycle = max_cycles
        counter("sim.runs").inc()
        counter("sim.cycles.simulated").inc(cycle)
        if flips:
            counter("sim.runs.injected").inc()

        trace = None
        if record_trace:
            matrix = np.array(rows, dtype=np.uint8) if rows else np.zeros(
                (0, len(self.compiled.trace_wires)), dtype=np.uint8
            )
            trace = Trace(self.compiled.trace_wires, matrix)
        return SimulationResult(trace, cycle, halted, state, out_words, reads=reads)
