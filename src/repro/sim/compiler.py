"""Netlist → straight-line Python compilation.

Simulating a few thousand gates for ~10⁴ cycles in interpreted Python is
only tractable if the per-gate dispatch disappears. We therefore compile the
levelized combinational logic into one generated Python function of local
integer operations (the same trick netlist simulators play with code
generation), which evaluates a full cycle in a single call and returns the
complete wire-value row for trace recording.
"""

from __future__ import annotations

from repro.netlist.netlist import CONST0, CONST1, Gate, Netlist
from repro.netlist.validate import validate_netlist
from repro.obs import counter, span

#: Per-cell Python expression templates (pin name → local variable).
_TEMPLATES = {
    "INV": "1 ^ {A}",
    "BUF": "{A}",
    "AND2": "{A} & {B}",
    "AND3": "{A} & {B} & {C}",
    "AND4": "{A} & {B} & {C} & {D}",
    "NAND2": "1 ^ ({A} & {B})",
    "NAND3": "1 ^ ({A} & {B} & {C})",
    "NAND4": "1 ^ ({A} & {B} & {C} & {D})",
    "OR2": "{A} | {B}",
    "OR3": "{A} | {B} | {C}",
    "OR4": "{A} | {B} | {C} | {D}",
    "NOR2": "1 ^ ({A} | {B})",
    "NOR3": "1 ^ ({A} | {B} | {C})",
    "NOR4": "1 ^ ({A} | {B} | {C} | {D})",
    "XOR2": "{A} ^ {B}",
    "XNOR2": "1 ^ {A} ^ {B}",
    "MUX2": "({B} if {S} else {A})",
    "AOI21": "1 ^ (({A1} & {A2}) | {B})",
    "AOI22": "1 ^ (({A1} & {A2}) | ({B1} & {B2}))",
    "OAI21": "1 ^ (({A1} | {A2}) & {B})",
    "OAI22": "1 ^ (({A1} | {A2}) & ({B1} | {B2}))",
    "XOR3": "{A} ^ {B} ^ {C}",
    "MAJ3": "({A} & {B}) | ({A} & {C}) | ({B} & {C})",
}


class CompiledNetlist:
    """A netlist compiled to an executable single-cycle step function."""

    def __init__(self, netlist: Netlist) -> None:
        with span("sim/compile", netlist=netlist.name):
            validate_netlist(netlist)
            self.netlist = netlist
            self.input_wires: list[str] = list(netlist.inputs)
            self.dffs = list(netlist.dffs.values())
            self.dff_names: list[str] = [dff.name for dff in self.dffs]
            self.output_wires: list[str] = list(netlist.outputs)

            # Trace column order: constants, inputs, FF Q wires, gate outputs.
            topo = netlist.topological_gates()
            self.trace_wires: list[str] = [CONST0, CONST1]
            self.trace_wires.extend(self.input_wires)
            self.trace_wires.extend(dff.q for dff in self.dffs)
            seen = set(self.trace_wires)
            for gate in topo:
                if gate.output not in seen:
                    self.trace_wires.append(gate.output)
                    seen.add(gate.output)

            self._var_of: dict[str, str] = {CONST0: "0", CONST1: "1"}
            self.step = self._compile(topo)
        counter("sim.compile.netlists").inc()
        counter("sim.compile.gates").inc(len(topo))

    # ------------------------------------------------------------------
    def _var(self, wire: str) -> str:
        var = self._var_of.get(wire)
        if var is None:
            var = f"v{len(self._var_of)}"
            self._var_of[wire] = var
        return var

    def _gate_expression(self, gate: Gate) -> str:
        template = _TEMPLATES.get(gate.cell)
        env = {pin: self._var(wire) for pin, wire in gate.inputs.items()}
        if template is not None:
            return template.format(**env)
        # Fallback for cells without a hand-written template: tabulated SOP.
        cell = self.netlist.library[gate.cell]
        assert cell.function is not None
        expression = cell.function.python_expression()
        for pin in sorted(env, key=len, reverse=True):
            expression = expression.replace(pin, env[pin])
        return expression

    def _compile(self, topo: list[Gate]):
        lines = ["def step(state, inputs):"]
        for index, wire in enumerate(self.input_wires):
            lines.append(f"    {self._var(wire)} = inputs[{index}]")
        for index, dff in enumerate(self.dffs):
            lines.append(f"    {self._var(dff.q)} = state[{index}]")
        for gate in topo:
            expression = self._gate_expression(gate)
            lines.append(f"    {self._var(gate.output)} = {expression}")
        next_state = ", ".join(self._var(dff.d) for dff in self.dffs)
        outputs = ", ".join(self._var(wire) for wire in self.output_wires)
        outputs_tuple = f"({outputs},)" if outputs else "()"
        row = ", ".join(self._var(wire) for wire in self.trace_wires)
        lines.append(f"    return [{next_state}], {outputs_tuple}, ({row},)")
        source = "\n".join(lines)
        namespace: dict[str, object] = {}
        exec(compile(source, f"<compiled {self.netlist.name}>", "exec"), namespace)
        return namespace["step"]

    # ------------------------------------------------------------------
    def initial_state(self) -> list[int]:
        """Reset values of all flip-flops, in step() order."""
        return [dff.init for dff in self.dffs]

    @property
    def num_state_bits(self) -> int:
        """Number of flip-flops."""
        return len(self.dffs)


def compile_netlist(netlist: Netlist) -> CompiledNetlist:
    """Compile a netlist once; reuse the result for many runs."""
    return CompiledNetlist(netlist)
