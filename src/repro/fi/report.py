"""Self-contained HTML campaign reports (``python -m repro.fi report``).

Renders one journal — optionally enriched with the run's cross-process
telemetry directory (:mod:`repro.obs.remote`) — into a single HTML file
with no external assets or scripts:

- headline facts (workload, progress, completeness, outcome tally);
- an outcome-breakdown bar chart (status colors *plus* text labels and
  counts — never color alone);
- per-worker utilization: injections, busy seconds, and share of the
  recorded work per worker pid (from the journal's ``worker``/``seconds``
  record fields);
- a timeline SVG, one lane per process, with every injection span placed
  on the merged wall-clock timeline (telemetry runs only);
- the slowest injections, as a table.

Everything is generated from the standard library; the file opens in any
browser offline.
"""

from __future__ import annotations

import html
from pathlib import Path

from repro.fi.journal import JournalState
from repro.obs.remote import MergedTelemetry

#: Status palette (dataviz): outcome -> hex. Outcomes are *states*, so they
#: wear the reserved status colors; labels always accompany the color.
OUTCOME_COLORS = {
    "benign": "#0ca30c",  # good
    "sdc": "#ec835a",  # serious
    "timeout": "#fab219",  # warning
    "error": "#d03b3b",  # critical
}
NEUTRAL_COLOR = "#6b7280"
_NEUTRAL = NEUTRAL_COLOR

#: Shared stylesheet for every self-contained HTML artifact (this report
#: and the warehouse heatmaps of :mod:`repro.store.heatmap`).
BASE_CSS = """
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 60rem;
       color: #1f2430; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin-top: .5rem; }
th, td { text-align: left; padding: .25rem .9rem .25rem 0; font-size: .9rem; }
th { color: #5b6270; font-weight: 600; border-bottom: 1px solid #d8dbe2; }
td.num, th.num { text-align: right; }
.meta td:first-child { color: #5b6270; }
.bar { height: 12px; border-radius: 4px; display: inline-block;
       vertical-align: middle; }
.swatch { width: 10px; height: 10px; border-radius: 2px;
          display: inline-block; margin-right: .4rem; }
.note { color: #5b6270; font-size: .85rem; }
svg { margin-top: .5rem; }
"""
_CSS = BASE_CSS


def escape(value: object) -> str:
    """HTML-escape any value — every interpolated string goes through here."""
    return html.escape(str(value))


_esc = escape


def _outcome_rows(state: JournalState) -> list[tuple[str, int]]:
    tally: dict[str, int] = {}
    for record in state.records.values():
        tally[record.outcome.value] = tally.get(record.outcome.value, 0) + 1
    order = list(OUTCOME_COLORS)
    return sorted(
        tally.items(),
        key=lambda kv: (order.index(kv[0]) if kv[0] in order else len(order)),
    )


def _outcome_chart(state: JournalState) -> list[str]:
    rows = _outcome_rows(state)
    total = sum(count for _, count in rows) or 1
    peak = max((count for _, count in rows), default=1)
    out = ["<h2>Outcomes</h2>", "<table>"]
    out.append("<tr><th>outcome</th><th class=num>count</th>"
               "<th class=num>share</th><th></th></tr>")
    for outcome, count in rows:
        color = OUTCOME_COLORS.get(outcome, _NEUTRAL)
        width = max(2, round(360 * count / peak))
        out.append(
            f"<tr><td><span class=swatch style='background:{color}'></span>"
            f"{_esc(outcome)}</td>"
            f"<td class=num>{count}</td>"
            f"<td class=num>{100 * count / total:.1f}%</td>"
            f"<td><span class=bar style='width:{width}px;"
            f"background:{color}'></span></td></tr>"
        )
    out.append("</table>")
    return out


def _worker_rows(state: JournalState) -> list[tuple[int, int, float]]:
    """``(pid, injections, busy_seconds)`` per recorded worker pid."""
    stats: dict[int, tuple[int, float]] = {}
    for index in state.records:
        detail = state.details.get(index, {})
        worker = detail.get("worker")
        if worker is None:
            continue
        count, busy = stats.get(worker, (0, 0.0))
        stats[worker] = (count + 1, busy + float(detail.get("seconds") or 0.0))
    return [(pid, c, b) for pid, (c, b) in sorted(stats.items())]


def _utilization_table(state: JournalState) -> list[str]:
    rows = _worker_rows(state)
    if not rows:
        return []
    total_inj = sum(count for _, count, _ in rows) or 1
    total_busy = sum(busy for _, _, busy in rows)
    out = ["<h2>Per-worker utilization</h2>", "<table>"]
    out.append(
        "<tr><th>worker pid</th><th class=num>injections</th>"
        "<th class=num>busy</th><th class=num>share of work</th></tr>"
    )
    for pid, count, busy in rows:
        share = busy / total_busy if total_busy else count / total_inj
        out.append(
            f"<tr><td>{pid}</td><td class=num>{count}</td>"
            f"<td class=num>{busy:.2f}s</td>"
            f"<td class=num>{100 * share:.1f}%</td></tr>"
        )
    out.append("</table>")
    return out


def _lane_colors(
    state: JournalState, telemetry: MergedTelemetry, worker: int
) -> dict[int, str]:
    """Color per timeline-event position, by pairing inject-start markers.

    Each worker's ``inject-start`` records (which carry the point index)
    precede its ``campaign/inject`` spans in the same order, so zipping the
    two time-sorted sequences recovers each span's outcome.
    """
    starts = sorted(
        (
            (stamp, record)
            for w, stamp, record in telemetry.custom
            if w == worker and record.get("kind") == "inject-start"
        ),
        key=lambda item: item[0],
    )
    spans = [e for e in telemetry.timeline
             if e.worker == worker and e.name == "campaign/inject"]
    colors: dict[int, str] = {}
    if len(starts) != len(spans):
        return colors  # retries/torn tails broke the pairing; stay neutral
    for position, (_, record) in enumerate(starts):
        record_obj = state.records.get(record.get("i"))
        if record_obj is not None:
            colors[position] = OUTCOME_COLORS.get(
                record_obj.outcome.value, _NEUTRAL
            )
    return colors


def _timeline_svg(state: JournalState, telemetry: MergedTelemetry) -> list[str]:
    events = [e for e in telemetry.timeline if e.name == "campaign/inject"]
    if not events:
        return []
    t0 = min(e.start for e in events)
    t1 = max(e.end for e in events)
    span_s = max(t1 - t0, 1e-6)
    width, lane_h, pad_l = 820, 22, 110
    plot_w = width - pad_l - 10
    lanes = sorted({e.worker for e in events})
    height = lane_h * len(lanes) + 30
    out = ["<h2>Timeline</h2>"]
    out.append(
        f"<svg width='{width}' height='{height}' "
        "xmlns='http://www.w3.org/2000/svg' role='img' "
        "aria-label='injection timeline'>"
    )
    for row, worker in enumerate(lanes):
        y = 10 + row * lane_h
        pid = telemetry.workers.get(worker, 0)
        label = "parent" if worker < 0 else f"worker {worker}"
        out.append(
            f"<text x='0' y='{y + 12}' font-size='11' fill='#5b6270'>"
            f"{_esc(label)} ({pid})</text>"
        )
        out.append(
            f"<line x1='{pad_l}' y1='{y + 8}' x2='{width - 10}' y2='{y + 8}' "
            "stroke='#e3e5ea'/>"
        )
        colors = _lane_colors(state, telemetry, worker)
        lane_events = [e for e in events if e.worker == worker]
        for position, event in enumerate(lane_events):
            x = pad_l + plot_w * (event.start - t0) / span_s
            w = max(1.5, plot_w * event.duration / span_s)
            fill = colors.get(position, _NEUTRAL)
            out.append(
                f"<rect x='{x:.1f}' y='{y}' width='{w:.1f}' height='14' "
                f"rx='2' fill='{fill}'/>"
            )
    axis_y = 10 + len(lanes) * lane_h + 12
    out.append(
        f"<text x='{pad_l}' y='{axis_y}' font-size='11' fill='#5b6270'>0s</text>"
    )
    out.append(
        f"<text x='{width - 10}' y='{axis_y}' font-size='11' fill='#5b6270' "
        f"text-anchor='end'>{span_s:.2f}s</text>"
    )
    out.append("</svg>")
    out.append(
        "<p class=note>One lane per process; each block is one injection, "
        "colored by outcome (see the outcome table above).</p>"
    )
    return out


def _slowest_table(state: JournalState, limit: int = 10) -> list[str]:
    timed = [
        (float(d["seconds"]), i)
        for i, d in state.details.items()
        if d.get("seconds") is not None and i in state.records
    ]
    if not timed:
        return []
    timed.sort(reverse=True)
    out = [f"<h2>Slowest injections (top {min(limit, len(timed))})</h2>",
           "<table>"]
    out.append(
        "<tr><th class=num>#</th><th>flip-flop</th><th class=num>cycle</th>"
        "<th>outcome</th><th class=num>seconds</th><th class=num>attempts</th>"
        "<th class=num>worker</th></tr>"
    )
    for seconds, index in timed[:limit]:
        record = state.records[index]
        detail = state.details.get(index, {})
        color = OUTCOME_COLORS.get(record.outcome.value, _NEUTRAL)
        out.append(
            f"<tr><td class=num>{index}</td><td>{_esc(record.dff_name)}</td>"
            f"<td class=num>{record.cycle}</td>"
            f"<td><span class=swatch style='background:{color}'></span>"
            f"{_esc(record.outcome.value)}</td>"
            f"<td class=num>{seconds:.3f}</td>"
            f"<td class=num>{detail.get('attempts', 1)}</td>"
            f"<td class=num>{detail.get('worker', '-')}</td></tr>"
        )
    out.append("</table>")
    return out


def render_report(
    state: JournalState, telemetry: MergedTelemetry | None = None
) -> str:
    """The full report as one self-contained HTML document."""
    header = state.header
    total = header.get("num_points", len(state.records))
    recorded = len(state.records)
    out = [
        "<!DOCTYPE html>",
        "<html lang='en'><head><meta charset='utf-8'>",
        f"<title>campaign report — {_esc(header.get('workload', '?'))}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>Campaign report — {_esc(header.get('workload', '?'))}</h1>",
        "<table class=meta>",
        f"<tr><td>netlist</td><td>{_esc(header.get('netlist_hash', '?'))}"
        "</td></tr>",
        f"<tr><td>seed</td><td>{_esc(header.get('seed'))}</td></tr>",
        f"<tr><td>progress</td><td>{recorded}/{total} injections"
        f" ({'complete' if state.complete else 'partial'})</td></tr>",
        f"<tr><td>golden run</td><td>{_esc(header.get('golden_cycles', '?'))}"
        " cycles</td></tr>",
        "</table>",
    ]
    out.extend(_outcome_chart(state))
    out.extend(_utilization_table(state))
    if telemetry is not None:
        out.extend(_timeline_svg(state, telemetry))
    else:
        out.append(
            "<p class=note>No telemetry directory found — run with "
            "--workers N (or --telemetry-dir) to capture a timeline.</p>"
        )
    out.extend(_slowest_table(state))
    out.append("</body></html>")
    return "\n".join(out) + "\n"


def write_report(
    path: str | Path,
    state: JournalState,
    telemetry: MergedTelemetry | None = None,
) -> Path:
    """Render and write the report; returns the output path."""
    path = Path(path)
    path.write_text(render_report(state, telemetry), encoding="utf-8")
    return path
