"""The fault-injection campaign engine.

A :class:`CampaignTarget` bundles a compiled netlist with a workload: a
factory for fresh testbenches and an extractor for the externally-visible
result (memory image, i/o log). :class:`Campaign` runs the golden
execution once, then injects SEUs — exhaustively, sampled, or from a
MATE-pruned fault list — and classifies each run.
"""

from __future__ import annotations

import math
import random
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.faultspace import FaultSpace
from repro.fi.classify import Outcome
from repro.obs import counter, gauge, progress_iter, span
from repro.sim.simulator import SimulationResult, Simulator
from repro.sim.testbench import Testbench


@dataclass
class CampaignTarget:
    """A netlist + workload combination to inject into."""

    name: str
    simulator: Simulator
    make_testbench: Callable[[], Testbench]
    #: Extracts the externally visible result from (testbench, result).
    observables: Callable[[Testbench, SimulationResult], object]
    #: Safety margin on top of the golden run length.
    timeout_factor: float = 2.0

    def fault_wires(self, exclude_register_file: bool = False) -> list[str]:
        """Flip-flop Q wires of the target (the injectable fault sites)."""
        netlist = self.simulator.netlist
        excluded = (
            netlist.register_file_dffs() if exclude_register_file else set()
        )
        return [d.q for name, d in netlist.dffs.items() if name not in excluded]


@dataclass
class InjectionRecord:
    """One injection and its outcome."""

    dff_name: str
    cycle: int
    outcome: Outcome


@dataclass
class CampaignResult:
    """Aggregated campaign outcome."""

    target: str
    golden_cycles: int
    records: list[InjectionRecord] = field(default_factory=list)

    def count(self, outcome: Outcome) -> int:
        """Number of injections with the given outcome."""
        return sum(1 for r in self.records if r.outcome is outcome)

    @property
    def num_injections(self) -> int:
        """Total number of injections performed."""
        return len(self.records)

    @property
    def benign_fraction(self) -> float:
        """Fraction of injections that were benign.

        An empty campaign has no meaningful fraction: this returns
        ``float("nan")`` rather than a silent ``0.0`` (which would read as
        "every injection was effective"). Callers that aggregate fractions
        must check :attr:`num_injections` (or ``math.isnan``) first.
        """
        if not self.records:
            return math.nan
        return self.count(Outcome.BENIGN) / len(self.records)

    def summary(self) -> str:
        """One-line human-readable outcome tally."""
        parts = [f"campaign {self.target}: {self.num_injections} injections"]
        for outcome in Outcome:
            parts.append(f"{outcome.value}={self.count(outcome)}")
        return ", ".join(parts)


class Campaign:
    """Runs SEU injections against one target."""

    def __init__(self, target: CampaignTarget, max_cycles: int = 50_000) -> None:
        self.target = target
        tb = target.make_testbench()
        with span("campaign/golden-run", target=target.name):
            self._golden = target.simulator.run(
                tb, max_cycles=max_cycles, record_trace=False
            )
        if not self._golden.halted:
            raise ValueError(
                f"golden run of {target.name} did not halt within {max_cycles} cycles"
            )
        self._golden_observables = target.observables(tb, self._golden)
        self.golden_cycles = self._golden.cycles

    # ------------------------------------------------------------------
    def inject(self, dff_name: str, cycle: int) -> Outcome:
        """Inject one SEU and classify the outcome."""
        if dff_name not in self.target.simulator.netlist.dffs:
            raise KeyError(f"unknown flip-flop {dff_name!r}")
        if cycle >= self.golden_cycles:
            raise ValueError(
                f"cycle {cycle} beyond the golden run ({self.golden_cycles})"
            )
        budget = int(self.golden_cycles * self.target.timeout_factor) + 8
        tb = self.target.make_testbench()
        with span("campaign/inject"):
            result = self.target.simulator.run(
                tb,
                max_cycles=budget,
                record_trace=False,
                flips={cycle: [dff_name]},
            )
        if not result.halted:
            outcome = Outcome.TIMEOUT
        elif self.target.observables(tb, result) == self._golden_observables:
            outcome = Outcome.BENIGN
        else:
            outcome = Outcome.SDC
        counter("campaign.injections").inc()
        counter(f"campaign.outcome.{outcome.value}").inc()
        return outcome

    # ------------------------------------------------------------------
    def run_points(self, points: Iterable[tuple[str, int]]) -> CampaignResult:
        """Inject a list of (dff name, cycle) points."""
        dffs = self.target.simulator.netlist.dffs
        result = CampaignResult(self.target.name, self.golden_cycles)
        points = list(points)
        with span(
            "campaign/run-points", target=self.target.name, points=len(points)
        ) as run_span:
            for dff_name, cycle in progress_iter(
                points, label=f"campaign {self.target.name}"
            ):
                if dff_name not in dffs:
                    raise KeyError(f"unknown flip-flop {dff_name!r}")
                outcome = self.inject(dff_name, cycle)
                result.records.append(InjectionRecord(dff_name, cycle, outcome))
        if run_span.elapsed > 0:
            gauge("campaign.injections_per_second").set(
                len(points) / run_span.elapsed
            )
        return result

    def run_sampled(
        self,
        num_samples: int,
        seed: int = 0,
        dff_names: Sequence[str] | None = None,
    ) -> CampaignResult:
        """Inject uniformly sampled points from the fault space."""
        rng = random.Random(seed)
        names = list(dff_names or self.target.simulator.netlist.dffs)
        points = [
            (rng.choice(names), rng.randrange(self.golden_cycles))
            for _ in range(num_samples)
        ]
        return self.run_points(points)

    def run_pruned(
        self,
        space: FaultSpace,
        num_samples: int,
        seed: int = 0,
    ) -> tuple[CampaignResult, int]:
        """Sample the *remaining* (unpruned) fault space of ``space``.

        ``space`` rows must be DFF names. Returns ``(result, pruned_points)``.

        ``pruned_points`` is exactly ``space.num_benign``: the number of
        (flip-flop, cycle) points the MATE set (or any other pruning
        technique) proved benign — the experiments pruning saved. It does
        **not** count points that were merely *sampled away* because the
        remaining space exceeded ``num_samples``, nor remaining points past
        the golden run length. Sampling never mutates ``space``, so the
        count is identical whether it is read before or after sampling.
        """
        remaining = [
            (name, cycle)
            for name, cycle in space.remaining_points()
            if cycle < self.golden_cycles
        ]
        rng = random.Random(seed)
        if len(remaining) > num_samples:
            remaining = rng.sample(remaining, num_samples)
        pruned_points = space.num_benign
        counter("campaign.points.pruned").inc(pruned_points)
        return self.run_points(remaining), pruned_points

    def run_collapsed(
        self, points: Iterable[tuple[str, int]], equivalence_map
    ) -> tuple[CampaignResult, int]:
        """Inject only def-use representatives; back-annotate the rest.

        ``equivalence_map`` is a :class:`repro.prune.EquivalenceMap` for
        this target's design and workload (its ``golden_cycles`` must match
        this campaign's). Returns ``(result, num_injected)``: the result
        carries one record per *requested* point in input order — dead
        points as BENIGN, followers with their representative's outcome —
        while only ``num_injected`` simulations actually ran.
        """
        points = list(points)
        if equivalence_map.golden_cycles != self.golden_cycles:
            raise ValueError(
                f"equivalence map covers {equivalence_map.golden_cycles} "
                f"cycle(s) but the golden run has {self.golden_cycles}"
            )
        plan = equivalence_map.collapse(points)
        outcomes: dict[int, Outcome] = {}
        with span(
            "campaign/run-collapsed",
            target=self.target.name,
            points=len(points),
            injected=plan.num_injected,
        ):
            for index in plan.executed:
                dff_name, cycle = plan.points[index]
                outcomes[index] = self.inject(dff_name, cycle)
        for index in plan.dead:
            outcomes[index] = Outcome.BENIGN
        for index, rep_index in plan.follows.items():
            outcomes[index] = outcomes[rep_index]
        counter("campaign.points.annotated").inc(plan.num_annotated)
        result = CampaignResult(self.target.name, self.golden_cycles)
        result.records = [
            InjectionRecord(dff, cycle, outcomes[index])
            for index, (dff, cycle) in enumerate(plan.points)
        ]
        return result, plan.num_injected
