"""Command-line campaign runner (resilient execution engine).

Usage::

    python -m repro.fi run --target msp430-fib --sampled 200 \\
        --journal camp.jsonl --workers 4          # parallel campaign
    python -m repro.fi run --target avr-fib --sampled 500 --pruned \\
        --journal pruned.jsonl                    # sample the MATE-pruned space
    python -m repro.fi resume --journal camp.jsonl  # continue after a crash
    python -m repro.fi status --journal camp.jsonl  # progress + outcome tally

``--target`` accepts a named core+program combination (``avr-fib``,
``avr-conv``, ``msp430-fib``, ``msp430-conv``) or a
``package.module:callable`` reference to a zero-/keyword-argument factory
returning a :class:`~repro.fi.campaign.CampaignTarget`.

Every injection outcome is journaled durably; an interrupted run (Ctrl-C,
SIGTERM, SIGKILL, power loss) resumes exactly where it stopped.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import obs
from repro.fi.classify import Outcome
from repro.fi.journal import JournalError, load_journal
from repro.fi.runner import CampaignRunner, RunnerConfig, RunReport, TargetSpec
from repro.fi.targets import NAMED_TARGETS

#: Exit code when a run stops early but remains resumable.
EXIT_INTERRUPTED = 130


def _spec_for(target: str) -> TargetSpec:
    if target in NAMED_TARGETS:
        return TargetSpec(
            factory="repro.fi.targets:named_target", kwargs={"name": target}
        )
    if ":" in target:
        return TargetSpec(factory=target)
    raise SystemExit(
        f"error: unknown target {target!r} — expected one of "
        f"{', '.join(NAMED_TARGETS)} or a 'package.module:callable' reference"
    )


def _config_from_args(args: argparse.Namespace) -> RunnerConfig:
    config = RunnerConfig(
        workers=args.workers,
        max_retries=args.max_retries,
        limit=args.limit,
    )
    if args.timeout_factor is not None:
        config.timeout_factor = args.timeout_factor
    if args.timeout_seconds is not None:
        config.timeout_seconds = args.timeout_seconds
    return config


def _pruned_points(
    runner: CampaignRunner, target: str, num_samples: int, seed: int
) -> list[tuple[str, int]]:
    """Sample the MATE-pruned (remaining) fault space of a named target."""
    import random

    import numpy as np

    from repro.core.faultspace import FaultSpace
    from repro.core.replay import replay_mates
    from repro.eval import context

    core, _, program = target.partition("-")
    mates = context.get_mates(core, exclude_register_file=False)
    fault_wires = context.get_fault_wires(core, exclude_register_file=False)
    trace = context.get_trace(core, program)
    replay = replay_mates(mates, trace, fault_wires)
    netlist = runner.target.simulator.netlist
    dff_of_wire = {dff.q: name for name, dff in netlist.dffs.items()}

    space = FaultSpace(fault_wires, runner.golden_cycles)
    for wire in fault_wires:
        benign = np.unpackbits(replay.masked_vector(wire))[: runner.golden_cycles]
        space.mark_benign_cycles(wire, benign)
    remaining = [
        (dff_of_wire[wire], cycle)
        for wire, cycle in space.remaining_points()
        if wire in dff_of_wire
    ]
    obs.counter("campaign.points.pruned").inc(space.num_benign)
    if len(remaining) > num_samples:
        remaining = random.Random(seed).sample(remaining, num_samples)
    return remaining


def _print_report(report: RunReport) -> int:
    result = report.result
    print(result.summary())
    print(
        f"executed {report.executed} new, skipped {report.skipped} journaled, "
        f"{report.retries} retries, {report.quarantined} quarantined, "
        f"{report.worker_restarts} worker restarts"
    )
    if report.complete:
        print(f"campaign complete — journal: {report.journal_path}")
        return 0
    reason = (
        f"interrupted by {report.interrupted}"
        if report.interrupted
        else "stopped at --limit"
    )
    print(f"campaign incomplete ({reason}) — resume with:")
    print(f"  {report.resume_hint}")
    return EXIT_INTERRUPTED if report.interrupted else 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _spec_for(args.target)
    runner = CampaignRunner(spec, _config_from_args(args))
    if args.pruned:
        if args.target not in NAMED_TARGETS:
            raise SystemExit("error: --pruned requires a named core target")
        points = _pruned_points(runner, args.target, args.sampled, args.seed)
    else:
        points = runner.sample_points(args.sampled, seed=args.seed)
    report = runner.run(
        points, args.journal, resume=args.resume, seed=args.seed
    )
    return _print_report(report)


def _cmd_resume(args: argparse.Namespace) -> int:
    state = load_journal(args.journal)
    if state.complete:
        print(f"journal {args.journal} is already complete:")
        return _cmd_status(args)
    spec = TargetSpec.from_dict(state.header["target"])
    config = _config_from_args(args)
    config.max_cycles = state.header["max_cycles"]
    runner = CampaignRunner(spec, config)
    report = runner.run(
        state.points,
        args.journal,
        resume=True,
        seed=state.header.get("seed"),
    )
    return _print_report(report)


def _cmd_status(args: argparse.Namespace) -> int:
    state = load_journal(args.journal)
    header = state.header
    total = header["num_points"]
    print(f"journal:   {args.journal}")
    print(f"workload:  {header['workload']} (netlist {header['netlist_hash']})")
    print(
        f"keyed by:  points_hash={header['points_hash']} seed={header['seed']} "
        f"golden_cycles={header['golden_cycles']}"
    )
    print(f"progress:  {len(state.records)}/{total} injections recorded")
    outcomes = [r.outcome for r in state.records.values()]
    tally = ", ".join(
        f"{outcome.value}={outcomes.count(outcome)}" for outcome in Outcome
    )
    print(f"outcomes:  {tally}")
    if state.complete:
        print("state:     complete")
    else:
        print("state:     partial — resume with:")
        print(f"  python -m repro.fi resume --journal {args.journal}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-fi",
        description="Resilient (parallel, checkpointed) SEU injection campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_exec_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--workers", type=int, default=1,
            help="worker processes (0 = inline, no pool; default 1)",
        )
        p.add_argument(
            "--timeout-factor", type=float, default=None,
            help="wall-clock injection timeout as a multiple of the golden "
            "run's wall time (default 50)",
        )
        p.add_argument(
            "--timeout-seconds", type=float, default=None,
            help="explicit wall-clock injection timeout (overrides the factor)",
        )
        p.add_argument(
            "--max-retries", type=int, default=1,
            help="failed attempts per point before quarantine (default 1)",
        )
        p.add_argument(
            "--limit", type=int, default=None,
            help="stop (resumable) after N new injections",
        )
        p.add_argument("--verbose", "-v", action="store_true")

    run_p = sub.add_parser("run", help="start a campaign (journaling as it goes)")
    run_p.add_argument("--target", required=True)
    run_p.add_argument("--journal", required=True, type=Path)
    run_p.add_argument(
        "--sampled", type=int, default=100, metavar="N",
        help="number of uniformly sampled injection points (default 100)",
    )
    run_p.add_argument(
        "--pruned", action="store_true",
        help="sample the MATE-pruned (remaining) fault space instead of the "
        "full one (named core targets only)",
    )
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--resume", action="store_true",
        help="continue an existing journal instead of failing on it",
    )
    add_exec_options(run_p)
    run_p.set_defaults(func=_cmd_run)

    resume_p = sub.add_parser(
        "resume", help="continue an interrupted campaign from its journal"
    )
    resume_p.add_argument("--journal", required=True, type=Path)
    add_exec_options(resume_p)
    resume_p.set_defaults(func=_cmd_resume)

    status_p = sub.add_parser("status", help="inspect a campaign journal")
    status_p.add_argument("--journal", required=True, type=Path)
    status_p.set_defaults(func=_cmd_status)

    args = parser.parse_args(argv)
    if getattr(args, "verbose", False):
        obs.configure(progress=True)
    try:
        return args.func(args)
    except JournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (FileExistsError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
