"""Command-line campaign runner (resilient execution engine).

Usage::

    python -m repro.fi run --target msp430-fib --sampled 200 \\
        --journal camp.jsonl --workers 4          # parallel campaign
    python -m repro.fi run --target avr-fib --sampled 500 --pruned \\
        --journal pruned.jsonl                    # sample the MATE-pruned space
    python -m repro.fi run --target avr-fib --sampled 500 --defuse \\
        --journal defuse.jsonl   # inject def-use representatives only,
                                 # back-annotate the rest (repro.prune)
    python -m repro.fi run --target avr-fib --sampled 500 --defuse --static \\
        --journal layered.jsonl  # + binary-level static dataflow layer:
                                 # statically-dead points get pruned_by=static
    python -m repro.fi resume --journal camp.jsonl  # continue after a crash
    python -m repro.fi status --journal camp.jsonl  # progress + outcome tally
    python -m repro.fi report camp.jsonl            # self-contained HTML report

    python -m repro.fi run --target avr-fib --sampled 500 \\
        --journal camp.jsonl --serve 8080   # + live HTTP console at :8080

    python -m repro.fi serve --state-dir campaigns --port 7712 \\
        --console-port 8080 --auth-token-file token.txt   # coordinator
    python -m repro.fi worker --connect HOST:7712 \\
        --auth-token-file token.txt                       # injector
    python -m repro.fi submit --connect HOST:7712 \\
        --target avr-fib --sampled 2000 --wait --fail-on-alert
    python -m repro.fi status --journal campaigns/<name>   # sharded progress

The distributed trio runs one coordinator (owns all durable state: the
campaign manifest, per-shard crash-safe journals, relayed telemetry, and
the merged journal) plus any number of stateless workers, possibly on
other hosts. Workers that die mid-shard only cost the in-flight
injection; a kill -9'd coordinator resumes exactly from its shard
journals on restart; with zero workers the coordinator degrades to local
execution.

``--serve [PORT]`` (run/resume) and ``--console-port`` (serve) mount the
live observability console (:mod:`repro.obs.http`): Prometheus
``/metrics``, ``/status.json`` with the lease table and health alerts, an
SSE-driven HTML dashboard at ``/``, and per-campaign drill-down pages.
``--auth-token`` / ``--auth-token-file`` / ``$REPRO_FI_TOKEN`` set the
shared-secret token that gates worker and submit handshakes plus the
console's mutating routes; ``submit --wait --fail-on-alert`` turns a
firing coordinator health rule into a nonzero exit for CI gates.

Pooled runs stream per-worker telemetry to ``<journal>.telemetry/`` by
default (``--telemetry-dir`` overrides); ``--metrics-out`` writes the
merged registry snapshot as JSON and ``--trace-out`` writes a Perfetto/
``about://tracing``-loadable trace of the whole campaign. On a TTY, a live
multi-line dashboard shows per-worker progress (force with ``--verbose``).

``--target`` accepts a named core+program combination (``avr-fib``,
``avr-conv``, ``msp430-fib``, ``msp430-conv``) or a
``package.module:callable`` reference to a zero-/keyword-argument factory
returning a :class:`~repro.fi.campaign.CampaignTarget`.

Every injection outcome is journaled durably; an interrupted run (Ctrl-C,
SIGTERM, SIGKILL, power loss) resumes exactly where it stopped.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro import obs
from repro.fi.classify import Outcome
from repro.fi.journal import JournalError, load_journal
from repro.fi.runner import CampaignRunner, RunnerConfig, RunReport, TargetSpec
from repro.fi.targets import NAMED_TARGETS

#: Exit code when a run stops early but remains resumable.
EXIT_INTERRUPTED = 130
#: Exit code of ``submit --wait --fail-on-alert`` when a health rule fires.
EXIT_ALERT = 3
#: Environment variable carrying the shared-secret service auth token.
TOKEN_ENV = "REPRO_FI_TOKEN"


def _resolve_token(args: argparse.Namespace) -> str | None:
    """The service auth token: ``--auth-token`` > file > environment."""
    token = getattr(args, "auth_token", None)
    if token:
        return str(token)
    token_file = getattr(args, "auth_token_file", None)
    if token_file:
        return Path(token_file).read_text(encoding="utf-8").strip()
    return os.environ.get(TOKEN_ENV) or None


def _spec_for(target: str) -> TargetSpec:
    if target in NAMED_TARGETS:
        return TargetSpec(
            factory="repro.fi.targets:named_target", kwargs={"name": target}
        )
    if ":" in target:
        return TargetSpec(factory=target)
    raise SystemExit(
        f"error: unknown target {target!r} — expected one of "
        f"{', '.join(NAMED_TARGETS)} or a 'package.module:callable' reference"
    )


def _config_from_args(args: argparse.Namespace) -> RunnerConfig:
    config = RunnerConfig(
        workers=args.workers,
        max_retries=args.max_retries,
        limit=args.limit,
    )
    if args.timeout_factor is not None:
        config.timeout_factor = args.timeout_factor
    if args.timeout_seconds is not None:
        config.timeout_seconds = args.timeout_seconds
    config.telemetry_dir = _telemetry_dir_for(args)
    if not args.no_store:
        if args.store is not None:
            config.store_path = args.store
        else:
            from repro.store import default_db_path

            config.store_path = default_db_path()
    return config


def _telemetry_dir_for(args: argparse.Namespace) -> Path | None:
    """Where this run's telemetry goes; None disables it.

    Defaults to ``<journal>.telemetry`` for pooled runs (and whenever a
    trace is requested, since the trace is built from telemetry);
    ``--telemetry-dir ''`` turns telemetry off explicitly.
    """
    explicit = getattr(args, "telemetry_dir", None)
    if explicit is not None:
        return Path(explicit) if str(explicit) else None
    if args.workers > 0 or getattr(args, "trace_out", None):
        return Path(f"{args.journal}.telemetry")
    return None


def _mate_vectors(
    runner: CampaignRunner, target: str
) -> dict[str, "object"]:
    """Per-fault-wire MATE trigger vectors, truncated to the golden run."""
    import numpy as np

    from repro.core.replay import replay_mates
    from repro.eval import context

    core, _, program = target.partition("-")
    mates = context.get_mates(core, exclude_register_file=False)
    fault_wires = context.get_fault_wires(core, exclude_register_file=False)
    trace = context.get_trace(core, program)
    replay = replay_mates(mates, trace, fault_wires)
    return {
        wire: np.unpackbits(replay.masked_vector(wire))[: runner.golden_cycles]
        for wire in fault_wires
    }


def _pruned_points(
    runner: CampaignRunner, target: str, num_samples: int, seed: int
) -> tuple[list[tuple[str, int]], dict, dict]:
    """Sample the MATE-pruned (remaining) fault space of a named target.

    Returns the point list, journal-header metadata attributing the pruning
    (full space size, points pruned away) for the warehouse's
    pruning-effectiveness reporting, and the per-wire MATE vectors (reused
    for cross-layer attribution when ``--defuse`` is also set).
    """
    import random

    from repro.core.faultspace import FaultSpace

    netlist = runner.target.simulator.netlist
    dff_of_wire = {dff.q: name for name, dff in netlist.dffs.items()}
    mate_vectors = _mate_vectors(runner, target)

    space = FaultSpace(list(mate_vectors), runner.golden_cycles)
    for wire, benign in mate_vectors.items():
        space.mark_benign_cycles(wire, benign)
    remaining = [
        (dff_of_wire[wire], cycle)
        for wire, cycle in space.remaining_points()
        if wire in dff_of_wire
    ]
    obs.counter("campaign.points.pruned").inc(space.num_benign)
    if len(remaining) > num_samples:
        remaining = random.Random(seed).sample(remaining, num_samples)
    meta = {
        "pruned": True,
        "space_points": space.size,
        "pruned_points": int(space.num_benign),
    }
    return remaining, meta, mate_vectors


def _static_map_for(runner: CampaignRunner, target: str):
    """The static dataflow map for a named target, length-checked."""
    from repro.prune import get_static_map

    static_map = get_static_map(target)
    if static_map.golden_cycles != runner.golden_cycles:
        raise ValueError(
            f"stale static map for {target}: covers "
            f"{static_map.golden_cycles} cycle(s), golden run has "
            f"{runner.golden_cycles}"
        )
    return static_map


def _static_plan(
    runner: CampaignRunner,
    target: str,
    points: list[tuple[str, int]],
):
    """Annotate ``points`` using only the static dataflow layer."""
    from repro.prune import collapse_static

    static_map = _static_map_for(runner, target)
    collapse = collapse_static(points, static_map)
    meta = {
        "static": True,
        "static_annotated": collapse.num_annotated,
    }
    print(f"static collapse: {collapse.summary()}")
    return collapse.annotation_plan(source="static"), meta


def _defuse_plan(
    runner: CampaignRunner,
    target: str,
    points: list[tuple[str, int]],
    mate_vectors: dict | None = None,
    with_static: bool = False,
):
    """Collapse ``points`` onto def-use representatives for a named target.

    Returns the runner :class:`~repro.fi.runner.AnnotationPlan` plus the
    journal-header metadata (collapse counts and per-layer fault-space
    attribution) the warehouse reads back out. With ``with_static`` the
    static dataflow layer is consulted first, so its trace-independent dead
    points carry ``pruned_by="static"`` provenance.
    """
    from repro.prune import account, get_equivalence_map

    equivalence_map = get_equivalence_map(target)
    if equivalence_map.golden_cycles != runner.golden_cycles:
        raise ValueError(
            f"stale equivalence map for {target}: covers "
            f"{equivalence_map.golden_cycles} cycle(s), golden run has "
            f"{runner.golden_cycles}"
        )
    static_map = _static_map_for(runner, target) if with_static else None
    collapse = equivalence_map.collapse(points, static_map=static_map)
    accounting = account(
        target,
        runner.target.simulator.netlist,
        equivalence_map,
        mate_vectors,
        static_map=static_map,
    )
    meta = {
        "defuse": True,
        "defuse_injected": collapse.num_injected,
        "defuse_annotated": collapse.num_annotated,
        "layers": accounting.layers(),
    }
    if with_static:
        meta["static"] = True
        meta["static_annotated"] = len(
            [i for i, s in collapse.sources.items() if s == "static"]
        )
    print(f"def-use collapse: {collapse.summary()}")
    return collapse.annotation_plan(), meta


def _print_report(report: RunReport) -> int:
    result = report.result
    print(result.summary())
    annotated = (
        f"{report.annotated} back-annotated, " if report.annotated else ""
    )
    print(
        f"executed {report.executed} new, {annotated}"
        f"skipped {report.skipped} journaled, "
        f"{report.retries} retries, {report.quarantined} quarantined, "
        f"{report.worker_restarts} worker restarts"
    )
    if report.complete:
        print(f"campaign complete — journal: {report.journal_path}")
        if report.store_id is not None:
            print(
                f"warehoused as campaign #{report.store_id} "
                f"(python -m repro.store show {report.store_id})"
            )
        return 0
    reason = (
        f"interrupted by {report.interrupted}"
        if report.interrupted
        else "stopped at --limit"
    )
    print(f"campaign incomplete ({reason}) — resume with:")
    print(f"  {report.resume_hint}")
    return EXIT_INTERRUPTED if report.interrupted else 0


class _ConsoleDashboard(obs.CampaignDashboard):
    """Campaign dashboard that mirrors updates to live console subscribers.

    With ``--serve`` the run's :class:`_RunConsole` provider and its
    thread handle are attached after construction; each runner update then
    pushes a throttled ``status`` SSE event so open dashboards track the
    run without waiting for their 2 s poll.
    """

    console = None
    provider = None
    _last_publish = 0.0

    def update(self, **kwargs) -> None:
        super().update(**kwargs)
        handle, provider = self.console, self.provider
        if handle is None or provider is None:
            return
        server = handle.server
        if server is None or not server.has_subscribers:
            return
        now = time.monotonic()
        if now - self._last_publish < 0.5:
            return
        self._last_publish = now
        handle.publish("status", provider.status_doc())


class _RunConsole(obs.ConsoleProvider):
    """Console provider over one single-host run (``fi run --serve``).

    Mirrors the coordinator's ``/status.json`` shape — one campaign, no
    shard table — so the same dashboard page serves both deployments.
    """

    def __init__(self, dashboard: obs.CampaignDashboard, name: str) -> None:
        self._dashboard = dashboard
        self._name = name

    def title(self) -> str:
        return f"repro fi run — {self._name}"

    def metrics_text(self) -> str:
        telemetry_dir = self._dashboard.telemetry_dir
        return obs.merged_metrics_text(
            [telemetry_dir] if telemetry_dir is not None else []
        )

    def status_doc(self) -> dict:
        dashboard = self._dashboard
        done = dashboard.executed + dashboard.skipped
        outcomes = {
            outcome.value: obs.counter(
                f"campaign.outcome.{outcome.value}"
            ).value
            for outcome in Outcome
        }
        if not dashboard.enabled:
            # No TTY panel driving the telemetry tails — poll them here so
            # the worker table still fills in (dict reads/writes are safe
            # under the GIL; worst case a refresh sees a stale row).
            dashboard._poll_workers()
        workers = [
            {
                "pid": row.pid,
                "peer": "local pool",
                "records": row.done,
                "shards_taken": 0,
                "authenticated": False,
                "rss_bytes": None,
                "cpu_percent": None,
            }
            for _, row in sorted(dashboard._workers.items())
        ]
        return {
            "kind": "status",
            "workers": len(workers),
            "rate": dashboard.rolling_rate,
            "alerts": [],
            "alerts_fired_total": 0,
            "worker_table": workers,
            "campaigns": [
                {
                    "name": self._name,
                    "status": (
                        "complete" if done >= dashboard.total else "running"
                    ),
                    "done": done,
                    "total": dashboard.total,
                    "quarantined": dashboard.quarantined,
                    "retries": dashboard.retries,
                    "eta_seconds": dashboard.eta_seconds,
                    "outcomes": {k: v for k, v in outcomes.items() if v},
                    "store_id": None,
                    "shards": [],
                }
            ],
        }


def _execute(
    runner: CampaignRunner,
    points: list[tuple[str, int]],
    args: argparse.Namespace,
    resume: bool,
    seed: int | None,
    meta: dict | None = None,
    plan=None,
) -> int:
    """Run the campaign with the live dashboard and telemetry outputs."""
    dashboard = _ConsoleDashboard(
        total=len(points),
        label=f"campaign {runner.target.name}",
        telemetry_dir=runner.config.telemetry_dir,
    )
    handle = None
    serve_port = getattr(args, "serve", None)
    if serve_port is not None:
        provider = _RunConsole(dashboard, runner.target.name)
        handle = obs.start_in_thread(provider, port=serve_port)
        dashboard.console = handle
        dashboard.provider = provider
        print(f"live console: {handle.url}", file=sys.stderr)
    try:
        with dashboard:
            report = runner.run(
                points, args.journal, resume=resume, seed=seed,
                dashboard=dashboard, meta=meta, plan=plan,
            )
    finally:
        if handle is not None:
            handle.stop()
    if dashboard.enabled:
        print(file=sys.stderr)
    if args.trace_out:
        if report.telemetry is not None:
            obs.write_trace(args.trace_out, report.telemetry)
            print(f"trace written to {args.trace_out}")
        else:
            print(
                "warning: --trace-out needs telemetry (enable --telemetry-dir)",
                file=sys.stderr,
            )
    if args.metrics_out:
        obs.write_json(args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    return _print_report(report)


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _spec_for(args.target)
    runner = CampaignRunner(spec, _config_from_args(args))
    mate_vectors = None
    if args.pruned:
        if args.target not in NAMED_TARGETS:
            raise SystemExit("error: --pruned requires a named core target")
        points, meta, mate_vectors = _pruned_points(
            runner, args.target, args.sampled, args.seed
        )
    else:
        points = runner.sample_points(args.sampled, seed=args.seed)
        num_ffs = len(runner.target.simulator.netlist.dffs)
        meta = {"pruned": False,
                "space_points": num_ffs * runner.golden_cycles}
    plan = None
    if args.defuse:
        if args.target not in NAMED_TARGETS:
            raise SystemExit("error: --defuse requires a named core target")
        plan, defuse_meta = _defuse_plan(runner, args.target, points,
                                         mate_vectors,
                                         with_static=args.static)
        meta.update(defuse_meta)
    elif args.static:
        if args.target not in NAMED_TARGETS:
            raise SystemExit("error: --static requires a named core target")
        plan, static_meta = _static_plan(runner, args.target, points)
        meta.update(static_meta)
    return _execute(runner, points, args, resume=args.resume, seed=args.seed,
                    meta=meta, plan=plan)


def _cmd_resume(args: argparse.Namespace) -> int:
    state = load_journal(args.journal)
    if state.complete:
        print(f"journal {args.journal} is already complete:")
        return _cmd_status(args)
    spec = TargetSpec.from_dict(state.header["target"])
    config = _config_from_args(args)
    config.max_cycles = state.header["max_cycles"]
    runner = CampaignRunner(spec, config)
    plan = None
    meta = state.header.get("meta") or {}
    if meta.get("defuse") or meta.get("static"):
        # A collapsed campaign resumes under the same deterministic plan,
        # rebuilt from the cached maps and the journaled points.
        workload = state.header["workload"]
        if workload not in NAMED_TARGETS:
            raise SystemExit(
                f"error: cannot rebuild the pruning plan for non-named "
                f"target {workload!r}"
            )
        from repro.prune import (
            collapse_static,
            get_equivalence_map,
            get_static_map,
        )

        static_map = get_static_map(workload) if meta.get("static") else None
        if meta.get("defuse"):
            plan = (
                get_equivalence_map(workload)
                .collapse(state.points, static_map=static_map)
                .annotation_plan()
            )
        else:
            plan = collapse_static(state.points, static_map).annotation_plan(
                source="static"
            )
    return _execute(
        runner, state.points, args, resume=True,
        seed=state.header.get("seed"), plan=plan,
    )


def _last_known_rate(telemetry_dir: Path, window: int = 20) -> float | None:
    """Completion rate (injections/s) over the last recorded span window.

    Derived from the workers' ``campaign/inject`` span stream, so it
    survives a SIGKILLed parent (workers flush after every injection) and
    reflects the *end* of the run, not a lifetime average.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.remote import collect

    if not telemetry_dir.is_dir():
        return None
    merged = collect(telemetry_dir, registry=MetricsRegistry())
    ends = sorted(
        e.end for e in merged.timeline if e.name == "campaign/inject"
    )
    if len(ends) < 2:
        return None
    tail = ends[-window:]
    elapsed = tail[-1] - tail[0]
    if elapsed <= 0:
        return None
    return (len(tail) - 1) / elapsed


def _parse_connect(value: str) -> tuple[str, int]:
    """``host:port`` (or bare ``:port``/``port``) → ``(host, port)``."""
    host, _, port = str(value).rpartition(":")
    host = host or "127.0.0.1"
    try:
        return host, int(port)
    except ValueError:
        raise SystemExit(
            f"error: --connect expects host:port, got {value!r}"
        ) from None


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.fi.service import Coordinator, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        state_dir=args.state_dir,
        shard_points=args.shard_points,
        lease_seconds=args.lease_seconds,
        max_shard_retries=args.max_shard_retries,
        fallback_seconds=(
            None if args.no_fallback else args.fallback_seconds
        ),
        port_file=args.port_file,
        console_port=args.console_port,
        console_host=args.console_host,
        auth_token=_resolve_token(args),
        health_stall_seconds=args.stall_seconds,
    )
    if not args.no_store:
        if args.store is not None:
            config.store_path = args.store
        else:
            from repro.store import default_db_path

            config.store_path = default_db_path()
    coordinator = Coordinator(config)
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: coordinator.request_shutdown())
    return coordinator.run()


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.fi.service import run_worker

    host, port = _parse_connect(args.connect)
    return run_worker(
        host, port, reconnect_attempts=args.reconnect_attempts,
        token=_resolve_token(args),
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.fi.service.protocol import Connection, handshake

    host, port = _parse_connect(args.connect)
    token = _resolve_token(args)
    with Connection.connect(host, port) as connection:
        extra = {"token": token} if token is not None else {}
        handshake(connection, "client", **extra)
        reply = connection.call(
            {
                "kind": "submit",
                "target": args.target,
                "sampled": args.sampled,
                "seed": args.seed,
                "name": args.name,
                "shard_points": args.shard_points,
                "max_cycles": args.max_cycles,
            }
        )
        if reply.get("kind") != "queued":
            print(f"error: {reply.get('reason', reply)}", file=sys.stderr)
            return 2
        name = reply["campaign"]
        print(
            f"queued campaign {name!r}: {reply['num_points']} point(s) in "
            f"{reply['shards']} shard(s) "
            f"(queue position {reply['queue_position']})"
        )
        if not args.wait:
            return 0
        while True:
            time.sleep(args.poll)
            status = connection.call({"kind": "status", "campaign": name})
            rows = status.get("campaigns") or []
            if not rows:
                print(f"error: campaign {name!r} disappeared", file=sys.stderr)
                return 2
            campaign = rows[0]
            print(
                f"  {campaign['done']}/{campaign['total']} point(s), "
                f"{status['workers']} worker(s) connected",
                file=sys.stderr,
            )
            alerts = status.get("alerts") or []
            for alert in alerts:
                print(
                    f"  ALERT {alert.get('rule')}: {alert.get('reason')}",
                    file=sys.stderr,
                )
            if alerts and args.fail_on_alert:
                print(
                    f"campaign {name!r}: coordinator health alert firing "
                    "(--fail-on-alert)",
                    file=sys.stderr,
                )
                return EXIT_ALERT
            if campaign["status"] == "complete":
                print(f"campaign {name!r} complete")
                return 0
            if campaign["status"] == "failed":
                print(f"campaign {name!r} failed", file=sys.stderr)
                return EXIT_INTERRUPTED


def _console_url_near(directory: Path) -> str | None:
    """The live-console URL advertised beside a campaign dir, if any.

    The coordinator drops ``console.json`` into its state dir (the
    campaign directory's parent) while the console is mounted.
    """
    import json

    from repro.fi.service.shards import CONSOLE_NAME

    for candidate in (directory / CONSOLE_NAME,
                      directory.parent / CONSOLE_NAME):
        if candidate.is_file():
            try:
                return json.loads(
                    candidate.read_text(encoding="utf-8")
                ).get("url")
            except (OSError, ValueError):
                return None
    return None


def _sharded_status(directory: Path) -> int:
    """``fi status`` over a sharded coordinator campaign directory."""
    from repro.fi.service import load_campaign_dir

    status = load_campaign_dir(directory)
    manifest = status.manifest
    print(f"campaign:  {directory} (sharded, status {manifest.status!r})")
    print(
        f"workload:  {manifest.workload} (netlist {manifest.netlist_hash})"
    )
    print(
        f"keyed by:  seed={manifest.seed} "
        f"golden_cycles={manifest.golden_cycles}"
    )
    print(
        f"progress:  {status.done}/{status.total} injections recorded "
        f"across {len(status.shards)} shard(s)"
    )
    url = _console_url_near(directory)
    if url:
        print(f"console:   live console at {url}")
    print()
    print(obs.aligned_table(
        "shards",
        ["shard", "points", "done", "state"],
        [
            [
                f"{s.shard_id:04d}",
                f"{s.start}..{s.stop - 1}",
                f"{s.records}/{s.total}",
                "complete" if s.complete else
                ("partial" if s.records else "pending"),
            ]
            for s in status.shards
        ],
    ))
    outcomes = status.outcomes
    recorded = sum(outcomes.values()) or 1
    print()
    print(obs.aligned_table(
        "outcomes (merged totals)",
        ["outcome", "count", "share"],
        [
            [outcome.value, str(outcomes.get(outcome.value, 0)),
             f"{100 * outcomes.get(outcome.value, 0) / recorded:.1f}%"]
            for outcome in Outcome
        ],
    ))
    print()
    if status.merged_path is not None:
        print(f"state:     complete — merged journal: {status.merged_path}")
    elif status.complete:
        print(
            "state:     all shards complete — merge pending "
            "(restart the coordinator or ingest the directory to merge)"
        )
    else:
        print(
            "state:     partial — restart the coordinator with the same "
            "--state-dir to resume:"
        )
        print(
            f"  python -m repro.fi serve --state-dir {directory.parent}"
        )
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    if Path(args.journal).is_dir():
        from repro.fi.service import is_campaign_dir

        if is_campaign_dir(args.journal):
            return _sharded_status(Path(args.journal))
        raise SystemExit(
            f"error: {args.journal} is a directory but not a sharded "
            "campaign (no campaign.json manifest)"
        )
    state = load_journal(args.journal)
    header = state.header
    total = header["num_points"]
    print(f"journal:   {args.journal}")
    print(f"workload:  {header['workload']} (netlist {header['netlist_hash']})")
    print(
        f"keyed by:  points_hash={header['points_hash']} seed={header['seed']} "
        f"golden_cycles={header['golden_cycles']}"
    )
    print(f"progress:  {len(state.records)}/{total} injections recorded")
    annotated = sum(
        1 for detail in state.details.values() if "pruned_by" in detail
    )
    if annotated:
        print(f"           {annotated} of those back-annotated statically")
    outcomes = [r.outcome for r in state.records.values()]
    recorded = len(outcomes) or 1
    print()
    print(obs.aligned_table(
        "outcomes",
        ["outcome", "count", "share"],
        [
            [outcome.value, str(outcomes.count(outcome)),
             f"{100 * outcomes.count(outcome) / recorded:.1f}%"]
            for outcome in Outcome
        ],
    ))
    print()
    telemetry_dir = (
        Path(args.telemetry_dir)
        if getattr(args, "telemetry_dir", None)
        else Path(f"{args.journal}.telemetry")
    )
    rate = _last_known_rate(telemetry_dir)
    if rate is not None:
        remaining = max(0, total - len(state.records))
        line = f"last rate: {rate:.1f} injections/s (from telemetry)"
        if remaining and rate > 0:
            line += f" — eta ~{remaining / rate:.0f}s for {remaining} remaining"
        print(line)
    if state.complete:
        print("state:     complete")
    else:
        print("state:     partial — resume with:")
        print(f"  python -m repro.fi resume --journal {args.journal}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.fi.report import write_report
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.remote import collect

    state = load_journal(args.journal)
    telemetry = None
    telemetry_dir = (
        Path(args.telemetry_dir)
        if args.telemetry_dir
        else Path(f"{args.journal}.telemetry")
    )
    if telemetry_dir.is_dir():
        # Merge into a scratch registry: reporting must not pollute the
        # process's live metrics.
        telemetry = collect(telemetry_dir, registry=MetricsRegistry())
    out = args.out or Path(f"{args.journal}.html")
    write_report(out, state, telemetry)
    print(f"report written to {out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-fi",
        description="Resilient (parallel, checkpointed) SEU injection campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_exec_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--workers", type=int, default=1,
            help="worker processes (0 = inline, no pool; default 1)",
        )
        p.add_argument(
            "--timeout-factor", type=float, default=None,
            help="wall-clock injection timeout as a multiple of the golden "
            "run's wall time (default 50)",
        )
        p.add_argument(
            "--timeout-seconds", type=float, default=None,
            help="explicit wall-clock injection timeout (overrides the factor)",
        )
        p.add_argument(
            "--max-retries", type=int, default=1,
            help="failed attempts per point before quarantine (default 1)",
        )
        p.add_argument(
            "--limit", type=int, default=None,
            help="stop (resumable) after N new injections",
        )
        p.add_argument(
            "--telemetry-dir", type=str, default=None, metavar="DIR",
            help="cross-process telemetry directory (default: "
            "<journal>.telemetry for pooled runs; '' disables)",
        )
        p.add_argument(
            "--metrics-out", type=Path, default=None, metavar="FILE",
            help="write the merged metrics registry as JSON after the run",
        )
        p.add_argument(
            "--trace-out", type=Path, default=None, metavar="FILE",
            help="write a Perfetto-loadable trace-event JSON after the run",
        )
        p.add_argument(
            "--store", type=Path, default=None, metavar="FILE",
            help="results-warehouse database a completed campaign is "
            "auto-ingested into (default: .repro_cache/warehouse.sqlite3)",
        )
        p.add_argument(
            "--no-store", action="store_true",
            help="skip the results-warehouse auto-ingest",
        )
        p.add_argument(
            "--serve", type=int, nargs="?", const=0, default=None,
            metavar="PORT",
            help="serve the live HTTP console for this run on PORT "
            "(bare --serve picks an ephemeral port; URL printed at start)",
        )
        p.add_argument("--verbose", "-v", action="store_true")

    def add_auth_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--auth-token", default=None, metavar="TOKEN",
            help="shared-secret service auth token (or set $REPRO_FI_TOKEN; "
            "prefer --auth-token-file to keep it out of argv)",
        )
        p.add_argument(
            "--auth-token-file", type=Path, default=None, metavar="FILE",
            help="read the auth token from FILE (whitespace-stripped)",
        )

    run_p = sub.add_parser("run", help="start a campaign (journaling as it goes)")
    run_p.add_argument("--target", required=True)
    run_p.add_argument("--journal", required=True, type=Path)
    run_p.add_argument(
        "--sampled", type=int, default=100, metavar="N",
        help="number of uniformly sampled injection points (default 100)",
    )
    run_p.add_argument(
        "--pruned", action="store_true",
        help="sample the MATE-pruned (remaining) fault space instead of the "
        "full one (named core targets only)",
    )
    run_p.add_argument(
        "--defuse", action="store_true",
        help="collapse the point list onto def-use equivalence "
        "representatives: inject only representatives, back-annotate dead "
        "and follower points into the journal (named core targets only; "
        "composes with --pruned)",
    )
    run_p.add_argument(
        "--static", action="store_true",
        help="annotate points proven benign by the binary-level static "
        "dataflow layer (pruned_by=\"static\"); alone or composing with "
        "--defuse, where static claims take precedence (named core targets "
        "only)",
    )
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--resume", action="store_true",
        help="continue an existing journal instead of failing on it",
    )
    add_exec_options(run_p)
    run_p.set_defaults(func=_cmd_run)

    resume_p = sub.add_parser(
        "resume", help="continue an interrupted campaign from its journal"
    )
    resume_p.add_argument("--journal", required=True, type=Path)
    add_exec_options(resume_p)
    resume_p.set_defaults(func=_cmd_resume)

    status_p = sub.add_parser("status", help="inspect a campaign journal")
    status_p.add_argument("--journal", required=True, type=Path)
    status_p.add_argument(
        "--telemetry-dir", type=str, default=None, metavar="DIR",
        help="telemetry directory for the rate/ETA estimate (default: "
        "<journal>.telemetry when it exists)",
    )
    status_p.set_defaults(func=_cmd_status)

    report_p = sub.add_parser(
        "report", help="render a journal as a self-contained HTML report"
    )
    report_p.add_argument("journal", type=Path)
    report_p.add_argument(
        "--out", type=Path, default=None,
        help="output HTML path (default: <journal>.html)",
    )
    report_p.add_argument(
        "--telemetry-dir", type=str, default=None, metavar="DIR",
        help="telemetry directory for the timeline (default: "
        "<journal>.telemetry when it exists)",
    )
    report_p.set_defaults(func=_cmd_report)

    serve_p = sub.add_parser(
        "serve",
        help="run the distributed campaign coordinator (owns all durable "
        "state; restart with the same --state-dir to resume)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0 = ephemeral; see --port-file)",
    )
    serve_p.add_argument(
        "--port-file", type=Path, default=None, metavar="FILE",
        help="write the bound port here once listening",
    )
    serve_p.add_argument(
        "--state-dir", type=Path, default=Path("campaigns"),
        help="campaign directories (manifest + shard journals) root "
        "(default: ./campaigns)",
    )
    serve_p.add_argument(
        "--shard-points", type=int, default=250,
        help="points per shard — the lease granularity (default 250)",
    )
    serve_p.add_argument(
        "--lease-seconds", type=float, default=30.0,
        help="silence after which a leased shard is reassigned (default 30)",
    )
    serve_p.add_argument(
        "--max-shard-retries", type=int, default=3,
        help="shard reassignments before its missing points are "
        "quarantined (default 3)",
    )
    serve_p.add_argument(
        "--fallback-seconds", type=float, default=10.0,
        help="degrade to local execution after this long with no workers "
        "(default 10)",
    )
    serve_p.add_argument(
        "--no-fallback", action="store_true",
        help="never execute locally — wait for workers indefinitely",
    )
    serve_p.add_argument(
        "--store", type=Path, default=None, metavar="FILE",
        help="results warehouse completed campaigns are ingested into "
        "(default: .repro_cache/warehouse.sqlite3)",
    )
    serve_p.add_argument(
        "--no-store", action="store_true",
        help="skip the results-warehouse auto-ingest",
    )
    serve_p.add_argument(
        "--console-port", type=int, default=None, metavar="PORT",
        help="mount the live HTTP console on this port (0 = ephemeral; "
        "URL is logged and written to <state-dir>/console.json)",
    )
    serve_p.add_argument(
        "--console-host", default=None, metavar="HOST",
        help="console bind address (default: the coordinator --host)",
    )
    serve_p.add_argument(
        "--stall-seconds", type=float, default=30.0,
        help="health rule: alert when no record arrives for this long "
        "while work is pending (default 30)",
    )
    add_auth_options(serve_p)
    serve_p.set_defaults(func=_cmd_serve)

    worker_p = sub.add_parser(
        "worker",
        help="run a stateless injector worker against a coordinator",
    )
    worker_p.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address",
    )
    worker_p.add_argument(
        "--reconnect-attempts", type=int, default=10,
        help="consecutive connection failures before giving up (default 10)",
    )
    add_auth_options(worker_p)
    worker_p.set_defaults(func=_cmd_worker)

    submit_p = sub.add_parser(
        "submit", help="queue a campaign on a running coordinator"
    )
    submit_p.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address",
    )
    submit_p.add_argument("--target", required=True)
    submit_p.add_argument(
        "--sampled", type=int, default=100, metavar="N",
        help="number of uniformly sampled injection points (default 100)",
    )
    submit_p.add_argument("--seed", type=int, default=0)
    submit_p.add_argument(
        "--name", default=None,
        help="campaign (directory) name; default derived from the target",
    )
    submit_p.add_argument(
        "--shard-points", type=int, default=None,
        help="points per shard (default: the coordinator's setting)",
    )
    submit_p.add_argument(
        "--max-cycles", type=int, default=None,
        help="per-injection cycle budget (default: the coordinator's)",
    )
    submit_p.add_argument(
        "--wait", action="store_true",
        help="poll the coordinator until the campaign completes",
    )
    submit_p.add_argument(
        "--poll", type=float, default=2.0,
        help="--wait poll interval in seconds (default 2)",
    )
    submit_p.add_argument(
        "--fail-on-alert", action="store_true",
        help="with --wait: exit nonzero the moment a coordinator health "
        "rule fires (stall, rate drop, quarantine spike, ...)",
    )
    add_auth_options(submit_p)
    submit_p.set_defaults(func=_cmd_submit)

    args = parser.parse_args(argv)
    if getattr(args, "verbose", False):
        obs.configure(progress=True)
    try:
        return args.func(args)
    except JournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (FileExistsError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
