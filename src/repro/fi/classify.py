"""Fault-outcome classification (the usual FI taxonomy)."""

from __future__ import annotations

import enum


class Outcome(enum.Enum):
    """End-to-end effect of one injected SEU."""

    #: Externally identical to the golden run (result and i/o match).
    BENIGN = "benign"
    #: Run completed but produced wrong data (silent data corruption).
    SDC = "sdc"
    #: Run did not reach the terminal state within the timeout.
    TIMEOUT = "timeout"
    #: The injection could not be executed: the run crashed its worker or
    #: exceeded the wall-clock budget repeatedly and was quarantined by the
    #: campaign runner. Unlike TIMEOUT (the *simulated target* ran too
    #: long), ERROR is an infrastructure verdict — nothing is known about
    #: the fault's effect on the target.
    ERROR = "error"

    @property
    def is_effective(self) -> bool:
        """True for outcomes that require attention (non-benign)."""
        return self is not Outcome.BENIGN
