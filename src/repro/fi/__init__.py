"""Ground-truth SEU injection campaigns on the simulated netlist.

This is the experiment MATEs exist to accelerate: inject a bit flip into a
flip-flop at a cycle, run the workload to completion, and classify the
outcome against the golden run. The campaign engine also consumes a pruned
fault list (from MATE replay) and verifies the paper's safety claim — every
pruned point is benign end-to-end.
"""

from repro.fi.campaign import Campaign, CampaignResult, CampaignTarget
from repro.fi.classify import Outcome
from repro.fi.journal import JournalError, JournalMismatch, load_journal
from repro.fi.runner import (
    CampaignRunner,
    RunnerConfig,
    RunReport,
    TargetSpec,
    load_result,
)
from repro.fi.targets import avr_target, msp430_target, named_target

__all__ = [
    "Campaign",
    "CampaignResult",
    "CampaignRunner",
    "CampaignTarget",
    "JournalError",
    "JournalMismatch",
    "Outcome",
    "RunReport",
    "RunnerConfig",
    "TargetSpec",
    "avr_target",
    "load_journal",
    "load_result",
    "msp430_target",
    "named_target",
]
