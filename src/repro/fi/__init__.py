"""Ground-truth SEU injection campaigns on the simulated netlist.

This is the experiment MATEs exist to accelerate: inject a bit flip into a
flip-flop at a cycle, run the workload to completion, and classify the
outcome against the golden run. The campaign engine also consumes a pruned
fault list (from MATE replay) and verifies the paper's safety claim — every
pruned point is benign end-to-end.
"""

from repro.fi.campaign import Campaign, CampaignResult, CampaignTarget
from repro.fi.classify import Outcome
from repro.fi.targets import avr_target, msp430_target

__all__ = [
    "Campaign",
    "CampaignResult",
    "CampaignTarget",
    "Outcome",
    "avr_target",
    "msp430_target",
]
