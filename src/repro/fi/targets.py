"""Ready-made campaign targets for the two cores and two test programs."""

from __future__ import annotations

from repro.cpu.avr import AvrSystem
from repro.cpu.msp430 import Msp430System
from repro.fi.campaign import CampaignTarget
from repro.programs import avr_conv, avr_fib, msp430_conv, msp430_fib
from repro.sim.simulator import SimulationResult, Simulator


def _avr_observables(testbench: AvrSystem, result: SimulationResult) -> object:
    return (tuple(testbench.ram.words), tuple((p, v) for _, p, v in testbench.port_log))


def _msp430_observables(
    testbench: Msp430System, result: SimulationResult
) -> object:
    return tuple(testbench.ram.words)


def avr_target(program: str, simulator: Simulator) -> CampaignTarget:
    """AVR campaign target running the halting ``fib`` or ``conv``."""
    words = {"fib": avr_fib, "conv": avr_conv}[program](halt=True)
    return CampaignTarget(
        name=f"avr-{program}",
        simulator=simulator,
        make_testbench=lambda: AvrSystem(words, halt_on_sleep=True),
        observables=_avr_observables,
    )


def msp430_target(program: str, simulator: Simulator) -> CampaignTarget:
    """MSP430 campaign target running the halting ``fib`` or ``conv``."""
    words = {"fib": msp430_fib, "conv": msp430_conv}[program](halt=True)
    return CampaignTarget(
        name=f"msp430-{program}",
        simulator=simulator,
        make_testbench=lambda: Msp430System(words, halt_on_cpuoff=True),
        observables=_msp430_observables,
    )
