"""Ready-made campaign targets for the two cores and two test programs."""

from __future__ import annotations

from repro.cpu.avr import AvrSystem
from repro.cpu.msp430 import Msp430System
from repro.fi.campaign import CampaignTarget
from repro.programs import avr_conv, avr_fib, msp430_conv, msp430_fib
from repro.sim.simulator import SimulationResult, Simulator


def _avr_observables(testbench: AvrSystem, result: SimulationResult) -> object:
    return (tuple(testbench.ram.words), tuple((p, v) for _, p, v in testbench.port_log))


def _msp430_observables(
    testbench: Msp430System, result: SimulationResult
) -> object:
    return tuple(testbench.ram.words)


def avr_target(program: str, simulator: Simulator) -> CampaignTarget:
    """AVR campaign target running the halting ``fib`` or ``conv``."""
    words = {"fib": avr_fib, "conv": avr_conv}[program](halt=True)
    return CampaignTarget(
        name=f"avr-{program}",
        simulator=simulator,
        make_testbench=lambda: AvrSystem(words, halt_on_sleep=True),
        observables=_avr_observables,
    )


def msp430_target(program: str, simulator: Simulator) -> CampaignTarget:
    """MSP430 campaign target running the halting ``fib`` or ``conv``."""
    words = {"fib": msp430_fib, "conv": msp430_conv}[program](halt=True)
    return CampaignTarget(
        name=f"msp430-{program}",
        simulator=simulator,
        make_testbench=lambda: Msp430System(words, halt_on_cpuoff=True),
        observables=_msp430_observables,
    )


#: Targets nameable on the ``python -m repro.fi`` command line and in
#: journal headers / worker specs: ``<core>-<program>``.
NAMED_TARGETS = ("avr-fib", "avr-conv", "msp430-fib", "msp430-conv")


def named_target(name: str) -> CampaignTarget:
    """Build one of the standard core+program targets by name.

    Synthesizes (memoized per process through :mod:`repro.eval.context`)
    in whatever process calls it — this is the factory campaign-runner
    workers invoke after ``spawn``, so each worker owns its own compiled
    simulator without pickling one across the process boundary.
    """
    if name not in NAMED_TARGETS:
        raise ValueError(
            f"unknown target {name!r} (expected one of {', '.join(NAMED_TARGETS)})"
        )
    from repro.eval.context import get_simulator

    core, _, program = name.partition("-")
    factory = avr_target if core == "avr" else msp430_target
    return factory(program, get_simulator(core))
