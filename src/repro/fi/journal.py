"""Crash-safe campaign journals: durable JSONL records with exact resume.

A journal is one JSON-lines file. The first line is the *header* — it keys
the campaign (netlist hash, workload name, point-list hash, seed, golden
run length) and embeds the full point list plus the target spec so a
``resume`` needs nothing but the journal path. Every later line is either
one injection *record* or the terminal *complete* marker.

Durability contract:

- every record is appended as one ``os.write`` to an ``O_APPEND`` file
  descriptor (a whole line including the newline, so concurrent readers
  and crash recovery never see interleaved fragments);
- ``fsync`` is batched (every ``fsync_interval`` records, plus on close
  and on the complete marker) — a crash loses at most one batch, never
  corrupts earlier lines;
- the loader tolerates a torn final line (the crash case) by dropping it
  with a counter bump; a malformed line *before* the end means real
  corruption and raises :class:`JournalError`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.fi.campaign import InjectionRecord
from repro.fi.classify import Outcome
from repro.obs import counter

FORMAT_VERSION = 1

#: Header fields that must match exactly for a resume to be accepted.
MATCH_KEYS = (
    "netlist_hash",
    "workload",
    "points_hash",
    "seed",
    "num_points",
    "golden_cycles",
    "max_cycles",
)


class JournalError(Exception):
    """The journal file is unusable (corrupt, wrong version, missing)."""


class JournalMismatch(JournalError):
    """The journal belongs to a different campaign than the one resuming.

    :attr:`mismatches` lists the offending resume-key fields as
    ``(field, found, expected)`` triples — *found* is what the journal on
    disk says, *expected* is what the resuming campaign derived.
    """

    def __init__(
        self,
        message: str,
        mismatches: list[tuple[str, object, object]] | None = None,
    ) -> None:
        super().__init__(message)
        self.mismatches = list(mismatches or [])


@dataclass
class JournalState:
    """Everything a loader recovers from a journal file."""

    header: dict
    #: Completed injections keyed by point index.
    records: dict[int, InjectionRecord] = field(default_factory=dict)
    #: Extra per-record metadata keyed by index: attempts, error strings,
    #: plus any fields from newer schema versions (preserved, not dropped).
    details: dict[int, dict] = field(default_factory=dict)
    complete: bool = False

    @property
    def points(self) -> list[tuple[str, int]]:
        """The campaign's full point list, as recorded in the header."""
        return [(dff, cycle) for dff, cycle in self.header["points"]]


def points_hash(points: list[tuple[str, int]]) -> str:
    """Order-sensitive content hash of a point list."""
    import hashlib

    blob = json.dumps([[dff, cycle] for dff, cycle in points])
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def load_journal(path: str | Path) -> JournalState:
    """Parse a journal, tolerating a torn trailing line.

    Partial journals (no complete marker) load fine — that is the whole
    point. Raises :class:`JournalError` on a missing file, an unparsable
    header, or corruption anywhere except the final line.
    """
    path = Path(path)
    if not path.exists():
        raise JournalError(f"no journal at {path}")
    raw = path.read_bytes()
    lines = raw.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    if not lines:
        raise JournalError(f"journal {path} is empty")
    try:
        header = json.loads(lines[0])
    except ValueError as exc:
        raise JournalError(f"journal {path} has an unparsable header: {exc}") from exc
    if header.get("kind") != "header" or header.get("version") != FORMAT_VERSION:
        raise JournalError(
            f"journal {path} has an unsupported header "
            f"(kind={header.get('kind')!r}, version={header.get('version')!r})"
        )
    state = JournalState(header=header)
    last = len(lines) - 1
    for lineno, line in enumerate(lines[1:], start=1):
        try:
            doc = json.loads(line)
            kind = doc["kind"]
            if kind == "record":
                record = InjectionRecord(
                    doc["dff"], doc["cycle"], Outcome(doc["outcome"])
                )
            elif kind != "complete":
                raise ValueError(f"unknown line kind {kind!r}")
        except (ValueError, KeyError, TypeError) as exc:
            if lineno == last:
                # Torn write from a crash mid-append: drop and recover.
                counter("campaign.journal.torn_tail").inc()
                break
            raise JournalError(
                f"journal {path} is corrupt at line {lineno + 1}: {exc}"
            ) from exc
        if kind == "complete":
            state.complete = True
        else:
            index = doc["i"]
            state.records[index] = record
            # Everything beyond the core record shape is detail — including
            # fields this version has never heard of, so journals written by
            # a *newer* schema (e.g. multi-bit "bit") load without loss.
            state.details[index] = {
                k: v
                for k, v in doc.items()
                if k not in ("kind", "i", "dff", "cycle", "outcome")
            }
    return state


def check_resumable(state: JournalState, expected_header: dict) -> None:
    """Refuse to resume a journal that keys a different campaign.

    The raised :class:`JournalMismatch` prints every offending resume-key
    field with the journal's value and the expected value side by side, so
    a mismatched shard or stale journal is diagnosable without re-deriving
    any key by hand.
    """
    mismatches = [
        (key, state.header.get(key), expected_header[key])
        for key in MATCH_KEYS
        if state.header.get(key) != expected_header[key]
    ]
    if mismatches:
        width = max(len(key) for key, _, _ in mismatches)
        lines = [
            f"  {key.ljust(width)}  found={found!r}  expected={expected!r}"
            for key, found, expected in mismatches
        ]
        raise JournalMismatch(
            "journal does not match this campaign — refusing to resume "
            "(delete the journal to start over):\n" + "\n".join(lines),
            mismatches,
        )


class CampaignJournal:
    """Append-side of a journal: crash-safe writes with batched fsync."""

    def __init__(
        self, path: str | Path, header: dict, fsync_interval: int = 16
    ) -> None:
        self.path = Path(path)
        self.header = header
        self.fsync_interval = max(1, fsync_interval)
        self._unsynced = 0
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        if fresh:
            self._write_line({"kind": "header", "version": FORMAT_VERSION, **header})
            self._sync()

    # ------------------------------------------------------------------
    def _write_line(self, doc: dict) -> None:
        os.write(self._fd, (json.dumps(doc) + "\n").encode())

    def _sync(self) -> None:
        os.fsync(self._fd)
        self._unsynced = 0

    def append_record(
        self,
        index: int,
        record: InjectionRecord,
        attempts: int = 1,
        error: str | None = None,
        seconds: float | None = None,
        worker: int | None = None,
        pruned_by: str | None = None,
        equivalence_rep: tuple[str, int] | None = None,
    ) -> None:
        """Durably append one injection outcome.

        ``seconds`` is the measured wall time of the injection and
        ``worker`` the OS pid of the process that executed it; both are
        optional telemetry used by ``python -m repro.fi report``.
        ``pruned_by`` names the static layer that decided this outcome
        without simulation (e.g. ``"defuse"``); ``equivalence_rep`` is the
        (dff, cycle) representative whose injected outcome a back-annotated
        point inherits. Both travel through the forward-compat ``details``
        path on load.
        """
        doc = {
            "kind": "record",
            "i": index,
            "dff": record.dff_name,
            "cycle": record.cycle,
            "outcome": record.outcome.value,
            "attempts": attempts,
        }
        if error is not None:
            doc["error"] = error
        if seconds is not None:
            doc["seconds"] = round(seconds, 6)
        if worker is not None:
            doc["worker"] = worker
        if pruned_by is not None:
            doc["pruned_by"] = pruned_by
        if equivalence_rep is not None:
            rep_dff, rep_cycle = equivalence_rep
            doc["equivalence_rep"] = [rep_dff, int(rep_cycle)]
        self._write_line(doc)
        self._unsynced += 1
        if self._unsynced >= self.fsync_interval:
            self._sync()

    def mark_complete(self, num_records: int) -> None:
        """Write the terminal marker (campaign fully executed)."""
        self._write_line({"kind": "complete", "records": num_records})
        self._sync()

    def close(self) -> None:
        """Flush everything to disk and release the descriptor."""
        if self._fd is not None:
            self._sync()
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> CampaignJournal:
        return self

    def __exit__(self, *exc) -> None:
        self.close()
