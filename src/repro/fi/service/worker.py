"""The remote injector worker: a stateless shard executor over TCP.

A worker owns no durable state at all — every outcome it produces is
streamed to the coordinator record by record, and the coordinator journals
them. That makes the worker's failure story trivial: SIGKILL one mid-shard
and the coordinator's lease machinery re-runs only the shard's missing
points on another worker; nothing is lost but the in-flight injection.

Per shard the worker runs the existing inline injection path — build the
target from the shipped :class:`~repro.fi.runner.TargetSpec` (cached per
spec, so consecutive shards of one campaign reuse the compiled simulator
and golden run), inject each outstanding point with the runner's bounded
retry + jittered backoff, and stream one ``record`` frame per outcome.
Telemetry (:mod:`repro.obs.remote` spans and metrics) is buffered locally
and piggybacked on those frames; the coordinator relays it into the
campaign's telemetry directory, so dashboards, Prometheus export, and the
warehouse see remote workers exactly like local pool workers.

A worker survives coordinator restarts: a dropped connection is retried
with jittered backoff for a bounded number of consecutive attempts before
the worker gives up.
"""

from __future__ import annotations

import os
import sys
import time

from repro.fi.campaign import Campaign
from repro.fi.classify import Outcome
from repro.fi.runner import TargetSpec, backoff_delay
from repro.fi.service import protocol
from repro.fi.service.protocol import Connection, ProtocolError
from repro.obs import counter, events, remote, resource, span


class ShardExecutor:
    """Builds (and caches) campaigns per target spec; injects shard points.

    Also used by the coordinator's local-fallback path, so the remote and
    degraded execution modes share one code path.
    """

    def __init__(self) -> None:
        self._campaigns: dict[tuple[str, int], Campaign] = {}

    def campaign_for(self, spec_doc: dict, max_cycles: int) -> Campaign:
        """The (cached) campaign for one target spec.

        Building runs synthesis, compile, and the golden execution — the
        expensive part of taking a first shard of a new campaign; every
        later shard with the same spec is free.
        """
        import json

        key = (json.dumps(spec_doc, sort_keys=True), max_cycles)
        if key not in self._campaigns:
            with span("service/build-target"):
                target = TargetSpec.from_dict(spec_doc).build()
                self._campaigns[key] = Campaign(target, max_cycles=max_cycles)
        return self._campaigns[key]

    def inject_with_retry(
        self,
        campaign: Campaign,
        dff_name: str,
        cycle: int,
        max_retries: int,
        retry_backoff: float,
        retry_jitter: float,
    ) -> tuple[Outcome, int, float, str | None]:
        """One point through the inline retry path.

        Returns ``(outcome, attempts, seconds, error)``; exhausted retries
        quarantine the point as a terminal :attr:`Outcome.ERROR` record —
        the same poison-point semantics as the single-host runner.
        """
        attempts = 0
        while True:
            attempts += 1
            start = time.monotonic()
            try:
                outcome = campaign.inject(dff_name, cycle)
            except Exception as exc:  # noqa: BLE001 - quarantine boundary
                error = f"{type(exc).__name__}: {exc}"
                if attempts > max_retries:
                    counter("service.worker.quarantined").inc()
                    return (
                        Outcome.ERROR, attempts,
                        time.monotonic() - start, error,
                    )
                counter("service.worker.retries").inc()
                time.sleep(
                    backoff_delay(attempts, retry_backoff, jitter=retry_jitter)
                )
            else:
                return outcome, attempts, time.monotonic() - start, None


def _run_shard(
    connection: Connection,
    shard_msg: dict,
    executor: ShardExecutor,
    buffer: remote.TelemetryBuffer,
) -> None:
    """Execute one leased shard, streaming records in lockstep.

    Raises :class:`ProtocolError`/``OSError`` when the connection dies (the
    caller reconnects; the coordinator requeues the shard). An ``abort``
    reply — the lease expired and the shard was reassigned — drops the
    rest of the shard silently.
    """
    campaign_name = shard_msg["campaign"]
    shard_id = shard_msg["shard"]
    points = [(dff, int(cycle)) for dff, cycle in shard_msg["points"]]
    campaign = executor.campaign_for(
        shard_msg["target"], int(shard_msg["max_cycles"])
    )
    heartbeat_seconds = float(shard_msg.get("heartbeat_seconds", 5.0))
    last_sent = time.monotonic()
    with span(
        "service/shard", campaign=campaign_name, shard=shard_id,
        points=len(shard_msg["indices"]),
    ):
        for index in shard_msg["indices"]:
            if time.monotonic() - last_sent > heartbeat_seconds:
                reply = connection.call(
                    {
                        "kind": "heartbeat",
                        "campaign": campaign_name,
                        "shard": shard_id,
                    }
                )
                last_sent = time.monotonic()
                if reply.get("kind") == "abort":
                    return
            dff_name, cycle = points[index]
            buffer.emit("inject-start", i=index, dff=dff_name, cycle=cycle)
            outcome, attempts, seconds, error = executor.inject_with_retry(
                campaign, dff_name, cycle,
                max_retries=int(shard_msg.get("max_retries", 1)),
                retry_backoff=float(shard_msg.get("retry_backoff", 0.05)),
                retry_jitter=float(shard_msg.get("retry_jitter", 0.25)),
            )
            # Refresh this worker's resource.* gauges (rate-limited) so
            # the cumulative snapshot below carries host health home.
            resource.sample_self()
            buffer.flush_metrics()
            record = {
                "kind": "record",
                "campaign": campaign_name,
                "shard": shard_id,
                "i": index,
                "dff": dff_name,
                "cycle": cycle,
                "outcome": outcome.value,
                "attempts": attempts,
                "seconds": round(seconds, 6),
                "worker": os.getpid(),
                "telemetry": buffer.drain(),
            }
            if error is not None:
                record["error"] = error
            reply = connection.call(record)
            last_sent = time.monotonic()
            if reply.get("kind") == "abort":
                return
    buffer.flush_metrics()
    connection.call(
        {
            "kind": "shard_done",
            "campaign": campaign_name,
            "shard": shard_id,
            "telemetry": buffer.drain(),
        }
    )


def run_worker(
    host: str,
    port: int,
    reconnect_attempts: int = 10,
    reconnect_backoff: float = 0.5,
    reconnect_cap: float = 5.0,
    log=None,
    token: str | None = None,
) -> int:
    """The worker main loop; returns a process exit code.

    Connects (with a version handshake), then alternates between asking
    for work and executing shards until the coordinator says ``shutdown``.
    A lost connection — coordinator crash or restart — is retried with
    jittered backoff up to ``reconnect_attempts`` consecutive failures, so
    workers ride out a coordinator kill -9 + resume without operator help.
    ``token`` is the shared-secret auth token of coordinators running with
    ``--auth-token``; a wrong or missing token is rejected at handshake.
    """
    log = log or (lambda msg: print(msg, file=sys.stderr))
    executor = ShardExecutor()
    buffer = remote.TelemetryBuffer()
    events.install_sink(buffer)
    failures = 0
    try:
        while True:
            try:
                connection = Connection.connect(host, port)
            except OSError as exc:
                failures += 1
                if failures > reconnect_attempts:
                    log(
                        f"worker: giving up after {failures} failed "
                        f"connection attempts to {host}:{port} ({exc})"
                    )
                    return 1
                delay = backoff_delay(
                    failures, reconnect_backoff, cap=reconnect_cap
                )
                time.sleep(delay)
                continue
            try:
                extra: dict = {"telemetry": remote.hello_record("worker")}
                if token is not None:
                    extra["token"] = token
                protocol.handshake(connection, "worker", **extra)
                failures = 0
                log(f"worker {os.getpid()}: connected to {host}:{port}")
                while True:
                    reply = connection.call({"kind": "request"})
                    kind = reply.get("kind")
                    if kind == "shard":
                        _run_shard(connection, reply, executor, buffer)
                    elif kind == "idle":
                        # Blocking sleep is fine: there is nothing else to do.
                        time.sleep(float(reply.get("delay", 1.0)))
                    elif kind == "shutdown":
                        log(f"worker {os.getpid()}: coordinator shut down")
                        return 0
                    else:
                        raise ProtocolError(
                            f"unexpected reply kind {kind!r} to a request"
                        )
            except (ProtocolError, OSError) as exc:
                failures += 1
                counter("service.worker.reconnects").inc()
                log(f"worker {os.getpid()}: connection lost ({exc}), retrying")
                if failures > reconnect_attempts:
                    log(f"worker: giving up after {failures} failures")
                    return 1
                time.sleep(
                    backoff_delay(failures, reconnect_backoff, cap=reconnect_cap)
                )
            finally:
                connection.close()
    finally:
        events.remove_sink(buffer)
        buffer.close()
