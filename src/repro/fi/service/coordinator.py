"""The campaign coordinator: an asyncio TCP server owning all durable state.

One coordinator serves any number of injector workers and submit clients
over the :mod:`repro.fi.service.protocol` wire format. Its design
principle is the DAVOS host/injector split taken to its logical end:
workers are completely stateless, so every failure mode reduces to "redo
the missing work", and all durability questions reduce to the shard
journals — which already survive kill -9 by construction.

Lease state machine (per shard)::

    pending ──request──▶ leased ──all records──▶ done
       ▲                   │
       │   lease expiry /  │
       └── worker death ───┘   (retries += 1, next_eligible = now +
                                jittered exponential backoff; retries
                                beyond the bound quarantine the shard's
                                missing points as Outcome.ERROR records)

Failure matrix:

- **worker disconnect / SIGKILL** — the connection drops (or the lease
  deadline passes for a wedged worker); the shard returns to ``pending``
  with backoff and is reassigned. Records the dead worker already
  streamed are journaled and never re-run.
- **stale worker** — a worker whose lease was expired keeps streaming;
  its frames are answered ``abort`` and its records ignored (duplicates
  are dropped by index).
- **repeated shard failure** — after ``max_shard_retries`` reassignments
  the shard's *missing* points (the poison survives, innocent completed
  neighbours don't) are quarantined via the existing poison-point path:
  terminal ``Outcome.ERROR`` records with the failure reason.
- **coordinator crash (kill -9)** — restart with the same state dir; the
  manifest and shard journals are reloaded, done indices are skipped,
  and the campaign continues. The merged journal is record-for-record
  identical to an uninterrupted run.
- **zero workers** — after ``fallback_seconds`` without any connected
  worker, shards are executed locally through the same
  :class:`~repro.fi.service.worker.ShardExecutor` code path (graceful
  degradation to single-host operation).

Campaigns queue FIFO; shards dispatch from the oldest campaign that has
eligible work, so one stuck shard never idles the whole fleet.
"""

from __future__ import annotations

import asyncio
import hmac
import json
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.fi.classify import Outcome
from repro.fi.journal import CampaignJournal, InjectionRecord
from repro.fi.runner import TargetSpec, backoff_delay, sample_points
from repro.fi.service import protocol, shards as shards_mod
from repro.fi.service.protocol import ProtocolError
from repro.fi.service.shards import (
    CampaignManifest,
    CONSOLE_NAME,
    MANIFEST_NAME,
    TELEMETRY_DIR,
    merge_campaign_dir,
    shard_journal_path,
)
from repro.fi.service.worker import ShardExecutor
from repro.fi.targets import NAMED_TARGETS
from repro.netlist.json_io import netlist_content_hash
from repro.obs import counter, gauge, health, remote, resource, span
from repro.obs.http import ConsoleProvider, ConsoleServer, merged_metrics_text

#: Lease owner id of the coordinator's own local-fallback executor.
LOCAL_OWNER = -1

PENDING = "pending"
LEASED = "leased"
DONE = "done"


@dataclass
class ServiceConfig:
    """Tuning knobs of the coordinator."""

    host: str = "127.0.0.1"
    port: int = 0  #: 0 = ephemeral; read the bound port from ``.port``.
    #: Campaign directories (manifest + shard journals) live under here.
    state_dir: str | Path = Path("campaigns")
    #: Points per shard (the lease granularity).
    shard_points: int = 250
    #: A leased shard with no frames for this long is declared lost.
    lease_seconds: float = 30.0
    #: Workers send a heartbeat when idle within a shard this long.
    heartbeat_seconds: float = 5.0
    #: Reply delay for workers when no shard is eligible.
    idle_delay: float = 1.0
    #: Reassignments of one shard before its missing points quarantine.
    max_shard_retries: int = 3
    #: Base / cap / jitter of the shard-reassignment backoff.
    retry_backoff: float = 0.25
    retry_backoff_cap: float = 5.0
    retry_jitter: float = 0.25
    #: Per-point retry bound forwarded to workers (poison-point path).
    max_retries: int = 1
    point_retry_backoff: float = 0.05
    #: Degrade to local execution after this long with zero workers
    #: connected; ``None`` disables the fallback entirely.
    fallback_seconds: float | None = 10.0
    #: Journal fsync batching (records per fsync), as in RunnerConfig.
    fsync_interval: int = 16
    #: Reaper cadence (lease expiry, fallback, completion checks).
    tick: float = 0.25
    #: Cycle budget for golden runs of submitted campaigns.
    default_max_cycles: int = 50_000
    #: Results warehouse for completed campaigns; None disables ingest.
    store_path: str | Path | None = None
    #: When set, the bound port is written here once the server is up —
    #: how test harnesses and the smoke driver discover an ephemeral port.
    port_file: str | Path | None = None
    #: Mount the live HTTP console on this port (0 = ephemeral); ``None``
    #: leaves the console off entirely.
    console_port: int | None = None
    #: Bind address of the console (defaults to the service host).
    console_host: str | None = None
    #: Shared-secret worker/submit auth token; ``None`` runs open. The
    #: same token gates the console's mutating routes.
    auth_token: str | None = None
    #: Stall threshold of the health rule engine (no record landed for
    #: this long while work is pending).
    health_stall_seconds: float = 30.0


class _Shard:
    """Runtime lease state of one shard (durable state is its journal)."""

    def __init__(self, shard_id: int, start: int, stop: int) -> None:
        self.shard_id = shard_id
        self.start = start
        self.stop = stop
        self.status = PENDING
        self.done: set[int] = set()  # local indices journaled
        self.quarantined = 0
        self.retries = 0
        self.next_eligible = 0.0
        self.owner: int | None = None
        self.deadline = float("inf")
        self.journal: CampaignJournal | None = None

    @property
    def total(self) -> int:
        return self.stop - self.start

    @property
    def missing(self) -> list[int]:
        return [i for i in range(self.total) if i not in self.done]


class _CampaignState:
    """One queued/running campaign: manifest + shard lease table."""

    def __init__(self, manifest: CampaignManifest, directory: Path) -> None:
        self.manifest = manifest
        self.directory = directory
        self.shards = [
            _Shard(i, start, stop)
            for i, (start, stop) in enumerate(manifest.shards)
        ]
        self.activated: float | None = None
        self.finalizing = False
        self.executed = 0  # records received by this coordinator process
        self.outcomes: dict[str, int] = {}  # durable per-campaign tallies
        self.store_id: int | None = None  # warehouse id after auto-ingest

    @property
    def name(self) -> str:
        return self.manifest.name

    def load_progress(self) -> None:
        """Recover each shard's done set from its journal on disk."""
        for shard in self.shards:
            state = shards_mod.load_shard_state(
                self.directory, shard.shard_id
            )
            if state is not None:
                shard.done = set(state.records)
                for record in state.records.values():
                    self.outcomes[record.outcome.value] = (
                        self.outcomes.get(record.outcome.value, 0) + 1
                    )
                for index, detail in state.details.items():
                    if detail.get("error") and state.records[
                        index
                    ].outcome is Outcome.ERROR:
                        shard.quarantined += 1
            if len(shard.done) >= shard.total:
                shard.status = DONE

    @property
    def complete(self) -> bool:
        return all(s.status == DONE for s in self.shards)

    @property
    def done_points(self) -> int:
        return sum(len(s.done) for s in self.shards)


@dataclass
class _Conn:
    """One live client connection (worker or submit client)."""

    conn_id: int
    role: str
    pid: int
    hello: dict
    writer: asyncio.StreamWriter
    peer: str = ""
    shards_taken: int = 0
    records: int = 0
    authenticated: bool = False
    telemetry_files: dict[str, Path] = field(default_factory=dict)


class Coordinator:
    """The distributed campaign service (see module docstring)."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.state_dir = Path(self.config.state_dir)
        self.port: int | None = None
        self.started = threading.Event()
        self._campaigns: dict[str, _CampaignState] = {}
        self._queue: list[str] = []  # FIFO campaign order
        self._workers: dict[int, _Conn] = {}
        self._next_conn_id = 0
        self._executor = ShardExecutor()  # local fallback + submit prepare
        self._prepare_lock: asyncio.Lock | None = None
        self._local_task: asyncio.Task | None = None
        self._shutdown: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._relay_writers: dict[tuple[str, int], remote.TelemetryWriter] = {}
        self._open_writers: set[asyncio.StreamWriter] = set()
        self._log = lambda msg: print(msg, file=sys.stderr, flush=True)
        self.console: ConsoleServer | None = None
        self.monitor = health.HealthMonitor(
            rules=health.default_rules(
                stall_seconds=self.config.health_stall_seconds
            ),
            log=lambda msg: self._log(f"coordinator: {msg}"),
        )
        #: Latest relayed per-worker host footprint (pid → value), peeked
        #: from the telemetry stream for /status.json and the RSS rule.
        self._worker_rss: dict[int, float] = {}
        self._worker_cpu: dict[int, float] = {}
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Blocking entry point (used by the CLI and thread harnesses)."""
        return asyncio.run(self.run_async())

    def request_shutdown(self) -> None:
        """Ask the serve loop to stop (signal handlers, other threads).

        Idempotent: a no-op once the loop has already stopped.
        """
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None:
            try:
                loop.call_soon_threadsafe(shutdown.set)
            except RuntimeError:
                pass  # loop already closed — nothing left to stop

    async def run_async(self) -> int:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._prepare_lock = asyncio.Lock()
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self._rescan_state_dir()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.port_file is not None:
            Path(self.config.port_file).write_text(f"{self.port}\n")
        if self.config.console_port is not None:
            self.console = ConsoleServer(
                _CoordinatorConsole(self),
                host=self.config.console_host or self.config.host,
                port=self.config.console_port,
                auth_token=self.config.auth_token,
            )
            await self.console.start()
            (self.state_dir / CONSOLE_NAME).write_text(
                json.dumps({"url": self.console.url, "port": self.console.port})
                + "\n"
            )
            self._log(f"coordinator: live console at {self.console.url}")
        self.started.set()
        self._log(
            f"coordinator: serving on {self.config.host}:{self.port} "
            f"(state dir {self.state_dir}, "
            f"{len(self._queue)} campaign(s) recovered"
            + (", auth required" if self.config.auth_token else "")
            + ")"
        )
        reaper = asyncio.create_task(self._reaper())
        try:
            await self._shutdown.wait()
        finally:
            reaper.cancel()
            if self._local_task is not None:
                self._local_task.cancel()
            self._server.close()
            if self.console is not None:
                await self.console.stop()
                (self.state_dir / CONSOLE_NAME).unlink(missing_ok=True)
            # Nudge idle connections out of their blocking read so the
            # handlers finish on their own instead of being cancelled.
            for writer in list(self._open_writers):
                writer.close()
            await self._server.wait_closed()
            self._close_journals()
            self._log("coordinator: stopped")
        return 0

    def _rescan_state_dir(self) -> None:
        """Re-enqueue every unfinished campaign found on disk."""
        candidates = sorted(
            p for p in self.state_dir.iterdir()
            if p.is_dir() and (p / MANIFEST_NAME).exists()
        ) if self.state_dir.exists() else []
        for directory in candidates:
            try:
                manifest = CampaignManifest.load(directory)
            except Exception as exc:  # noqa: BLE001 - skip broken dirs
                self._log(f"coordinator: skipping {directory}: {exc}")
                continue
            if manifest.status in ("complete", "failed"):
                continue
            manifest.status = "running"
            manifest.save(directory)
            state = _CampaignState(manifest, directory)
            state.load_progress()
            state.activated = time.monotonic()
            self._campaigns[manifest.name] = state
            self._queue.append(manifest.name)
            counter("service.campaigns.recovered").inc()
            self._log(
                f"coordinator: recovered campaign {manifest.name!r} "
                f"({state.done_points}/{manifest.num_points} points done)"
            )
            if state.complete and not state.finalizing:
                # Crashed after the last record but before the merge.
                state.finalizing = True
                asyncio.create_task(self._finalize_campaign(state))

    def _close_journals(self) -> None:
        for state in self._campaigns.values():
            for shard in state.shards:
                if shard.journal is not None:
                    shard.journal.close()
                    shard.journal = None
        for writer in self._relay_writers.values():
            writer.close()
        self._relay_writers.clear()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        conn: _Conn | None = None
        self._open_writers.add(writer)
        try:
            hello = await protocol.read_message(reader)
            if hello is None:
                return
            if (
                hello.get("kind") != "hello"
                or hello.get("version") != protocol.PROTOCOL_VERSION
            ):
                await protocol.send_message(
                    writer,
                    {
                        "kind": "error",
                        "reason": (
                            "unsupported hello "
                            f"(kind={hello.get('kind')!r}, "
                            f"version={hello.get('version')!r}); "
                            f"this coordinator speaks version "
                            f"{protocol.PROTOCOL_VERSION}"
                        ),
                    },
                )
                return
            if self.config.auth_token is not None:
                presented = str(hello.get("token") or "")
                if not hmac.compare_digest(
                    presented.encode(), str(self.config.auth_token).encode()
                ):
                    counter("service.auth.rejected").inc()
                    self._log(
                        f"coordinator: rejected {peer} "
                        f"(bad or missing auth token)"
                    )
                    await protocol.send_message(
                        writer,
                        {
                            "kind": "error",
                            "reason": (
                                "authentication failed: bad or missing "
                                "token (set --auth-token/REPRO_FI_TOKEN)"
                            ),
                        },
                    )
                    return
            role = str(hello.get("role", "client"))
            self._next_conn_id += 1
            conn = _Conn(
                conn_id=self._next_conn_id,
                role=role,
                pid=int(hello.get("pid", 0)),
                hello=hello,
                writer=writer,
                peer=str(peer),
                authenticated=self.config.auth_token is not None,
            )
            if role == "worker":
                self._workers[conn.conn_id] = conn
                counter("service.workers.connected").inc()
                gauge("service.workers").set(len(self._workers))
            await protocol.send_message(
                writer,
                {
                    "kind": "welcome",
                    "version": protocol.PROTOCOL_VERSION,
                    "lease_seconds": self.config.lease_seconds,
                    "heartbeat_seconds": self.config.heartbeat_seconds,
                },
            )
            while not self._shutdown.is_set():
                message = await protocol.read_message(reader)
                if message is None:
                    break
                reply = await self._dispatch(conn, message)
                await protocol.send_message(writer, reply)
        except (ProtocolError, ConnectionError, OSError) as exc:
            if conn is not None and conn.role == "worker":
                self._log(
                    f"coordinator: worker {conn.pid} connection error: {exc}"
                )
        finally:
            self._open_writers.discard(writer)
            if conn is not None and conn.role == "worker":
                self._workers.pop(conn.conn_id, None)
                gauge("service.workers").set(len(self._workers))
                self._release_worker_leases(
                    conn.conn_id, reason="worker disconnected"
                )
            writer.close()

    async def _dispatch(self, conn: _Conn, message: dict) -> dict:
        kind = message.get("kind")
        if kind == "request":
            return self._handle_request(conn)
        if kind == "record":
            return self._handle_record(conn.conn_id, message, conn)
        if kind == "heartbeat":
            return self._handle_heartbeat(conn.conn_id, message)
        if kind == "shard_done":
            return self._handle_shard_done(conn.conn_id, message, conn)
        if kind == "submit":
            return await self._handle_submit(message)
        if kind == "status":
            return self._status_doc(message.get("campaign"))
        return {"kind": "error", "reason": f"unknown message kind {kind!r}"}

    # ------------------------------------------------------------------
    # Worker messages
    # ------------------------------------------------------------------
    def _eligible_shard(
        self, now: float
    ) -> tuple[_CampaignState, _Shard] | None:
        """The next dispatchable shard, in campaign FIFO order."""
        for name in self._queue:
            state = self._campaigns[name]
            if state.finalizing:
                continue
            for shard in state.shards:
                if shard.status == PENDING and shard.next_eligible <= now:
                    return state, shard
        return None

    def _handle_request(self, conn: _Conn) -> dict:
        if self._shutdown.is_set():
            return {"kind": "shutdown"}
        pick = self._eligible_shard(time.monotonic())
        if pick is None:
            return {"kind": "idle", "delay": self.config.idle_delay}
        state, shard = pick
        return self._lease(state, shard, conn.conn_id, conn)

    def _lease(
        self,
        state: _CampaignState,
        shard: _Shard,
        owner: int,
        conn: _Conn | None,
    ) -> dict:
        manifest = state.manifest
        shard.status = LEASED
        shard.owner = owner
        shard.deadline = time.monotonic() + self.config.lease_seconds
        if conn is not None:
            conn.shards_taken += 1
        if state.activated is None:
            state.activated = time.monotonic()
        counter("service.shards.leased").inc()
        start, stop = shard.start, shard.stop
        return {
            "kind": "shard",
            "campaign": manifest.name,
            "shard": shard.shard_id,
            "target": dict(manifest.target),
            "max_cycles": manifest.max_cycles,
            "points": [
                [dff, cycle] for dff, cycle in manifest.points[start:stop]
            ],
            "indices": shard.missing,
            "lease_seconds": self.config.lease_seconds,
            "heartbeat_seconds": self.config.heartbeat_seconds,
            "max_retries": self.config.max_retries,
            "retry_backoff": self.config.point_retry_backoff,
            "retry_jitter": self.config.retry_jitter,
        }

    def _owned_shard(
        self, owner: int, message: dict
    ) -> tuple[_CampaignState, _Shard] | None:
        state = self._campaigns.get(str(message.get("campaign")))
        if state is None:
            return None
        shard_id = message.get("shard")
        if not isinstance(shard_id, int) or not (
            0 <= shard_id < len(state.shards)
        ):
            return None
        shard = state.shards[shard_id]
        if shard.status != LEASED or shard.owner != owner:
            return None
        return state, shard

    def _handle_record(
        self, owner: int, message: dict, conn: _Conn | None
    ) -> dict:
        owned = self._owned_shard(owner, message)
        if owned is None:
            counter("service.records.aborted").inc()
            return {"kind": "abort"}
        state, shard = owned
        self._relay_telemetry(state, conn, message.get("telemetry"))
        try:
            index = int(message["i"])
            record = InjectionRecord(
                str(message["dff"]), int(message["cycle"]),
                Outcome(str(message["outcome"])),
            )
        except (KeyError, ValueError, TypeError) as exc:
            return {"kind": "error", "reason": f"bad record: {exc}"}
        if not 0 <= index < shard.total:
            return {
                "kind": "error",
                "reason": f"record index {index} outside shard {shard.shard_id}",
            }
        shard.deadline = time.monotonic() + self.config.lease_seconds
        if index in shard.done:
            # A stale duplicate (e.g. re-sent after reconnect): drop it.
            counter("service.records.duplicate").inc()
            return {"kind": "ok"}
        self._append_record(
            state, shard, index, record,
            attempts=int(message.get("attempts", 1)),
            error=message.get("error"),
            seconds=message.get("seconds"),
            worker=message.get("worker"),
        )
        if conn is not None:
            conn.records += 1
        return {"kind": "ok"}

    def _append_record(
        self,
        state: _CampaignState,
        shard: _Shard,
        index: int,
        record: InjectionRecord,
        attempts: int = 1,
        error: str | None = None,
        seconds: float | None = None,
        worker: int | None = None,
    ) -> None:
        if shard.journal is None:
            shard.journal = CampaignJournal(
                shard_journal_path(state.directory, shard.shard_id),
                state.manifest.shard_header(shard.shard_id),
                self.config.fsync_interval,
            )
        shard.journal.append_record(
            index, record, attempts=attempts, error=error,
            seconds=seconds, worker=worker,
        )
        shard.done.add(index)
        state.executed += 1
        state.outcomes[record.outcome.value] = (
            state.outcomes.get(record.outcome.value, 0) + 1
        )
        counter("service.records").inc()
        counter(f"campaign.outcome.{record.outcome.value}").inc()
        if error is not None and record.outcome is Outcome.ERROR:
            shard.quarantined += 1
            counter("service.points.quarantined").inc()
        if self.console is not None and self.console.has_subscribers:
            self.console.publish(
                "record",
                {
                    "campaign": state.name,
                    "outcome": record.outcome.value,
                    "worker": worker,
                    "done": state.done_points,
                    "total": state.manifest.num_points,
                },
            )
        if len(shard.done) >= shard.total:
            self._finish_shard(state, shard)

    def _finish_shard(self, state: _CampaignState, shard: _Shard) -> None:
        shard.status = DONE
        shard.owner = None
        shard.deadline = float("inf")
        if shard.journal is not None:
            shard.journal.close()
            shard.journal = None
        counter("service.shards.done").inc()
        if state.complete and not state.finalizing:
            state.finalizing = True
            asyncio.create_task(self._finalize_campaign(state))

    def _handle_heartbeat(self, owner: int, message: dict) -> dict:
        owned = self._owned_shard(owner, message)
        if owned is None:
            return {"kind": "abort"}
        _, shard = owned
        shard.deadline = time.monotonic() + self.config.lease_seconds
        return {"kind": "ok"}

    def _handle_shard_done(
        self, owner: int, message: dict, conn: _Conn | None
    ) -> dict:
        owned = self._owned_shard(owner, message)
        if owned is None:
            return {"kind": "abort"}
        state, shard = owned
        self._relay_telemetry(state, conn, message.get("telemetry"))
        if len(shard.done) >= shard.total:
            self._finish_shard(state, shard)
        else:
            # The worker believes it finished but records are missing —
            # release the lease so the gap is re-run elsewhere.
            self._release_shard(
                state, shard, reason="shard_done with missing records"
            )
        return {"kind": "ok"}

    # ------------------------------------------------------------------
    # Lease expiry / failure handling
    # ------------------------------------------------------------------
    def _release_worker_leases(self, owner: int, reason: str) -> None:
        for state in self._campaigns.values():
            for shard in state.shards:
                if shard.status == LEASED and shard.owner == owner:
                    self._release_shard(state, shard, reason)

    def _release_shard(
        self, state: _CampaignState, shard: _Shard, reason: str
    ) -> None:
        """One failed shard attempt: requeue with backoff, or quarantine."""
        shard.status = PENDING
        shard.owner = None
        shard.deadline = float("inf")
        shard.retries += 1
        counter("service.shards.released").inc()
        if shard.retries > self.config.max_shard_retries:
            self._quarantine_shard(state, shard, reason)
            return
        delay = backoff_delay(
            shard.retries,
            self.config.retry_backoff,
            cap=self.config.retry_backoff_cap,
            jitter=self.config.retry_jitter,
        )
        shard.next_eligible = time.monotonic() + delay
        self._log(
            f"coordinator: shard {shard.shard_id} of {state.name!r} "
            f"released ({reason}); retry {shard.retries}/"
            f"{self.config.max_shard_retries} in {delay:.2f}s"
        )

    def _quarantine_shard(
        self, state: _CampaignState, shard: _Shard, reason: str
    ) -> None:
        """Exhausted shard retries: quarantine the *missing* points only.

        Completed points keep their real outcomes — the poison-point path
        grants terminal :attr:`Outcome.ERROR` records to exactly the
        points that never produced one.
        """
        missing = shard.missing
        if not missing:
            self._finish_shard(state, shard)
            return
        self._log(
            f"coordinator: quarantining {len(missing)} point(s) of shard "
            f"{shard.shard_id} in {state.name!r} after "
            f"{shard.retries - 1} reassignment(s) ({reason})"
        )
        points = state.manifest.points
        error = (
            f"quarantined after {shard.retries - 1} shard "
            f"reassignment(s): {reason}"
        )
        shard.status = LEASED  # guard against concurrent dispatch
        shard.owner = LOCAL_OWNER
        for index in missing:
            dff, cycle = points[shard.start + index]
            self._append_record(
                state, shard, index,
                InjectionRecord(dff, cycle, Outcome.ERROR),
                attempts=shard.retries, error=error,
            )

    # ------------------------------------------------------------------
    # Telemetry relay
    # ------------------------------------------------------------------
    def _relay_telemetry(
        self, state: _CampaignState, conn: _Conn | None, batch
    ) -> None:
        """Append a worker's drained telemetry batch to its relayed file."""
        if not batch or not isinstance(batch, list) or conn is None:
            return
        key = (state.name, conn.pid)
        writer = self._relay_writers.get(key)
        if writer is None:
            hello = conn.hello.get("telemetry")
            if not isinstance(hello, dict):
                hello = remote.hello_record("worker", pid=conn.pid)
            writer = remote.TelemetryWriter(
                remote.worker_file(
                    state.directory / TELEMETRY_DIR, pid=conn.pid
                ),
                hello=hello,
            )
            self._relay_writers[key] = writer
        for record in batch:
            if isinstance(record, dict):
                writer.write(record)
                if record.get("kind") == "metrics":
                    # Peek the worker's host footprint on the way through:
                    # the health RSS rule and /status.json want it live,
                    # not on the next telemetry collect.
                    gauges = record.get("gauges")
                    if isinstance(gauges, dict):
                        rss = gauges.get("resource.rss_bytes")
                        if rss is not None:
                            self._worker_rss[conn.pid] = float(rss)
                        cpu = gauges.get("resource.cpu_percent")
                        if cpu is not None:
                            self._worker_cpu[conn.pid] = float(cpu)

    # ------------------------------------------------------------------
    # Client messages
    # ------------------------------------------------------------------
    async def _handle_submit(self, message: dict) -> dict:
        target = str(message.get("target", ""))
        sampled = int(message.get("sampled", 100))
        seed = message.get("seed", 0)
        name = str(message.get("name") or "").strip()
        shard_points = int(
            message.get("shard_points") or self.config.shard_points
        )
        max_cycles = int(
            message.get("max_cycles") or self.config.default_max_cycles
        )
        if not name:
            name = f"{target.replace(':', '_').replace('/', '_')}-s{seed}"
        if name in self._campaigns:
            return {
                "kind": "error",
                "reason": f"campaign {name!r} already exists",
            }
        if target not in NAMED_TARGETS and ":" not in target:
            return {
                "kind": "error",
                "reason": (
                    f"unknown target {target!r} — expected one of "
                    f"{', '.join(NAMED_TARGETS)} or a "
                    "'package.module:callable' reference"
                ),
            }
        if sampled < 1 or shard_points < 1:
            return {"kind": "error", "reason": "sampled and shard_points must be >= 1"}
        spec = (
            TargetSpec(
                factory="repro.fi.targets:named_target",
                kwargs={"name": target},
            )
            if target in NAMED_TARGETS
            else TargetSpec(factory=target)
        )
        try:
            async with self._prepare_lock:
                manifest = await asyncio.to_thread(
                    self._prepare_manifest,
                    name, spec, sampled, seed, shard_points, max_cycles,
                )
        except Exception as exc:  # noqa: BLE001 - report, don't die
            counter("service.submit.errors").inc()
            return {
                "kind": "error",
                "reason": f"could not prepare campaign: "
                          f"{type(exc).__name__}: {exc}",
            }
        state = _CampaignState(manifest, self.state_dir / name)
        state.load_progress()  # tolerate pre-existing shard journals
        state.activated = time.monotonic()
        self._campaigns[name] = state
        self._queue.append(name)
        counter("service.campaigns.submitted").inc()
        self._log(
            f"coordinator: queued campaign {name!r} "
            f"({manifest.num_points} points, {len(state.shards)} shard(s))"
        )
        return {
            "kind": "queued",
            "campaign": name,
            "num_points": manifest.num_points,
            "shards": len(state.shards),
            "queue_position": self._queue.index(name),
        }

    def _prepare_manifest(
        self,
        name: str,
        spec: TargetSpec,
        sampled: int,
        seed: int | None,
        shard_points: int,
        max_cycles: int,
    ) -> CampaignManifest:
        """Build the target once (coordinator side) and write the manifest.

        Runs in a thread: synthesis + compile + golden run take seconds.
        The built campaign stays cached in the local :class:`ShardExecutor`
        so a graceful-degradation fallback pays nothing extra.
        """
        with span("service/prepare", campaign=name):
            campaign = self._executor.campaign_for(spec.to_dict(), max_cycles)
            netlist = campaign.target.simulator.netlist
            points = sample_points(
                netlist, campaign.golden_cycles, sampled, seed or 0
            )
            manifest = CampaignManifest(
                name=name,
                target=spec.to_dict(),
                workload=campaign.target.name,
                netlist_hash=netlist_content_hash(netlist),
                seed=seed,
                golden_cycles=campaign.golden_cycles,
                max_cycles=max_cycles,
                points=points,
                shard_points=shard_points,
                meta={
                    "pruned": False,
                    "space_points": len(netlist.dffs) * campaign.golden_cycles,
                    "distributed": True,
                    "shards": len(
                        shards_mod.plan_shards(len(points), shard_points)
                    ),
                },
                status="running",
                created=time.time(),
            )
            manifest.save(self.state_dir / name)
            return manifest

    def _status_doc(self, only: str | None = None) -> dict:
        rate = self.monitor.series_rate("done")
        campaigns = []
        for position, name in enumerate(self._queue):
            if only and name != only:
                continue
            state = self._campaigns[name]
            done = state.done_points
            remaining = state.manifest.num_points - done
            campaigns.append(
                {
                    "name": name,
                    "status": state.manifest.status,
                    "queue_position": position,
                    "total": state.manifest.num_points,
                    "done": done,
                    "quarantined": sum(s.quarantined for s in state.shards),
                    "outcomes": dict(state.outcomes),
                    "store_id": state.store_id,
                    "eta_seconds": (
                        remaining / rate if rate and remaining else None
                    ),
                    "shards": [
                        {
                            "id": s.shard_id,
                            "status": s.status,
                            "done": len(s.done),
                            "total": s.total,
                            "retries": s.retries,
                            "owner": s.owner,
                        }
                        for s in state.shards
                    ],
                }
            )
        return {
            "kind": "status",
            "workers": len(self._workers),
            "uptime_seconds": time.monotonic() - self._started_at,
            "rate": rate,
            "alerts": self.monitor.doc(),
            "alerts_fired_total": self.monitor.fired_total,
            "worker_table": [
                {
                    "pid": conn.pid,
                    "peer": conn.peer,
                    "records": conn.records,
                    "shards_taken": conn.shards_taken,
                    "authenticated": conn.authenticated,
                    "rss_bytes": self._worker_rss.get(conn.pid),
                    "cpu_percent": self._worker_cpu.get(conn.pid),
                }
                for conn in self._workers.values()
            ],
            "campaigns": campaigns,
        }

    # ------------------------------------------------------------------
    # Background maintenance
    # ------------------------------------------------------------------
    async def _reaper(self) -> None:
        """Expire lost leases, trigger fallback, keep the queue moving."""
        while True:
            await asyncio.sleep(self.config.tick)
            now = time.monotonic()
            for state in list(self._campaigns.values()):
                for shard in state.shards:
                    if (
                        shard.status == LEASED
                        and shard.owner != LOCAL_OWNER
                        and now >= shard.deadline
                    ):
                        counter("service.leases.expired").inc()
                        self._release_shard(
                            state, shard,
                            reason=(
                                "lease expired after "
                                f"{self.config.lease_seconds:.0f}s silence"
                            ),
                        )
            self._maybe_start_fallback(now)
            self._health_tick(now)

    def _health_tick(self, now: float) -> None:
        """Feed the health monitor one coordinator-state sample."""
        resource.sample_self()
        pending = sum(
            state.manifest.num_points - state.done_points
            for state in self._campaigns.values()
            if not state.finalizing
        )
        sample: dict[str, float] = {
            "done": float(counter("service.records").value),
            "pending": float(pending),
            "quarantined": float(
                counter("service.points.quarantined").value
            ),
            "lease_releases": float(
                counter("service.shards.released").value
            ),
        }
        for pid, rss in self._worker_rss.items():
            sample[f"rss.{pid}"] = rss
        edge = self.monitor.observe(sample, now=now)
        if (edge.fired or edge.cleared) and self.console is not None:
            self.console.publish("alerts", {"firing": self.monitor.doc()})

    def _maybe_start_fallback(self, now: float) -> None:
        if self.config.fallback_seconds is None or self._workers:
            return
        if self._local_task is not None and not self._local_task.done():
            return
        pick = self._eligible_shard(now)
        if pick is None:
            return
        state, _ = pick
        if (
            state.activated is None
            or now - state.activated < self.config.fallback_seconds
        ):
            return
        counter("service.fallback.activations").inc()
        self._log(
            f"coordinator: no workers for "
            f"{self.config.fallback_seconds:.0f}s — degrading to local "
            f"execution for campaign {state.name!r}"
        )
        self._local_task = asyncio.create_task(self._run_local())

    async def _run_local(self) -> None:
        """Graceful degradation: execute eligible shards in-process.

        Shards go through the exact same lease/record path as remote
        workers (owner :data:`LOCAL_OWNER`), one shard at a time in a
        thread, so a worker that connects mid-fallback simply takes the
        next shard and the two modes interleave safely.
        """
        while not self._shutdown.is_set():
            if self._workers:
                return  # real workers are back; let them have the rest
            pick = self._eligible_shard(time.monotonic())
            if pick is None:
                return
            state, shard = pick
            lease = self._lease(state, shard, LOCAL_OWNER, None)
            try:
                await asyncio.to_thread(self._execute_shard_locally, lease)
            except Exception as exc:  # noqa: BLE001 - requeue on any failure
                if shard.status == LEASED and shard.owner == LOCAL_OWNER:
                    self._release_shard(
                        state, shard, reason=f"local execution failed: {exc}"
                    )
                continue
            if len(shard.done) >= shard.total:
                if shard.status != DONE:
                    self._finish_shard(state, shard)
            elif shard.status == LEASED and shard.owner == LOCAL_OWNER:
                self._release_shard(
                    state, shard, reason="local execution incomplete"
                )

    def _execute_shard_locally(self, lease: dict) -> None:
        """Run one leased shard in this process (thread context).

        Records funnel back into :meth:`_handle_record` on the event loop,
        so journaling, duplicate handling, and completion checks are the
        same code that serves remote workers.
        """
        assert self._loop is not None
        campaign = self._executor.campaign_for(
            lease["target"], int(lease["max_cycles"])
        )
        points = [(dff, int(cycle)) for dff, cycle in lease["points"]]
        for index in lease["indices"]:
            dff_name, cycle = points[index]
            outcome, attempts, seconds, error = (
                self._executor.inject_with_retry(
                    campaign, dff_name, cycle,
                    max_retries=self.config.max_retries,
                    retry_backoff=self.config.point_retry_backoff,
                    retry_jitter=self.config.retry_jitter,
                )
            )
            record = {
                "kind": "record",
                "campaign": lease["campaign"],
                "shard": lease["shard"],
                "i": index,
                "dff": dff_name,
                "cycle": cycle,
                "outcome": outcome.value,
                "attempts": attempts,
                "seconds": round(seconds, 6),
                "worker": None,
            }
            if error is not None:
                record["error"] = error
            future = asyncio.run_coroutine_threadsafe(
                self._accept_local_record(record), self._loop
            )
            reply = future.result()
            if reply.get("kind") == "abort":
                return

    async def _accept_local_record(self, record: dict) -> dict:
        return self._handle_record(LOCAL_OWNER, record, None)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    async def _finalize_campaign(self, state: _CampaignState) -> None:
        """Merge the shard journals and (best-effort) warehouse the result."""
        try:
            merged = await asyncio.to_thread(
                merge_campaign_dir, state.directory
            )
        except Exception as exc:  # noqa: BLE001 - report, keep serving
            counter("service.merge.errors").inc()
            self._log(
                f"coordinator: merge of {state.name!r} failed: {exc}"
            )
            state.manifest.status = "failed"
            state.manifest.save(state.directory)
            return
        state.manifest.status = "complete"
        state.manifest.save(state.directory)
        counter("service.campaigns.completed").inc()
        quarantined = sum(s.quarantined for s in state.shards)
        self._log(
            f"coordinator: campaign {state.name!r} complete — "
            f"{state.manifest.num_points} records merged into {merged}"
            + (f" ({quarantined} quarantined)" if quarantined else "")
        )
        if self.config.store_path is not None:
            await asyncio.to_thread(self._ingest, state, merged)

    def _ingest(self, state: _CampaignState, merged: Path) -> None:
        """Warehouse the merged journal (never fails the campaign)."""
        from repro.store import ResultsStore

        telemetry_dir = state.directory / TELEMETRY_DIR
        try:
            with span("store/auto-ingest"), ResultsStore(
                self.config.store_path
            ) as store:
                store_id = store.ingest_journal(
                    merged,
                    telemetry_dir=(
                        telemetry_dir if telemetry_dir.is_dir() else None
                    ),
                )
            state.store_id = store_id
            self._log(
                f"coordinator: warehoused {state.name!r} as campaign "
                f"#{store_id}"
            )
        except Exception as exc:  # noqa: BLE001 - warehouse must not kill runs
            counter("store.ingest.errors").inc()
            self._log(
                f"coordinator: could not ingest {merged} into "
                f"{self.config.store_path}: {exc}"
            )


class _CoordinatorConsole(ConsoleProvider):
    """Console state provider backed by a live :class:`Coordinator`.

    Runs on the coordinator's own event loop, so every read sees a
    consistent lease table without locking. ``/metrics`` re-reads the
    relayed telemetry files of every known campaign on each scrape —
    fine at fleet-console scrape rates, not meant for per-request loops.
    """

    def __init__(self, coordinator: Coordinator) -> None:
        self._coordinator = coordinator

    def title(self) -> str:
        config = self._coordinator.config
        return (
            f"repro coordinator — {config.host}:"
            f"{self._coordinator.port or config.port}"
        )

    def metrics_text(self) -> str:
        directories = [
            state.directory / TELEMETRY_DIR
            for state in self._coordinator._campaigns.values()
        ]
        return merged_metrics_text(directories)

    def status_doc(self) -> dict:
        return self._coordinator._status_doc(None)

    def heatmap_html(self, name: str) -> str | None:
        state = self._coordinator._campaigns.get(name)
        store_path = self._coordinator.config.store_path
        if state is None or state.store_id is None or store_path is None:
            return None
        from repro.store import ResultsStore, render_heatmap

        with ResultsStore(store_path) as store:
            return render_heatmap(store, state.store_id)

    def silence(self, seconds: float) -> bool:
        self._coordinator.monitor.silence(seconds)
        return True
