"""The coordinator/injector wire protocol: length-prefixed JSON frames.

Every message is one JSON object encoded as UTF-8 and prefixed with a
4-byte big-endian length. Both endpoints speak the same frames; only the
transport differs — the coordinator reads them through asyncio streams
(:func:`read_message` / :func:`send_message`), workers and submit clients
through a blocking socket (:class:`Connection`).

Session shape (strict request/response lockstep, client side initiates):

- **handshake** — the client sends ``hello`` (protocol version, role,
  pid, and its :func:`repro.obs.remote.hello_record` clock pair so the
  coordinator can relay its telemetry); the coordinator answers
  ``welcome`` or an ``error`` frame and closes. A version mismatch is
  always an error — there is no negotiation.
- **worker loop** — ``request`` → ``shard`` (target spec, sub-point list,
  outstanding indices, lease terms) | ``idle`` (nothing eligible; retry
  after ``delay``) | ``shutdown``. While executing a shard the worker
  streams ``record`` frames (one per injection outcome, with optional
  piggybacked telemetry batches) and periodic ``heartbeat`` frames; each
  is answered ``ok`` — or ``abort`` when the lease has expired and the
  shard was reassigned, telling the stale worker to drop the shard
  immediately. ``shard_done`` closes the shard out.
- **client loop** — ``submit`` enqueues a campaign (FIFO), ``status``
  reports the queue and per-shard progress.

Frames are capped at :data:`MAX_FRAME` bytes; an oversized or torn frame
raises :class:`ProtocolError` — connections are cheap, state is not, so
endpoints drop the connection and re-handshake rather than resynchronize.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct

PROTOCOL_VERSION = 1

#: Upper bound on one frame (a 100k-point shard is ~3 MiB of JSON).
MAX_FRAME = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(Exception):
    """The peer broke the framing or the message contract."""


def encode_frame(doc: dict) -> bytes:
    """One message as its wire bytes (length prefix + JSON payload)."""
    payload = json.dumps(doc, separators=(",", ":")).encode()
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME} cap"
        )
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    """The JSON object inside one frame's payload bytes."""
    try:
        doc = json.loads(payload)
    except ValueError as exc:
        raise ProtocolError(f"frame payload is not JSON: {exc}") from exc
    if not isinstance(doc, dict) or "kind" not in doc:
        raise ProtocolError("frame payload is not a message object")
    return doc


def _check_length(raw: bytes) -> int:
    (length,) = _LENGTH.unpack(raw)
    if length > MAX_FRAME:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_FRAME} cap"
        )
    return length


# ----------------------------------------------------------------------
# asyncio endpoint (coordinator side)
# ----------------------------------------------------------------------
async def read_message(reader: asyncio.StreamReader) -> dict | None:
    """The next message, or ``None`` on clean EOF before a frame starts.

    EOF *inside* a frame is a torn frame and raises :class:`ProtocolError`
    — the peer died mid-send and the connection is unusable.
    """
    try:
        raw = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed inside a frame header") from exc
    length = _check_length(raw)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed inside a frame body") from exc
    return decode_payload(payload)


async def send_message(writer: asyncio.StreamWriter, doc: dict) -> None:
    """Write one message and drain the transport."""
    writer.write(encode_frame(doc))
    await writer.drain()


# ----------------------------------------------------------------------
# Blocking endpoint (worker / submit client side)
# ----------------------------------------------------------------------
class Connection:
    """One blocking protocol connection (worker or submit client side)."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        try:
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not TCP (e.g. a socketpair in tests)

    @classmethod
    def connect(
        cls, host: str, port: int, timeout: float = 10.0
    ) -> Connection:
        """Open a TCP connection (raises ``OSError`` when unreachable)."""
        return cls(socket.create_connection((host, port), timeout=timeout))

    def settimeout(self, timeout: float | None) -> None:
        self._sock.settimeout(timeout)

    def _recv_exactly(self, length: int) -> bytes:
        chunks = []
        remaining = length
        while remaining:
            chunk = self._sock.recv(min(remaining, 1 << 20))
            if not chunk:
                raise ProtocolError(
                    "connection closed inside a frame"
                    if chunks or length != _LENGTH.size or remaining != length
                    else "connection closed"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def send(self, doc: dict) -> None:
        self._sock.sendall(encode_frame(doc))

    def recv(self) -> dict:
        raw = self._recv_exactly(_LENGTH.size)
        return decode_payload(self._recv_exactly(_check_length(raw)))

    def call(self, doc: dict) -> dict:
        """Send one message and return its (lockstep) reply."""
        self.send(doc)
        return self.recv()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> Connection:
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def handshake(connection: Connection, role: str, **extra: object) -> dict:
    """Run the client side of the version handshake; returns the welcome.

    ``extra`` fields travel inside the hello (workers send their
    :func:`repro.obs.remote.hello_record` under ``"telemetry"`` so the
    coordinator can open their relayed telemetry stream, and the optional
    shared-secret auth token under ``"token"``). An ``error`` reply —
    e.g. a protocol-version mismatch or a failed token check — raises
    :class:`ProtocolError` with the coordinator's reason.
    """
    import os

    reply = connection.call(
        {
            "kind": "hello",
            "version": PROTOCOL_VERSION,
            "role": role,
            "pid": os.getpid(),
            **extra,
        }
    )
    if reply.get("kind") == "error":
        raise ProtocolError(
            f"coordinator refused the handshake: {reply.get('reason')}"
        )
    if reply.get("kind") != "welcome":
        raise ProtocolError(f"expected welcome, got {reply.get('kind')!r}")
    return reply
