"""Sharded campaign state on disk: manifest, shard journals, merge.

A distributed campaign lives in one directory owned by the coordinator::

    <state-dir>/<campaign>/
        campaign.json       # manifest: spec, points, shard table, status
        shard-0000.jsonl    # one crash-safe journal per shard
        shard-0001.jsonl
        ...
        telemetry/          # relayed per-worker telemetry streams
        merged.jsonl        # written once every shard is complete

The fault list is sharded by the journal resume key: each shard is a
contiguous slice of the campaign's point list, and its journal is a
completely ordinary :mod:`repro.fi.journal` file over that slice — header
keyed by the same netlist hash / workload / seed / golden length as the
campaign plus the slice's own ``points_hash``, records indexed shard-
locally. Every durability property (single-``os.write`` appends, batched
fsync, torn-tail-tolerant load) is inherited, which is what makes the
coordinator's kill -9 story free: restart, reload every shard journal,
and only the missing indices are redispatched.

:func:`merge_campaign_dir` reassembles the shards into ``merged.jsonl``
with the exact header and global index order a single-host
:class:`~repro.fi.runner.CampaignRunner` run of the same spec would have
produced — record-for-record identical, so ``python -m repro.store diff``
against the single-host journal is the acceptance gate.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.fi.journal import (
    CampaignJournal,
    JournalError,
    JournalState,
    load_journal,
    points_hash,
)

MANIFEST_VERSION = 1
MANIFEST_NAME = "campaign.json"
MERGED_NAME = "merged.jsonl"
TELEMETRY_DIR = "telemetry"
#: Console discovery file a serving coordinator drops in its state dir
#: (``{"url": ..., "pid": ...}``) so ``fi status`` can point at it.
CONSOLE_NAME = "console.json"

#: Manifest lifecycle states (the per-campaign status of the queue).
STATUSES = ("queued", "running", "complete", "failed")


class ShardError(JournalError):
    """A sharded campaign directory is inconsistent or incomplete."""


def plan_shards(num_points: int, shard_points: int) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` slices covering ``num_points``."""
    if num_points < 0:
        raise ValueError(f"negative point count {num_points}")
    if shard_points < 1:
        raise ValueError(f"shard size must be >= 1, got {shard_points}")
    return [
        (start, min(start + shard_points, num_points))
        for start in range(0, num_points, shard_points)
    ]


def shard_journal_path(directory: str | Path, shard_id: int) -> Path:
    return Path(directory) / f"shard-{shard_id:04d}.jsonl"


def is_campaign_dir(path: str | Path) -> bool:
    """Whether ``path`` is a sharded campaign directory (has a manifest)."""
    path = Path(path)
    return path.is_dir() and (path / MANIFEST_NAME).exists()


@dataclass
class CampaignManifest:
    """Everything needed to rebuild a campaign's shard table after a crash.

    The manifest is the coordinator's only non-journal state: the target
    spec, the full sampled point list, the shard boundaries, and a status
    field. It is written atomically (temp file + ``os.replace``) so a
    kill -9 can never leave a half-written manifest; everything mutable —
    which points are done — lives in the shard journals instead.
    """

    name: str
    target: dict
    workload: str
    netlist_hash: str
    seed: int | None
    golden_cycles: int
    max_cycles: int
    points: list[tuple[str, int]]
    shard_points: int
    meta: dict = field(default_factory=dict)
    status: str = "queued"
    created: float = 0.0

    def __post_init__(self) -> None:
        self.points = [(dff, int(cycle)) for dff, cycle in self.points]
        if self.status not in STATUSES:
            raise ValueError(f"unknown campaign status {self.status!r}")

    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        return len(self.points)

    @property
    def shards(self) -> list[tuple[int, int]]:
        return plan_shards(len(self.points), self.shard_points)

    def shard_slice(self, shard_id: int) -> tuple[int, int]:
        shards = self.shards
        if not 0 <= shard_id < len(shards):
            raise IndexError(f"shard {shard_id} outside 0..{len(shards) - 1}")
        return shards[shard_id]

    def header(self) -> dict:
        """The merged-journal header — identical to a single-host run's."""
        header = {
            "target": dict(self.target),
            "workload": self.workload,
            "netlist_hash": self.netlist_hash,
            "points_hash": points_hash(self.points),
            "seed": self.seed,
            "num_points": len(self.points),
            "golden_cycles": self.golden_cycles,
            "max_cycles": self.max_cycles,
            "points": [[dff, cycle] for dff, cycle in self.points],
        }
        if self.meta:
            header["meta"] = dict(self.meta)
        return header

    def shard_header(self, shard_id: int) -> dict:
        """The journal header of one shard (keyed by its own sub-list)."""
        start, stop = self.shard_slice(shard_id)
        sub = self.points[start:stop]
        return {
            "target": dict(self.target),
            "workload": self.workload,
            "netlist_hash": self.netlist_hash,
            "points_hash": points_hash(sub),
            "seed": self.seed,
            "num_points": len(sub),
            "golden_cycles": self.golden_cycles,
            "max_cycles": self.max_cycles,
            "points": [[dff, cycle] for dff, cycle in sub],
            "meta": {
                "campaign": self.name,
                "shard": {"id": shard_id, "start": start, "stop": stop},
            },
        }

    # ------------------------------------------------------------------
    def save(self, directory: str | Path) -> Path:
        """Atomically write the manifest into ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / MANIFEST_NAME
        doc = {
            "version": MANIFEST_VERSION,
            "name": self.name,
            "target": self.target,
            "workload": self.workload,
            "netlist_hash": self.netlist_hash,
            "seed": self.seed,
            "golden_cycles": self.golden_cycles,
            "max_cycles": self.max_cycles,
            "shard_points": self.shard_points,
            "points": [[dff, cycle] for dff, cycle in self.points],
            "meta": self.meta,
            "status": self.status,
            "created": self.created,
        }
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(doc) + "\n", encoding="utf-8")
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, directory: str | Path) -> CampaignManifest:
        path = Path(directory) / MANIFEST_NAME
        if not path.exists():
            raise ShardError(f"no campaign manifest at {path}")
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as exc:
            raise ShardError(f"manifest {path} is unparsable: {exc}") from exc
        if doc.get("version") != MANIFEST_VERSION:
            raise ShardError(
                f"manifest {path} has unsupported version "
                f"{doc.get('version')!r}"
            )
        return cls(
            name=doc["name"],
            target=doc["target"],
            workload=doc["workload"],
            netlist_hash=doc["netlist_hash"],
            seed=doc.get("seed"),
            golden_cycles=doc["golden_cycles"],
            max_cycles=doc["max_cycles"],
            points=[(dff, cycle) for dff, cycle in doc["points"]],
            shard_points=doc["shard_points"],
            meta=doc.get("meta") or {},
            status=doc.get("status", "queued"),
            created=doc.get("created", 0.0),
        )


def load_shard_state(
    directory: str | Path, shard_id: int
) -> JournalState | None:
    """One shard's journal state, or ``None`` when it was never started."""
    path = shard_journal_path(directory, shard_id)
    if not path.exists() or path.stat().st_size == 0:
        return None
    return load_journal(path)


# ----------------------------------------------------------------------
@dataclass
class ShardStatus:
    """Progress of one shard, as recovered from its journal."""

    shard_id: int
    start: int
    stop: int
    records: int
    outcomes: Counter = field(default_factory=Counter)

    @property
    def total(self) -> int:
        return self.stop - self.start

    @property
    def complete(self) -> bool:
        return self.records >= self.total


@dataclass
class CampaignDirStatus:
    """Everything ``fi status`` reports about a sharded campaign dir."""

    directory: Path
    manifest: CampaignManifest
    shards: list[ShardStatus]
    merged_path: Path | None

    @property
    def done(self) -> int:
        return sum(s.records for s in self.shards)

    @property
    def total(self) -> int:
        return self.manifest.num_points

    @property
    def outcomes(self) -> Counter:
        merged: Counter = Counter()
        for shard in self.shards:
            merged.update(shard.outcomes)
        return merged

    @property
    def complete(self) -> bool:
        return all(s.complete for s in self.shards)


def _lenient_shard_count(path: Path) -> tuple[int, Counter]:
    """Raw record count of a journal that failed strict loading.

    A *live* campaign dir can hold a shard journal mid-rewrite (e.g. a
    concurrent quarantine replay); ``fi status`` should degrade to a
    best-effort count instead of erroring out of the whole directory.
    """
    records = 0
    outcomes: Counter = Counter()
    try:
        with path.open(encoding="utf-8", errors="replace") as fh:
            for line in fh:
                try:
                    doc = json.loads(line)
                except ValueError:
                    continue
                if isinstance(doc, dict) and doc.get("kind") == "record":
                    records += 1
                    outcome = doc.get("outcome")
                    if outcome is not None:
                        outcomes[str(outcome)] += 1
    except OSError:
        pass
    return records, outcomes


def load_campaign_dir(directory: str | Path) -> CampaignDirStatus:
    """Recover a sharded campaign's progress from its directory.

    Works on a *live* directory: shards whose journals do not strictly
    load (torn by a concurrent writer) fall back to a lenient raw record
    count rather than failing the whole status call, and an absent
    ``merged.jsonl`` simply reports as not merged yet.
    """
    directory = Path(directory)
    manifest = CampaignManifest.load(directory)
    shards = []
    for shard_id, (start, stop) in enumerate(manifest.shards):
        outcomes: Counter = Counter()
        try:
            state = load_shard_state(directory, shard_id)
        except JournalError:
            records, outcomes = _lenient_shard_count(
                shard_journal_path(directory, shard_id)
            )
            shards.append(
                ShardStatus(
                    shard_id=shard_id,
                    start=start,
                    stop=stop,
                    records=records,
                    outcomes=outcomes,
                )
            )
            continue
        if state is not None:
            for record in state.records.values():
                outcomes[record.outcome.value] += 1
        shards.append(
            ShardStatus(
                shard_id=shard_id,
                start=start,
                stop=stop,
                records=len(state.records) if state is not None else 0,
                outcomes=outcomes,
            )
        )
    merged = directory / MERGED_NAME
    return CampaignDirStatus(
        directory=directory,
        manifest=manifest,
        shards=shards,
        merged_path=merged if merged.exists() else None,
    )


def merge_campaign_dir(
    directory: str | Path, force: bool = False
) -> Path:
    """Reassemble the shard journals into one ``merged.jsonl``.

    The merged journal carries the exact single-host header (full point
    list, full-list ``points_hash``) and its records in global index order
    with their per-record details (attempts, seconds, worker, error)
    preserved, so it loads, resumes-checks, diffs, and warehouse-ingests
    exactly like a journal ``fi run`` wrote directly. Raises
    :class:`ShardError` while any shard is incomplete; an existing merged
    journal is reused unless ``force``. The write is atomic (temp file +
    ``os.replace``) — a crash mid-merge never leaves a half journal.
    """
    directory = Path(directory)
    manifest = CampaignManifest.load(directory)
    merged_path = directory / MERGED_NAME
    if merged_path.exists() and not force:
        return merged_path

    records: dict[int, tuple] = {}
    for shard_id, (start, stop) in enumerate(manifest.shards):
        state = load_shard_state(directory, shard_id)
        if state is None or len(state.records) < stop - start:
            have = 0 if state is None else len(state.records)
            raise ShardError(
                f"shard {shard_id} of {directory} is incomplete "
                f"({have}/{stop - start} records) — cannot merge"
            )
        for local_index, record in state.records.items():
            records[start + local_index] = (
                record,
                state.details.get(local_index, {}),
            )
    missing = [i for i in range(manifest.num_points) if i not in records]
    if missing:
        raise ShardError(
            f"{directory} is missing {len(missing)} record(s) "
            f"(first: {missing[0]}) — cannot merge"
        )

    tmp = merged_path.with_suffix(".jsonl.tmp")
    tmp.unlink(missing_ok=True)
    with CampaignJournal(tmp, manifest.header()) as journal:
        for index in range(manifest.num_points):
            record, detail = records[index]
            journal.append_record(
                index,
                record,
                attempts=detail.get("attempts", 1),
                error=detail.get("error"),
                seconds=detail.get("seconds"),
                worker=detail.get("worker"),
            )
        journal.mark_complete(manifest.num_points)
    os.replace(tmp, merged_path)
    return merged_path
