"""Distributed campaign service: fault-tolerant coordinator + injectors.

The single-host :class:`~repro.fi.runner.CampaignRunner` scales to one
machine's cores; this package promotes it to a multi-host architecture in
the DAVOS host/injector shape — one coordinator process owning all durable
state, any number of stateless injector workers executing shards:

- :mod:`repro.fi.service.protocol` — the length-prefixed JSON wire
  protocol (version handshake, shard leases, record streaming,
  heartbeats) with asyncio and blocking-socket endpoints;
- :mod:`repro.fi.service.shards` — sharding of a campaign's fault list by
  the journal resume key, per-shard crash-safe journals, and the merge
  that reassembles them into one journal record-for-record identical to a
  single-host run;
- :mod:`repro.fi.service.coordinator` — the asyncio TCP coordinator:
  multi-campaign FIFO queue, lease state machine with deadlines and
  jittered backoff, reassignment on worker death, per-point quarantine,
  crash-safe restart from the shard journals, and graceful degradation to
  local execution when no workers are available;
- :mod:`repro.fi.service.worker` — the blocking injector client: builds
  the target from the shipped :class:`~repro.fi.runner.TargetSpec`, runs
  the inline injection path per shard, and streams records plus
  :mod:`repro.obs.remote` telemetry back over the wire.

CLI: ``python -m repro.fi serve|worker|submit``.
"""

from repro.fi.service.coordinator import Coordinator, ServiceConfig
from repro.fi.service.protocol import PROTOCOL_VERSION, ProtocolError
from repro.fi.service.shards import (
    CampaignManifest,
    is_campaign_dir,
    load_campaign_dir,
    merge_campaign_dir,
    plan_shards,
)
from repro.fi.service.worker import run_worker

__all__ = [
    "CampaignManifest",
    "Coordinator",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServiceConfig",
    "is_campaign_dir",
    "load_campaign_dir",
    "merge_campaign_dir",
    "plan_shards",
    "run_worker",
]
