"""Resilient campaign execution: parallel, checkpointed, crash-tolerant.

:class:`CampaignRunner` layers fault tolerance *around* the existing
:class:`~repro.fi.campaign.Campaign` model — the campaign engine must
survive faults in itself while injecting faults into the target:

- **Durable journal + resume** — every injection outcome is appended to a
  crash-safe JSONL journal (:mod:`repro.fi.journal`) keyed by netlist
  hash, workload, point-list hash, and seed. An interrupted campaign
  resumes exactly where it stopped; a resumed run is record-for-record
  identical to an uninterrupted one (records are ordered by point index,
  never by completion order).
- **Supervised worker pool** — ``ProcessPoolExecutor`` (spawn context);
  each worker builds its own compiled simulator from a serializable
  :class:`TargetSpec` and runs its own golden execution once. The parent
  enforces a per-injection *wall-clock* timeout (derived from the golden
  run's wall time — distinct from the in-simulation cycle budget), retries
  transient failures with backoff, replaces broken pools, and quarantines
  poison points: a point whose attempts are exhausted gets a terminal
  :attr:`Outcome.ERROR` record instead of aborting the campaign.
- **Graceful shutdown** — SIGINT/SIGTERM stop submission, flush the
  journal, tear the pool down, and report a resume hint; partial results
  are always loadable into a valid :class:`CampaignResult`.
"""

from __future__ import annotations

import importlib
import os
import random
import signal
import sys
import threading
import time
from collections import deque
from collections.abc import Mapping
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path

from repro.fi.campaign import Campaign, CampaignResult, CampaignTarget, InjectionRecord
from repro.fi.classify import Outcome
from repro.fi.journal import (
    CampaignJournal,
    JournalState,
    check_resumable,
    load_journal,
    points_hash,
)
from repro.netlist.json_io import netlist_content_hash
from repro.obs import counter, events, gauge, histogram, remote, resource, span
from repro.obs.dashboard import CampaignDashboard
from repro.obs.remote import MergedTelemetry


@dataclass(frozen=True)
class TargetSpec:
    """A picklable, JSON-serializable recipe for a :class:`CampaignTarget`.

    ``factory`` is a ``"package.module:callable"`` reference resolved in
    whatever process builds the target (the parent *and* every spawned
    worker); ``kwargs`` must be JSON-serializable so the spec can live in
    a journal header. Factories that need to ship a netlist across the
    process boundary put its JSON form in ``kwargs`` and rebuild through
    :class:`repro.sim.spec.SimulatorSpec`.
    """

    factory: str
    kwargs: dict = field(default_factory=dict)

    def build(self) -> CampaignTarget:
        """Import the factory and build the target in this process."""
        module_name, _, attr = self.factory.partition(":")
        if not module_name or not attr:
            raise ValueError(
                f"target spec factory {self.factory!r} is not of the form "
                "'package.module:callable'"
            )
        module = importlib.import_module(module_name)
        factory = getattr(module, attr)
        target = factory(**self.kwargs)
        if not isinstance(target, CampaignTarget):
            raise TypeError(
                f"{self.factory} returned {type(target).__name__}, "
                "expected CampaignTarget"
            )
        return target

    def to_dict(self) -> dict:
        return {"factory": self.factory, "kwargs": dict(self.kwargs)}

    @classmethod
    def from_dict(cls, doc: dict) -> TargetSpec:
        return cls(factory=doc["factory"], kwargs=dict(doc.get("kwargs", {})))


@dataclass
class RunnerConfig:
    """Tuning knobs of the resilient runner."""

    #: Worker processes; 0 executes inline in this process (no pool).
    workers: int = 1
    #: Wall-clock per-injection timeout = golden wall time x this factor
    #: (floored at ``min_timeout_seconds``). Distinct from the *cycle*
    #: budget `CampaignTarget.timeout_factor`, which bounds the simulated
    #: run; this bounds the host-side execution of one injection.
    timeout_factor: float = 50.0
    #: Explicit wall-clock timeout override (seconds); None = derive.
    timeout_seconds: float | None = None
    min_timeout_seconds: float = 5.0
    #: Extra deadline slack until the pool has produced its first result
    #: (covers spawn + per-worker compile + golden run).
    startup_grace: float = 60.0
    #: Failed attempts allowed per point beyond the first; a point failing
    #: ``max_retries + 1`` times total is quarantined with Outcome.ERROR.
    max_retries: int = 1
    #: Base sleep before re-submitting a failed point (doubles per attempt).
    retry_backoff: float = 0.05
    #: Backoff ceiling (seconds): the exponential delay never exceeds this.
    retry_backoff_cap: float = 30.0
    #: Multiplicative jitter fraction: each backoff sleep is stretched by a
    #: uniform factor in ``[1, 1 + retry_jitter]`` so simultaneous retries
    #: (many shards, many workers) never thundering-herd in lockstep.
    #: 0 restores the old deterministic delays.
    retry_jitter: float = 0.25
    #: Journal fsync batching (records per fsync).
    fsync_interval: int = 16
    #: Cycle budget for the golden run (Campaign max_cycles).
    max_cycles: int = 50_000
    #: Stop (gracefully, resumable) after this many new records; None = all.
    limit: int | None = None
    #: Install SIGINT/SIGTERM handlers for graceful shutdown (main thread
    #: only; originals are restored on exit).
    install_signal_handlers: bool = True
    #: Directory for cross-process telemetry (:mod:`repro.obs.remote`).
    #: When set, every worker streams spans/metrics to a per-worker JSONL
    #: file there, the parent streams to ``parent.jsonl``, and at the end
    #: of the run the collector merges everything into the global registry
    #: under ``worker=<n>`` labels (see :attr:`RunReport.telemetry`).
    #: None disables cross-process telemetry entirely.
    telemetry_dir: str | Path | None = None
    #: Results-warehouse database (:mod:`repro.store`). When set, a run
    #: that *completes* its campaign auto-ingests the journal (plus the
    #: telemetry directory, when enabled) so cross-campaign diffing and
    #: heatmaps need no extra step. Warehouse trouble never fails the
    #: campaign — it is counted under ``store.ingest.errors`` instead.
    #: None (the default) disables auto-ingest.
    store_path: str | Path | None = None


@dataclass(frozen=True)
class AnnotationPlan:
    """Static back-annotation plan for one concrete point list.

    Produced by :meth:`repro.prune.EquivalenceMap.collapse` (via
    ``CollapsePlan.annotation_plan()``): ``dead`` indices are provably
    benign and journaled without simulation; each ``follows`` entry maps a
    follower index to the representative index whose injected outcome it
    inherits the moment that record lands. ``source`` names the pruning
    layer for the journal's ``pruned_by`` detail; ``sources`` overrides it
    per index for plans composed from several layers (e.g. static-dead
    points inside a def-use collapse carry ``pruned_by="static"``).
    """

    dead: tuple[int, ...] = ()
    follows: Mapping[int, int] = field(default_factory=dict)
    source: str = "defuse"
    sources: Mapping[int, str] = field(default_factory=dict)

    def followers_of(self) -> dict[int, list[int]]:
        """Representative index → sorted follower indices."""
        table: dict[int, list[int]] = {}
        for follower, rep in self.follows.items():
            table.setdefault(rep, []).append(follower)
        for followers in table.values():
            followers.sort()
        return table

    def validate(self, num_points: int) -> None:
        """Reject structurally impossible plans early."""
        dead = set(self.dead)
        for index in dead:
            if not 0 <= index < num_points:
                raise IndexError(f"dead index {index} outside point list")
        for follower, rep in self.follows.items():
            if not 0 <= follower < num_points or not 0 <= rep < num_points:
                raise IndexError(
                    f"follower {follower} -> rep {rep} outside point list"
                )
            if follower == rep:
                raise ValueError(f"point {follower} cannot follow itself")
            if follower in dead:
                raise ValueError(f"point {follower} is both dead and a follower")
            if rep in dead or rep in self.follows:
                raise ValueError(
                    f"representative {rep} must be an executable point"
                )


@dataclass
class RunReport:
    """What one :meth:`CampaignRunner.run` invocation did."""

    result: CampaignResult
    complete: bool
    journal_path: Path
    total_points: int
    executed: int = 0
    #: Points decided statically (dead intervals + equivalence followers),
    #: journaled without simulation.
    annotated: int = 0
    skipped: int = 0
    retries: int = 0
    quarantined: int = 0
    worker_restarts: int = 0
    #: Signal name if the run was interrupted, else None.
    interrupted: str | None = None
    #: Merged cross-process telemetry (set when telemetry_dir is enabled).
    telemetry: MergedTelemetry | None = None
    #: Warehouse campaign id (set when a completed run auto-ingested).
    store_id: int | None = None

    @property
    def resume_hint(self) -> str:
        """Shell hint for continuing an unfinished campaign."""
        return f"python -m repro.fi resume --journal {self.journal_path}"


def backoff_delay(
    attempt: int,
    base: float,
    cap: float = 30.0,
    jitter: float = 0.25,
    rng: random.Random | None = None,
) -> float:
    """Bounded exponential backoff with multiplicative jitter.

    ``attempt`` counts from 1. The deterministic part doubles per attempt
    and is clamped to ``cap``; the returned delay is that value stretched
    by a uniform factor in ``[1, 1 + jitter]``, so the result is always in
    ``[min(cap, base * 2**(attempt-1)),
    min(cap, base * 2**(attempt-1)) * (1 + jitter)]``. Jittering *up* from
    the deterministic floor keeps the old lower bound (retries never fire
    early) while decorrelating simultaneous retries across shards and
    workers.
    """
    if attempt < 1:
        raise ValueError(f"attempt counts from 1, got {attempt}")
    delay = min(cap, base * (2 ** (attempt - 1)))
    if jitter <= 0 or delay <= 0:
        return delay
    return delay * (1.0 + (rng or random).uniform(0.0, jitter))


def sample_points(
    netlist, golden_cycles: int, num_samples: int, seed: int = 0
) -> list[tuple[str, int]]:
    """Uniformly sampled ``(dff, cycle)`` injection points.

    The single source of the sampling order: :meth:`CampaignRunner.sample_points`
    and the distributed coordinator both delegate here, so a distributed
    campaign over the same target/seed injects the exact point list a
    single-host ``fi run`` would — the precondition for their journals
    being record-for-record comparable.
    """
    rng = random.Random(seed)
    names = list(netlist.dffs)
    return [
        (rng.choice(names), rng.randrange(golden_cycles))
        for _ in range(num_samples)
    ]


def load_result(journal_path: str | Path) -> CampaignResult:
    """Load a (possibly partial) journal into a valid CampaignResult."""
    state = load_journal(journal_path)
    return _assemble_result(state.header, state.records)


def _assemble_result(
    header: dict, records: dict[int, InjectionRecord]
) -> CampaignResult:
    result = CampaignResult(header["workload"], header["golden_cycles"])
    result.records = [records[i] for i in sorted(records)]
    return result


# ----------------------------------------------------------------------
# Worker side (module-level so the spawn pickler can reference it)
# ----------------------------------------------------------------------
_WORKER_CAMPAIGN: Campaign | None = None


def _worker_init(
    spec_doc: dict, max_cycles: int, telemetry_dir: str | None = None
) -> None:
    """Pool initializer: build the target and run golden once per worker."""
    global _WORKER_CAMPAIGN
    if telemetry_dir is not None:
        remote.enable_worker_telemetry(telemetry_dir)
    spec = TargetSpec.from_dict(spec_doc)
    _WORKER_CAMPAIGN = Campaign(spec.build(), max_cycles=max_cycles)
    remote.flush_worker_metrics()


def _worker_inject(
    index: int, dff_name: str, cycle: int
) -> tuple[int, str, float, int]:
    assert _WORKER_CAMPAIGN is not None, "worker initializer did not run"
    remote.worker_event("inject-start", i=index, dff=dff_name, cycle=cycle)
    start = time.monotonic()
    outcome = _WORKER_CAMPAIGN.inject(dff_name, cycle)
    seconds = time.monotonic() - start
    # Rate-limited /proc self-sample: the resource.* gauges ride the
    # cumulative snapshot home and surface per-worker in /metrics.
    resource.sample_self()
    remote.flush_worker_metrics()
    return index, outcome.value, seconds, os.getpid()


def _worker_probe() -> bool:
    """No-op marker task: completes once a worker finished initializing."""
    return _WORKER_CAMPAIGN is not None


# ----------------------------------------------------------------------
class CampaignRunner:
    """Fault-tolerant executor of one campaign over one target spec."""

    def __init__(self, spec: TargetSpec, config: RunnerConfig | None = None) -> None:
        self.spec = spec
        self.config = config or RunnerConfig()
        with span("runner/parent-setup"):
            self.target = spec.build()
            start = time.monotonic()
            self.campaign = Campaign(self.target, max_cycles=self.config.max_cycles)
            self.golden_wall_seconds = time.monotonic() - start
        self.netlist_hash = netlist_content_hash(self.target.simulator.netlist)
        self._dashboard: CampaignDashboard | None = None
        self._plan: AnnotationPlan | None = None
        self._plan_followers: dict[int, list[int]] = {}
        self._run_points: list[tuple[str, int]] = []
        self._run_started = time.monotonic()

    # ------------------------------------------------------------------
    @property
    def golden_cycles(self) -> int:
        return self.campaign.golden_cycles

    def sample_points(
        self, num_samples: int, seed: int = 0
    ) -> list[tuple[str, int]]:
        """The exact point list ``Campaign.run_sampled`` would inject."""
        return sample_points(
            self.target.simulator.netlist, self.golden_cycles,
            num_samples, seed,
        )

    def wall_timeout(self) -> float:
        """Per-injection wall-clock budget (seconds)."""
        if self.config.timeout_seconds is not None:
            return self.config.timeout_seconds
        return max(
            self.config.min_timeout_seconds,
            self.golden_wall_seconds * self.config.timeout_factor,
        )

    def _header(
        self,
        points: list[tuple[str, int]],
        seed: int | None,
        meta: dict | None = None,
    ) -> dict:
        header = {
            "target": self.spec.to_dict(),
            "workload": self.target.name,
            "netlist_hash": self.netlist_hash,
            "points_hash": points_hash(points),
            "seed": seed,
            "num_points": len(points),
            "golden_cycles": self.golden_cycles,
            "max_cycles": self.config.max_cycles,
            "points": [[dff, cycle] for dff, cycle in points],
        }
        if meta:
            header["meta"] = dict(meta)
        return header

    def _validate_points(self, points: list[tuple[str, int]]) -> None:
        dffs = self.target.simulator.netlist.dffs
        for dff_name, cycle in points:
            if dff_name not in dffs:
                raise KeyError(f"unknown flip-flop {dff_name!r}")
            if cycle >= self.golden_cycles:
                raise ValueError(
                    f"cycle {cycle} beyond the golden run ({self.golden_cycles})"
                )

    # ------------------------------------------------------------------
    def run(
        self,
        points: list[tuple[str, int]],
        journal_path: str | Path,
        resume: bool = False,
        seed: int | None = None,
        dashboard: CampaignDashboard | None = None,
        meta: dict | None = None,
        plan: AnnotationPlan | None = None,
    ) -> RunReport:
        """Execute (or continue) the campaign, journaling every record.

        ``plan`` is an optional static :class:`AnnotationPlan`: its dead
        points are journaled as BENIGN up front (zero simulations), its
        followers are back-annotated with their representative's outcome as
        soon as that record lands, and only the remaining points are
        actually injected. Resuming a collapsed campaign requires passing
        an identical plan (rebuilt deterministically from the same
        equivalence map and point list).

        With ``resume=True`` an existing journal is validated against this
        campaign's header (netlist hash, workload, point-list hash, seed,
        golden length) and already-recorded points are skipped; a mismatch
        raises :class:`~repro.fi.journal.JournalMismatch`. Without it, an
        existing non-empty journal is an error.

        ``dashboard`` receives live progress totals after every recorded
        injection (see :class:`~repro.obs.dashboard.CampaignDashboard`).

        ``meta`` is free-form JSON-serializable context written into a
        *fresh* journal's header under ``"meta"`` (a resumed journal keeps
        its original metadata). It never participates in resume matching;
        the results warehouse reads keys like ``pruned`` /
        ``space_points`` / ``pruned_points`` from it.
        """
        journal_path = Path(journal_path)
        points = list(points)
        self._validate_points(points)
        if plan is not None:
            plan.validate(len(points))
        header = self._header(points, seed, meta)

        done: dict[int, InjectionRecord] = {}
        already_complete = False
        if journal_path.exists() and journal_path.stat().st_size > 0:
            if not resume:
                raise FileExistsError(
                    f"journal {journal_path} already exists — resume it with "
                    f"'python -m repro.fi resume --journal {journal_path}' "
                    "or delete it to start over"
                )
            state = load_journal(journal_path)
            check_resumable(state, header)
            done = dict(state.records)
            already_complete = state.complete
            counter("campaign.resume.skipped").inc(len(done))

        report = RunReport(
            result=CampaignResult(self.target.name, self.golden_cycles),
            complete=False,
            journal_path=journal_path,
            total_points=len(points),
            skipped=len(done),
        )
        self._plan = plan
        self._plan_followers = plan.followers_of() if plan is not None else {}
        self._run_points = points
        skip_static: set[int] = (
            set(plan.dead) | set(plan.follows) if plan is not None else set()
        )
        # The limit budgets *injections*; statically annotated points are free.
        pending = [
            i for i in range(len(points)) if i not in done and i not in skip_static
        ]
        if self.config.limit is not None:
            pending = pending[: self.config.limit]

        stop = threading.Event()
        stop_signal: list[str] = []
        old_handlers = self._install_handlers(stop, stop_signal)
        telemetry_dir, parent_writer = self._open_telemetry()
        self._dashboard = dashboard
        self._run_started = time.monotonic()
        try:
            with CampaignJournal(
                journal_path, header, self.config.fsync_interval
            ) as journal, span(
                "runner/execute", target=self.target.name, points=len(pending)
            ) as run_span:
                if plan is not None:
                    self._annotate_static(plan, points, done, journal, report)
                if pending:
                    if self.config.workers <= 0:
                        self._run_inline(points, pending, done, journal, report, stop)
                    else:
                        self._run_pool(points, pending, done, journal, report, stop)
                executed_all = len(done) == len(points)
                if executed_all and not stop.is_set():
                    if not already_complete:
                        journal.mark_complete(len(done))
                    report.complete = True
            if run_span.elapsed > 0 and report.executed:
                gauge("campaign.injections_per_second").set(
                    report.executed / run_span.elapsed
                )
        finally:
            self._dashboard = None
            self._plan = None
            self._plan_followers = {}
            self._run_points = []
            if parent_writer is not None:
                events.remove_sink(parent_writer)
                parent_writer.flush_metrics()
                parent_writer.close()
            self._restore_handlers(old_handlers)

        if telemetry_dir is not None:
            report.telemetry = remote.collect(telemetry_dir)
        report.interrupted = stop_signal[0] if stop_signal else None
        report.result = _assemble_result(header, done)
        if report.complete and self.config.store_path is not None:
            report.store_id = self._auto_ingest(journal_path, telemetry_dir)
        return report

    def _auto_ingest(
        self, journal_path: Path, telemetry_dir: Path | None
    ) -> int | None:
        """Ingest the completed journal into the results warehouse.

        Best-effort by design: the campaign's results are already durable
        in the journal, so a warehouse problem is counted
        (``store.ingest.errors``) and reported as a warning, never raised.
        """
        from repro.store import ResultsStore

        try:
            with span("store/auto-ingest"), ResultsStore(
                self.config.store_path
            ) as store:
                return store.ingest_journal(
                    journal_path, telemetry_dir=telemetry_dir
                )
        except Exception as exc:  # noqa: BLE001 - warehouse must not kill runs
            counter("store.ingest.errors").inc()
            print(
                f"warning: could not ingest {journal_path} into "
                f"{self.config.store_path}: {exc}",
                file=sys.stderr,
            )
            return None

    def _open_telemetry(self):
        """Start the parent's telemetry stream if a directory is configured."""
        if self.config.telemetry_dir is None:
            return None, None
        telemetry_dir = Path(self.config.telemetry_dir)
        telemetry_dir.mkdir(parents=True, exist_ok=True)
        writer = remote.TelemetryWriter(
            telemetry_dir / remote.PARENT_FILE, role="parent"
        )
        events.install_sink(writer)
        return telemetry_dir, writer

    # ------------------------------------------------------------------
    def _install_handlers(self, stop: threading.Event, names: list[str]):
        if (
            not self.config.install_signal_handlers
            or threading.current_thread() is not threading.main_thread()
        ):
            return None

        def handler(signum, frame):
            names.append(signal.Signals(signum).name)
            stop.set()

        return {
            sig: signal.signal(sig, handler)
            for sig in (signal.SIGINT, signal.SIGTERM)
        }

    @staticmethod
    def _restore_handlers(old_handlers) -> None:
        if old_handlers:
            for sig, old in old_handlers.items():
                signal.signal(sig, old)

    # ------------------------------------------------------------------
    def _annotate_static(
        self,
        plan: AnnotationPlan,
        points: list[tuple[str, int]],
        done: dict[int, InjectionRecord],
        journal: CampaignJournal,
        report: RunReport,
    ) -> None:
        """Journal the plan's simulation-free outcomes.

        Dead points are BENIGN by construction; followers whose
        representative already has a record (a resumed collapsed campaign)
        inherit it immediately. Followers of still-pending representatives
        are back-annotated later through the :meth:`_record` funnel.
        """
        for index in plan.dead:
            if index not in done:
                self._record(
                    journal, done, report, index, points[index],
                    Outcome.BENIGN, attempts=0,
                    annotation={"pruned_by": plan.sources.get(index, plan.source)},
                )
        for follower, rep in sorted(plan.follows.items()):
            if follower not in done and rep in done:
                self._record(
                    journal, done, report, follower, points[follower],
                    done[rep].outcome, attempts=0,
                    annotation={
                        "pruned_by": plan.sources.get(follower, plan.source),
                        "equivalence_rep": points[rep],
                    },
                )

    def _record(
        self,
        journal: CampaignJournal,
        done: dict[int, InjectionRecord],
        report: RunReport,
        index: int,
        point: tuple[str, int],
        outcome: Outcome,
        attempts: int,
        error: str | None = None,
        seconds: float | None = None,
        worker: int | None = None,
        annotation: dict | None = None,
    ) -> None:
        record = InjectionRecord(point[0], point[1], outcome)
        journal.append_record(
            index, record, attempts=attempts, error=error,
            seconds=seconds, worker=worker,
            pruned_by=annotation.get("pruned_by") if annotation else None,
            equivalence_rep=annotation.get("equivalence_rep") if annotation else None,
        )
        done[index] = record
        if annotation is not None:
            report.annotated += 1
            counter("campaign.points.annotated").inc()
        else:
            report.executed += 1
            counter("campaign.injections").inc()
        counter(f"campaign.outcome.{outcome.value}").inc()
        if seconds is not None:
            histogram("campaign.injection_seconds").observe(seconds)
        elapsed = time.monotonic() - self._run_started
        if elapsed > 0 and report.executed:
            gauge("campaign.injections_per_second").set(report.executed / elapsed)
        if self._dashboard is not None:
            self._dashboard.update(
                executed=report.executed + report.annotated,
                skipped=report.skipped,
                retries=report.retries,
                quarantined=report.quarantined,
            )
        # A freshly-landed representative decides its followers right away.
        followers = self._plan_followers.get(index)
        if annotation is None and followers:
            plan = self._plan
            for follower in followers:
                if follower not in done:
                    source = (
                        plan.sources.get(follower, plan.source)
                        if plan is not None
                        else "defuse"
                    )
                    self._record(
                        journal, done, report, follower,
                        self._run_points[follower], outcome, attempts=0,
                        annotation={"pruned_by": source, "equivalence_rep": point},
                    )

    def _retry_delay(self, attempt: int) -> float:
        """The jittered backoff sleep before re-running a failed attempt."""
        return backoff_delay(
            attempt,
            self.config.retry_backoff,
            cap=self.config.retry_backoff_cap,
            jitter=self.config.retry_jitter,
        )

    def _quarantine(
        self,
        journal: CampaignJournal,
        done: dict[int, InjectionRecord],
        report: RunReport,
        index: int,
        point: tuple[str, int],
        attempts: int,
        error: str,
    ) -> None:
        report.quarantined += 1
        counter("campaign.points.quarantined").inc()
        self._record(
            journal, done, report, index, point, Outcome.ERROR, attempts, error
        )

    # ------------------------------------------------------------------
    def _run_inline(self, points, pending, done, journal, report, stop) -> None:
        """Serial in-process execution (workers=0): retries, no wall timeout."""
        for index in pending:
            if stop.is_set():
                return
            dff_name, cycle = points[index]
            attempts = 0
            while True:
                attempts += 1
                start = time.monotonic()
                try:
                    outcome = self.campaign.inject(dff_name, cycle)
                except Exception as exc:  # noqa: BLE001 - quarantine boundary
                    if attempts > self.config.max_retries:
                        self._quarantine(
                            journal, done, report, index, points[index],
                            attempts, f"{type(exc).__name__}: {exc}",
                        )
                        break
                    report.retries += 1
                    counter("campaign.retries").inc()
                    time.sleep(self._retry_delay(attempts))
                else:
                    self._record(
                        journal, done, report, index, points[index],
                        outcome, attempts,
                        seconds=time.monotonic() - start, worker=os.getpid(),
                    )
                    break

    # ------------------------------------------------------------------
    def _make_pool(self) -> ProcessPoolExecutor:
        import multiprocessing

        telemetry_dir = (
            str(self.config.telemetry_dir)
            if self.config.telemetry_dir is not None
            else None
        )
        return ProcessPoolExecutor(
            max_workers=self.config.workers,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=_worker_init,
            initargs=(self.spec.to_dict(), self.config.max_cycles, telemetry_dir),
        )

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Hard-stop a pool whose workers may be wedged."""
        processes = list(getattr(pool, "_processes", {}).values())
        for process in processes:
            process.kill()
        pool.shutdown(wait=False, cancel_futures=True)

    def _run_pool(self, points, pending, done, journal, report, stop) -> None:
        """Supervised ProcessPoolExecutor execution with timeouts/retries."""
        config = self.config
        timeout = self.wall_timeout()
        queue = deque(pending)
        attempts: dict[int, int] = dict.fromkeys(pending, 0)
        last_error = "unknown"
        pool = self._make_pool()
        # The probe completes once a worker finished initializing (spawn +
        # compile + golden run). Until then, submitted points carry the
        # startup grace on their deadline; once it lands, deadlines re-arm
        # to a plain `now + timeout` so a hung first task cannot hide
        # behind the grace — including after every pool restart.
        probe = pool.submit(_worker_probe)
        pool_warm = False
        cold_restarts = 0  # pool deaths before any worker ever succeeded
        outstanding: dict = {}  # future -> (index, deadline)
        try:
            while (queue or outstanding) and not stop.is_set():
                # A point that failed before (crash or timeout) re-runs
                # *solo*: if the pool breaks again the culprit is
                # unambiguous, so innocent neighbours are never penalized
                # twice and only true poison points reach quarantine.
                solo_active = any(
                    attempts[i] > 0 for i, _ in outstanding.values()
                )
                while (
                    queue and len(outstanding) < config.workers and not solo_active
                ):
                    if attempts[queue[0]] > 0 and outstanding:
                        break  # drain the window, then run the suspect alone
                    index = queue.popleft()
                    dff_name, cycle = points[index]
                    future = pool.submit(_worker_inject, index, dff_name, cycle)
                    deadline = time.monotonic() + timeout
                    if not pool_warm:
                        deadline += config.startup_grace
                    outstanding[future] = (index, deadline)
                    if attempts[index] > 0:
                        break  # suspect submitted; keep it alone in the pool

                now = time.monotonic()
                wait_budget = max(
                    0.01, min(dl for _, dl in outstanding.values()) - now
                )
                waitset = set(outstanding)
                if not pool_warm:
                    waitset.add(probe)
                finished, _ = wait(
                    waitset, timeout=wait_budget, return_when=FIRST_COMPLETED
                )

                if not pool_warm and probe.done() and probe.exception() is None:
                    pool_warm = True
                    rearm = time.monotonic() + timeout
                    for key, (i, deadline) in outstanding.items():
                        outstanding[key] = (i, min(deadline, rearm))

                pool_broken = False
                for future in finished:
                    if future not in outstanding:
                        continue  # the probe
                    index, _ = outstanding.pop(future)
                    exc = future.exception()
                    if exc is None:
                        result_index, outcome_value, seconds, pid = future.result()
                        self._record(
                            journal, done, report, result_index,
                            points[result_index], Outcome(outcome_value),
                            attempts[result_index] + 1,
                            seconds=seconds, worker=pid,
                        )
                    elif isinstance(exc, BrokenProcessPool):
                        pool_broken = True
                        last_error = f"worker crashed: {exc}"
                        self._register_failure(
                            journal, done, report, points, queue, attempts,
                            index, last_error,
                        )
                    else:
                        last_error = f"{type(exc).__name__}: {exc}"
                        self._register_failure(
                            journal, done, report, points, queue, attempts,
                            index, last_error,
                        )

                timed_out = [
                    (future, index)
                    for future, (index, deadline) in outstanding.items()
                    if time.monotonic() >= deadline and not future.done()
                ]
                if timed_out:
                    for _, index in timed_out:
                        self._register_failure(
                            journal, done, report, points, queue, attempts,
                            index, f"wall-clock timeout after {timeout:.1f}s",
                        )
                    hung = {index for _, index in timed_out}
                    # The pool has wedged workers — survivors are innocent
                    # victims of the restart and are requeued free of charge.
                    for future, (index, _) in outstanding.items():
                        if index not in hung and not future.done():
                            queue.append(index)
                    outstanding.clear()
                    pool, probe, pool_warm = self._restart_pool(pool, report)
                elif pool_broken:
                    if not pool_warm:
                        cold_restarts += 1
                        if cold_restarts > max(2, self.config.max_retries + 1):
                            raise RuntimeError(
                                "worker pool died repeatedly before completing "
                                "a single injection — the target spec likely "
                                "fails to build in workers; last error: "
                                + last_error
                            )
                    # Every other outstanding future is doomed with the same
                    # BrokenProcessPool; drain them as free requeues.
                    for future, (index, _) in outstanding.items():
                        if index not in done:
                            queue.append(index)
                    outstanding.clear()
                    pool, probe, pool_warm = self._restart_pool(pool, report)
            if stop.is_set():
                for future in outstanding:
                    future.cancel()
        finally:
            self._kill_pool(pool)

    def _restart_pool(self, pool: ProcessPoolExecutor, report: RunReport):
        self._kill_pool(pool)
        report.worker_restarts += self.config.workers
        counter("campaign.worker_restarts").inc(self.config.workers)
        fresh = self._make_pool()
        return fresh, fresh.submit(_worker_probe), False

    def _register_failure(
        self, journal, done, report, points, queue, attempts,
        index: int, error: str,
    ) -> None:
        """Count one failed attempt; retry or quarantine the point."""
        if index in done:  # already quarantined in this round
            return
        attempts[index] += 1
        if attempts[index] > self.config.max_retries:
            self._quarantine(
                journal, done, report, index, points[index], attempts[index],
                error,
            )
        else:
            report.retries += 1
            counter("campaign.retries").inc()
            time.sleep(self._retry_delay(attempts[index]))
            queue.append(index)
