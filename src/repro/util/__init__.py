"""Shared low-level helpers: bit manipulation, deterministic RNG."""

from repro.util.bits import (
    bit_count,
    bits_of,
    from_bits,
    mask,
    sign_extend,
    to_signed,
)

__all__ = [
    "bit_count",
    "bits_of",
    "from_bits",
    "mask",
    "sign_extend",
    "to_signed",
]
