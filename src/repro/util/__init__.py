"""Shared low-level helpers: bit manipulation, timing, deterministic RNG."""

from repro.util.bits import (
    bit_count,
    bits_of,
    from_bits,
    mask,
    sign_extend,
    to_signed,
)
from repro.util.timing import Stopwatch

__all__ = [
    "Stopwatch",
    "bit_count",
    "bits_of",
    "from_bits",
    "mask",
    "sign_extend",
    "to_signed",
]
