"""Tiny wall-clock stopwatch used for Table 1 run-time reporting."""

from __future__ import annotations

import time


class Stopwatch:
    """Accumulating stopwatch; usable as a context manager.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started_at: float | None = None

    def start(self) -> None:
        """Begin a timing interval (error if already running)."""
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """End the interval; returns total accumulated seconds."""
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
