"""Deprecated wall-clock stopwatch — superseded by :mod:`repro.obs`.

``Stopwatch`` predates the observability layer; all pipeline call sites now
use :func:`repro.obs.span` (hierarchical, aggregated, exportable). The class
is kept as a shim for external users and emits a :class:`DeprecationWarning`
on construction. It will be removed in a future release.
"""

from __future__ import annotations

import time
import warnings


class Stopwatch:
    """Accumulating stopwatch; usable as a context manager.

    .. deprecated::
        Use ``with repro.obs.span("phase") as sp: ...`` and read
        ``sp.elapsed`` (or the registry's span aggregates) instead.

    >>> import warnings
    >>> with warnings.catch_warnings():
    ...     warnings.simplefilter("ignore", DeprecationWarning)
    ...     sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        warnings.warn(
            "repro.util.Stopwatch is deprecated; use repro.obs.span() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.elapsed = 0.0
        self._started_at: float | None = None

    def start(self) -> None:
        """Begin a timing interval (error if already running)."""
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """End the interval; returns total accumulated seconds."""
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
