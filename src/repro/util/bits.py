"""Bit-manipulation helpers used throughout the netlist and CPU models."""

from __future__ import annotations


def mask(width: int) -> int:
    """Return an all-ones mask of ``width`` bits.

    >>> mask(8)
    255
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def bits_of(value: int, width: int) -> list[int]:
    """Decompose ``value`` into ``width`` bits, LSB first.

    >>> bits_of(0b101, 4)
    [1, 0, 1, 0]
    """
    if value < 0:
        value &= mask(width)
    return [(value >> i) & 1 for i in range(width)]


def from_bits(bits: list[int]) -> int:
    """Reassemble an integer from LSB-first bits (inverse of :func:`bits_of`).

    >>> from_bits([1, 0, 1, 0])
    5
    """
    value = 0
    for i, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bit {i} is {bit!r}, expected 0 or 1")
        value |= bit << i
    return value


def bit_count(value: int) -> int:
    """Population count of a non-negative integer."""
    if value < 0:
        raise ValueError("bit_count expects a non-negative integer")
    return value.bit_count()


def sign_extend(value: int, width: int, to_width: int) -> int:
    """Sign-extend a ``width``-bit value to ``to_width`` bits.

    >>> sign_extend(0xFF, 8, 16)
    65535
    >>> sign_extend(0x7F, 8, 16)
    127
    """
    if to_width < width:
        raise ValueError(f"cannot sign-extend {width} bits down to {to_width}")
    value &= mask(width)
    if value & (1 << (width - 1)):
        value |= mask(to_width) & ~mask(width)
    return value


def to_signed(value: int, width: int) -> int:
    """Interpret a ``width``-bit value as two's-complement.

    >>> to_signed(0xFF, 8)
    -1
    """
    value &= mask(width)
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value
