"""repro — Cross-layer fault-space pruning for hardware-assisted fault injection.

A from-scratch reproduction of Dietrich et al., DAC 2018: fault-masking
terms (MATEs) that prune the flip-flop × cycle fault space of synchronous
circuits by proving, from the current (software-induced) hardware state,
that an SEU would be masked within one clock cycle.

Public API highlights
---------------------
- :mod:`repro.cells` — standard-cell library + gate-masking terms
- :mod:`repro.netlist` — gate-level netlist model and Verilog/JSON i/o
- :mod:`repro.rtl` / :mod:`repro.synth` — RTL DSL and tech-mapping synthesis
- :mod:`repro.sim` / :mod:`repro.trace` — cycle-accurate simulation + VCD
- :mod:`repro.core` — fault cones, MATE search, replay, top-N selection
- :mod:`repro.fi` — ground-truth SEU injection campaigns
- :mod:`repro.hafi` — FPGA HAFI platform cost/online-pruning model
- :mod:`repro.cpu` — AVR and MSP430 compatible cores + assemblers
- :mod:`repro.eval` — regenerates the paper's Tables 1-3 and Figure 1
"""

__version__ = "1.0.0"
