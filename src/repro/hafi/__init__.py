"""HAFI (hardware-assisted fault injection) platform model.

Models the FPGA side of the paper: LUT-cost estimation for synthesized MATE
sets (Sec. 6.1), an FI-controller/campaign time model, and the online
fault-space pruning flow of Figure 1b where MATEs are evaluated per cycle
inside the emulation to shrink the injection fault list.
"""

from repro.hafi.controller import CampaignPlan, FiControllerModel
from repro.hafi.fpga import FpgaDevice, MateHardwareCost, estimate_mate_cost
from repro.hafi.online import OnlinePruningRun, simulate_online_pruning

__all__ = [
    "CampaignPlan",
    "FiControllerModel",
    "FpgaDevice",
    "MateHardwareCost",
    "OnlinePruningRun",
    "estimate_mate_cost",
    "simulate_online_pruning",
]
