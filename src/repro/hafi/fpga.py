"""FPGA resource model: k-LUT packing cost of MATE sets (paper Sec. 6.1).

A MATE is a conjunction of ``n`` wire literals — an ``n``-input AND with
some inputs inverted, which synthesizes into a tree of ``k``-input LUTs.
The paper observes that with < 6 inputs on average one MATE fits in one or
two LUTs and is negligible next to the 1500–6000 LUTs of published FI
controllers on a mid-range Virtex-6 (XC6VLX240T, ~150k LUTs).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.mate import Mate


@dataclass(frozen=True)
class FpgaDevice:
    """An FPGA device, reduced to its LUT capacity."""

    name: str
    lut_inputs: int
    total_luts: int


#: The paper's reference device (mid-range Virtex-6).
XC6VLX240T = FpgaDevice(name="XC6VLX240T", lut_inputs=6, total_luts=150_720)


def luts_for_inputs(num_inputs: int, lut_inputs: int = 6) -> int:
    """LUTs needed for one ``num_inputs``-input boolean function (tree pack).

    >>> luts_for_inputs(4)
    1
    >>> luts_for_inputs(6)
    1
    >>> luts_for_inputs(7)
    2
    >>> luts_for_inputs(11)
    2
    >>> luts_for_inputs(26)
    5
    """
    if lut_inputs < 2:
        raise ValueError("LUTs need at least 2 inputs")
    if num_inputs <= 1:
        return 0 if num_inputs == 0 else 1
    if num_inputs <= lut_inputs:
        return 1
    # Each extra LUT absorbs (lut_inputs - 1) further inputs.
    return 1 + math.ceil((num_inputs - lut_inputs) / (lut_inputs - 1))


@dataclass
class MateHardwareCost:
    """Aggregate LUT cost of a MATE set on a device."""

    device: FpgaDevice
    num_mates: int
    total_inputs: int
    total_luts: int
    max_luts_single_mate: int

    @property
    def average_inputs(self) -> float:
        """Mean MATE input count (the paper's FPGA-friendliness metric)."""
        return self.total_inputs / self.num_mates if self.num_mates else 0.0

    @property
    def device_utilization(self) -> float:
        """MATE LUTs as a fraction of the whole device."""
        return self.total_luts / self.device.total_luts

    def format(self) -> str:
        """One-line cost summary."""
        return (
            f"{self.num_mates} MATEs: {self.total_luts} LUT(s) on "
            f"{self.device.name} ({100 * self.device_utilization:.3f}% of device), "
            f"avg {self.average_inputs:.1f} inputs, "
            f"worst single MATE {self.max_luts_single_mate} LUT(s)"
        )


def estimate_mate_cost(
    mates: Sequence[Mate], device: FpgaDevice = XC6VLX240T
) -> MateHardwareCost:
    """LUT cost of synthesizing a MATE set into a device."""
    total_luts = 0
    total_inputs = 0
    worst = 0
    for mate in mates:
        luts = luts_for_inputs(mate.num_inputs, device.lut_inputs)
        total_luts += luts
        total_inputs += mate.num_inputs
        worst = max(worst, luts)
    return MateHardwareCost(
        device=device,
        num_mates=len(mates),
        total_inputs=total_inputs,
        total_luts=total_luts,
        max_luts_single_mate=worst,
    )
