"""Online fault-space pruning, as a HAFI platform would run it (Fig. 1b).

The MATE set is "synthesized into" the emulated design: every cycle, each
MATE's conjunction is evaluated against the live wire values, and triggered
MATEs remove their covered (flip-flop, cycle) points from the fault list.
This module simulates exactly that flow cycle by cycle — without requiring
a pre-recorded trace, which is the paper's argument for *online* pruning
(indeterminism, long-running programs, multi-FPGA coarse injection
commands).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.faultspace import FaultSpace
from repro.core.mate import Mate
from repro.netlist.netlist import Netlist
from repro.obs import counter, gauge, span
from repro.sim.simulator import Simulator
from repro.sim.testbench import Testbench


@dataclass
class OnlinePruningRun:
    """Outcome of an online-pruned emulation run."""

    fault_space: FaultSpace
    cycles: int
    #: Per-MATE trigger counts (index-aligned with the MATE list).
    trigger_counts: list[int]

    @property
    def pruned_fraction(self) -> float:
        """Fraction of the fault space pruned during the run."""
        return self.fault_space.benign_fraction

    def fault_list(self) -> list[tuple[str, int]]:
        """The remaining injection commands after online pruning."""
        return self.fault_space.remaining_points()


def simulate_online_pruning(
    netlist: Netlist,
    mates: Sequence[Mate],
    testbench: Testbench,
    cycles: int,
    simulator: Simulator | None = None,
) -> OnlinePruningRun:
    """Emulate ``cycles`` of the workload with in-circuit MATE evaluation.

    The per-cycle evaluation consumes each wire row as it is produced — no
    trace is stored, mirroring a real HAFI platform where MATE outputs feed
    the fault-list filter directly.
    """
    simulator = simulator or Simulator(netlist)
    compiled = simulator.compiled
    dff_of_wire = {dff.q: name for name, dff in netlist.dffs.items()}

    # Pre-resolve each MATE's literal columns in the wire-row layout.
    column = {wire: i for i, wire in enumerate(compiled.trace_wires)}
    mate_checks: list[list[tuple[int, int]]] = []
    mate_targets: list[list[str]] = []
    for index, mate in enumerate(mates):
        for wire, _ in mate.literals:
            if wire not in column:
                raise ValueError(
                    f"MATE #{index} references wire {wire!r} which does not "
                    f"exist in netlist {netlist.name!r} — the MATE set was "
                    "likely computed from a differently-synthesized netlist"
                )
        mate_checks.append([(column[w], v) for w, v in mate.literals])
        mate_targets.append(
            [dff_of_wire[w] for w in mate.fault_wires if w in dff_of_wire]
        )

    space = FaultSpace(
        [name for name in netlist.dffs], cycles
    )
    trigger_counts = [0] * len(mates)

    state = compiled.initial_state()
    step = compiled.step
    from repro.sim.simulator import StateView

    with span(
        "hafi/online-pruning", netlist=netlist.name, cycles=cycles, mates=len(mates)
    ) as run_span:
        for cycle in range(cycles):
            view = StateView(state, simulator.dff_index, simulator.reg_widths)
            inputs = simulator.pack_inputs(testbench.drive(cycle, view))
            state, outputs, row = step(state, inputs)
            for index, checks in enumerate(mate_checks):
                if all(row[col] == val for col, val in checks):
                    trigger_counts[index] += 1
                    for dff_name in mate_targets[index]:
                        space.mark_benign(dff_name, cycle)
            testbench.observe(cycle, simulator.unpack_outputs(outputs))

    counter("hafi.cycles.emulated").inc(cycles)
    counter("hafi.mate.evaluations").inc(cycles * len(mates))
    counter("hafi.mate.triggers").inc(sum(trigger_counts))
    counter("hafi.points.pruned").inc(space.num_benign)
    if cycles:
        # Per-cycle cost of evaluating the whole MATE set in the emulation.
        gauge("hafi.seconds_per_cycle").set(run_span.elapsed / cycles)

    return OnlinePruningRun(
        fault_space=space, cycles=cycles, trigger_counts=trigger_counts
    )
