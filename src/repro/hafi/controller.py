"""FI-controller and campaign time model.

Quantifies what MATE pruning buys a HAFI campaign: each injection point
costs one emulated run (restore + run-to-detection); pruning removes
runs. The speedup figures follow the paper's framing — FPGA emulation is
~1000x faster than netlist simulation [Nowosielski et al., DATE'15], and
the controller occupies a fixed LUT budget [1500..6000].
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hafi.fpga import FpgaDevice, MateHardwareCost, XC6VLX240T


@dataclass(frozen=True)
class FiControllerModel:
    """An FPGA fault-injection controller."""

    name: str = "fsm-controller"
    luts: int = 3000  # within the published 1500..6000 range
    clock_hz: float = 50e6
    #: Fixed per-experiment overhead (state restore + result readout).
    overhead_cycles: int = 200


@dataclass
class CampaignPlan:
    """Cost model of a fault-injection campaign on a HAFI platform."""

    controller: FiControllerModel
    device: FpgaDevice
    fault_space_size: int
    pruned_points: int
    workload_cycles: int
    mate_cost: MateHardwareCost | None = None

    @property
    def experiments(self) -> int:
        """Injection runs remaining after pruning."""
        return self.fault_space_size - self.pruned_points

    @property
    def pruned_fraction(self) -> float:
        """Pruned share of the fault space."""
        if self.fault_space_size == 0:
            return 0.0
        return self.pruned_points / self.fault_space_size

    def _seconds(self, num_experiments: int) -> float:
        # On average an injected run executes half the workload before the
        # terminal state, plus fixed per-experiment overhead.
        cycles = num_experiments * (
            self.workload_cycles / 2 + self.controller.overhead_cycles
        )
        return cycles / self.controller.clock_hz

    @property
    def campaign_seconds(self) -> float:
        """Estimated wall-clock for the pruned campaign."""
        return self._seconds(self.experiments)

    @property
    def unpruned_campaign_seconds(self) -> float:
        """Estimated wall-clock without any pruning."""
        return self._seconds(self.fault_space_size)

    @property
    def seconds_saved(self) -> float:
        """Campaign time saved by pruning."""
        return self.unpruned_campaign_seconds - self.campaign_seconds

    @property
    def total_luts(self) -> int:
        """Controller plus MATE LUTs."""
        extra = self.mate_cost.total_luts if self.mate_cost else 0
        return self.controller.luts + extra

    @property
    def lut_overhead_fraction(self) -> float:
        """MATE LUTs relative to the FI controller itself."""
        if self.mate_cost is None:
            return 0.0
        return self.mate_cost.total_luts / self.controller.luts

    def fits(self) -> bool:
        """True if controller + MATEs fit the device."""
        return self.total_luts <= self.device.total_luts

    def format(self) -> str:
        """Multi-line campaign-plan summary."""
        lines = [
            f"campaign over {self.fault_space_size} (ff, cycle) points, "
            f"{self.workload_cycles} cycles/run",
            f"  pruned by MATEs : {self.pruned_points} "
            f"({100 * self.pruned_fraction:.2f}%)",
            f"  experiments     : {self.experiments}",
            f"  est. time       : {self.campaign_seconds:.1f}s "
            f"(vs {self.unpruned_campaign_seconds:.1f}s unpruned, "
            f"saves {self.seconds_saved:.1f}s)",
            f"  controller LUTs : {self.controller.luts}",
        ]
        if self.mate_cost is not None:
            lines.append(
                f"  MATE LUTs       : {self.mate_cost.total_luts} "
                f"(+{100 * self.lut_overhead_fraction:.1f}% of controller, "
                f"{100 * self.mate_cost.device_utilization:.3f}% of "
                f"{self.device.name})"
            )
        return "\n".join(lines)


def plan_campaign(
    fault_space_size: int,
    pruned_points: int,
    workload_cycles: int,
    mate_cost: MateHardwareCost | None = None,
    controller: FiControllerModel | None = None,
    device: FpgaDevice = XC6VLX240T,
) -> CampaignPlan:
    """Convenience constructor for a campaign cost estimate."""
    return CampaignPlan(
        controller=controller or FiControllerModel(),
        device=device,
        fault_space_size=fault_space_size,
        pruned_points=pruned_points,
        workload_cycles=workload_cycles,
        mate_cost=mate_cost,
    )
