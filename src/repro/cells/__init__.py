"""Standard-cell library substrate.

This package models what the paper takes from the 15nm Open Cell Library:
the *logical function* of every gate type, plus the paper's first analysis
step — extracting *gate-masking terms* per (cell, faulty-input-set).
"""

from repro.cells.functions import BoolFunc
from repro.cells.library import Cell, Library
from repro.cells.masking import (
    MaskingTerm,
    gate_masking_terms,
    has_masking_capability,
)
from repro.cells.nangate15 import NANGATE15, nangate15_library

__all__ = [
    "NANGATE15",
    "BoolFunc",
    "Cell",
    "Library",
    "MaskingTerm",
    "gate_masking_terms",
    "has_masking_capability",
    "nangate15_library",
]
