"""Gate-masking term extraction (paper Sec. 4, step 1).

For a cell and a set of *faulty* input pins, a gate-masking term is a partial
assignment of the remaining (*unfaulty*) pins that forces the cell output to
be independent of every faulty pin — i.e. the fault is stopped at this gate
no matter what values the faulty wires take.

Example from the paper: for a 1-bit multiplexer ``MUX(S, A, B)`` with faulty
select input ``{S}``::

    GM(MUX2, {S}) = {(A=0, B=0), (A=1, B=1)}

and an XOR gate has no masking capability at all.

The analysis is exact: cells are small, so we exhaustively check every
partial assignment against the truth table and keep only the *minimal*
(prime) terms.
"""

from __future__ import annotations

import itertools
from functools import lru_cache

from repro.cells.functions import BoolFunc
from repro.cells.library import Cell


class MaskingTerm:
    """A minimal partial assignment of unfaulty pins that masks a fault.

    The assignment is stored as a sorted tuple of ``(pin, value)`` pairs.
    An *empty* assignment means the cell output never depends on the faulty
    pins (the fault is always masked at this gate).
    """

    __slots__ = ("assignment",)

    def __init__(
        self, assignment: dict[str, int] | tuple[tuple[str, int], ...]
    ) -> None:
        if isinstance(assignment, dict):
            items = tuple(sorted(assignment.items()))
        else:
            items = tuple(sorted(assignment))
        for pin, value in items:
            if value not in (0, 1):
                raise ValueError(f"pin {pin} assigned non-boolean {value!r}")
        self.assignment: tuple[tuple[str, int], ...] = items

    @property
    def pins(self) -> tuple[str, ...]:
        """Pins this term assigns."""
        return tuple(pin for pin, _ in self.assignment)

    def as_dict(self) -> dict[str, int]:
        """The assignment as a pin -> value dict."""
        return dict(self.assignment)

    def __len__(self) -> int:
        return len(self.assignment)

    def is_subset_of(self, other: "MaskingTerm") -> bool:
        """True if every literal of this term also appears in ``other``."""
        return set(self.assignment) <= set(other.assignment)

    def conflicts_with(self, other: "MaskingTerm") -> bool:
        """True if the two terms assign opposite values to some pin."""
        mine = dict(self.assignment)
        return any(
            pin in mine and mine[pin] != value for pin, value in other.assignment
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MaskingTerm):
            return NotImplemented
        return self.assignment == other.assignment

    def __hash__(self) -> int:
        return hash(self.assignment)

    def __repr__(self) -> str:
        body = ", ".join(f"{pin}={value}" for pin, value in self.assignment)
        return f"MaskingTerm({body})"


@lru_cache(maxsize=None)
def _masking_terms_for_function(
    function: BoolFunc, faulty_pins: frozenset[str]
) -> tuple[MaskingTerm, ...]:
    unfaulty = [pin for pin in function.pins if pin not in faulty_pins]
    faulty = [pin for pin in function.pins if pin in faulty_pins]

    # Fast path: the output never depends on the faulty pins.
    if function.is_independent_of(faulty):
        return (MaskingTerm(()),)

    terms: list[MaskingTerm] = []
    # Enumerate partial assignments by increasing size so that minimal
    # (prime) terms are found first and all supersets can be skipped.
    for size in range(1, len(unfaulty) + 1):
        for pins in itertools.combinations(unfaulty, size):
            for values in itertools.product((0, 1), repeat=size):
                candidate = MaskingTerm(tuple(zip(pins, values)))
                if any(kept.is_subset_of(candidate) for kept in terms):
                    continue
                restricted = function
                for pin, value in candidate.assignment:
                    restricted = restricted.cofactor(pin, value)
                if restricted.is_independent_of(faulty):
                    terms.append(candidate)
    return tuple(terms)


def gate_masking_terms(
    cell: Cell, faulty_pins: frozenset[str] | set[str]
) -> tuple[MaskingTerm, ...]:
    """All minimal gate-masking terms of ``cell`` for a faulty-input set.

    >>> from repro.cells.nangate15 import nangate15_library
    >>> lib = nangate15_library()
    >>> gate_masking_terms(lib["AND2"], {"A"})
    (MaskingTerm(B=0),)
    >>> gate_masking_terms(lib["XOR2"], {"A"})
    ()
    """
    faulty = frozenset(faulty_pins)
    if cell.sequential:
        raise ValueError(f"cell {cell.name} is sequential; faults pass through DFFs")
    if not faulty:
        raise ValueError("faulty pin set must be non-empty")
    unknown = faulty - set(cell.inputs)
    if unknown:
        raise ValueError(f"cell {cell.name} has no pins {sorted(unknown)}")
    assert cell.function is not None
    return _masking_terms_for_function(cell.function, faulty)


def has_masking_capability(
    cell: Cell, faulty_pins: frozenset[str] | set[str]
) -> bool:
    """True if at least one gate-masking term exists for this faulty set."""
    return bool(gate_masking_terms(cell, faulty_pins))
