"""Truth-table based boolean functions for standard cells.

A :class:`BoolFunc` stores the complete truth table of a (small) boolean
function as an integer bit mask: row ``i`` of the table corresponds to the
input assignment where pin ``j`` carries bit ``(i >> j) & 1``, and the
function value for that row is bit ``i`` of :attr:`BoolFunc.table`.

Truth tables make the gate-masking analysis (``repro.cells.masking``) exact
and trivially exhaustive — standard cells have at most a handful of inputs.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence


class BoolFunc:
    """A boolean function of named pins, stored as a truth table."""

    __slots__ = ("pins", "table", "_hash")

    def __init__(self, pins: Sequence[str], table: int) -> None:
        if len(set(pins)) != len(pins):
            raise ValueError(f"duplicate pin names in {pins!r}")
        if len(pins) > 16:
            raise ValueError("BoolFunc supports at most 16 pins")
        rows = 1 << len(pins)
        if not 0 <= table < (1 << rows):
            raise ValueError(f"table {table:#x} out of range for {len(pins)} pins")
        self.pins: tuple[str, ...] = tuple(pins)
        self.table: int = table
        self._hash = hash((self.pins, self.table))

    @classmethod
    def from_callable(
        cls, pins: Sequence[str], func: Callable[..., int]
    ) -> "BoolFunc":
        """Tabulate ``func`` (called with one positional int per pin).

        >>> f = BoolFunc.from_callable(["A", "B"], lambda a, b: a & b)
        >>> f.table
        8
        """
        pins = tuple(pins)
        table = 0
        for row in range(1 << len(pins)):
            args = [(row >> j) & 1 for j in range(len(pins))]
            if func(*args) & 1:
                table |= 1 << row
        return cls(pins, table)

    @classmethod
    def from_expression(cls, pins: Sequence[str], expression: str) -> "BoolFunc":
        """Tabulate a Python boolean expression over the pin names.

        >>> BoolFunc.from_expression(["A", "B"], "A ^ B").table
        6
        """
        pins = tuple(pins)
        code = compile(expression, f"<expr {expression!r}>", "eval")
        table = 0
        for row in range(1 << len(pins)):
            env = {pin: (row >> j) & 1 for j, pin in enumerate(pins)}
            if eval(code, {"__builtins__": {}}, env) & 1:  # noqa: S307
                table |= 1 << row
        return cls(pins, table)

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        """Evaluate under a complete pin assignment.

        >>> f = BoolFunc.from_expression(["A", "B"], "A and not B")
        >>> f.evaluate({"A": 1, "B": 0})
        1
        """
        row = 0
        for j, pin in enumerate(self.pins):
            value = assignment[pin]
            if value not in (0, 1):
                raise ValueError(f"pin {pin} has non-boolean value {value!r}")
            row |= value << j
        return (self.table >> row) & 1

    def evaluate_row(self, row: int) -> int:
        """Evaluate for a packed input row (pin ``j`` = bit ``j`` of ``row``)."""
        return (self.table >> (row & ((1 << len(self.pins)) - 1))) & 1

    def cofactor(self, pin: str, value: int) -> "BoolFunc":
        """Restrict ``pin`` to ``value``; the pin stays in the signature.

        >>> f = BoolFunc.from_expression(["A", "B"], "A & B")
        >>> f.cofactor("B", 0).table
        0
        """
        j = self.pins.index(pin)
        table = 0
        for row in range(1 << len(self.pins)):
            fixed = (row & ~(1 << j)) | (value << j)
            if (self.table >> fixed) & 1:
                table |= 1 << row
        return BoolFunc(self.pins, table)

    def depends_on(self, pin: str) -> bool:
        """True if the output can change when only ``pin`` changes.

        >>> BoolFunc.from_expression(["A", "B"], "A | 1").depends_on("A")
        False
        """
        return self.cofactor(pin, 0).table != self.cofactor(pin, 1).table

    def support(self) -> tuple[str, ...]:
        """The pins the function actually depends on."""
        return tuple(pin for pin in self.pins if self.depends_on(pin))

    def is_independent_of(self, pins: Sequence[str]) -> bool:
        """True if no pin in ``pins`` can influence the output."""
        return not any(self.depends_on(pin) for pin in pins)

    def python_expression(self) -> str:
        """Render as a sum-of-products Python expression (for codegen).

        Constants render as ``0``/``1``; otherwise a minimal-ish SOP built
        from the ON-set rows.
        """
        rows = 1 << len(self.pins)
        if self.table == 0:
            return "0"
        if self.table == (1 << rows) - 1:
            return "1"
        terms = []
        for row in range(rows):
            if not (self.table >> row) & 1:
                continue
            literals = []
            for j, pin in enumerate(self.pins):
                if not self.depends_on(pin):
                    continue
                if (row >> j) & 1:
                    literals.append(pin)
                else:
                    literals.append(f"(1 ^ {pin})")
            terms.append(" & ".join(literals) if literals else "1")
        # Deduplicate rows that collapsed after dropping unused pins.
        unique_terms = sorted(set(terms))
        return " | ".join(f"({t})" for t in unique_terms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoolFunc):
            return NotImplemented
        return self.pins == other.pins and self.table == other.table

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"BoolFunc(pins={self.pins!r}, table={self.table:#x})"
