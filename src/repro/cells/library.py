"""Cell and Library containers.

A :class:`Cell` is a named gate type with an ordered set of input pins and a
single output pin. Combinational cells carry a :class:`~repro.cells.functions.BoolFunc`;
the one sequential cell kind (D flip-flop) is flagged with ``sequential=True``
and has the conventional pins ``D`` (input) and ``Q`` (output) with an
implicit common clock, which matches the paper's synchronous-circuit model.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.cells.functions import BoolFunc


class Cell:
    """One gate type of a standard-cell library."""

    __slots__ = ("name", "inputs", "output", "function", "area", "sequential")

    def __init__(
        self,
        name: str,
        inputs: tuple[str, ...],
        output: str,
        function: BoolFunc | None,
        area: float = 1.0,
        sequential: bool = False,
    ) -> None:
        if sequential:
            if function is not None:
                raise ValueError(f"sequential cell {name} must not carry a function")
        else:
            if function is None:
                raise ValueError(f"combinational cell {name} needs a function")
            if function.pins != inputs:
                raise ValueError(
                    f"cell {name}: function pins {function.pins} != inputs {inputs}"
                )
        if output in inputs:
            raise ValueError(f"cell {name}: output pin {output} also an input")
        self.name = name
        self.inputs = inputs
        self.output = output
        self.function = function
        self.area = area
        self.sequential = sequential

    @property
    def num_inputs(self) -> int:
        """Number of input pins."""
        return len(self.inputs)

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        """Evaluate the (combinational) cell output for a pin assignment."""
        if self.function is None:
            raise ValueError(f"cell {self.name} is sequential")
        return self.function.evaluate(assignment)

    def __repr__(self) -> str:
        kind = "seq" if self.sequential else "comb"
        return f"Cell({self.name}, in={self.inputs}, out={self.output}, {kind})"


class Library:
    """An ordered, name-indexed collection of cells."""

    def __init__(self, name: str, cells: Iterable[Cell] = ()) -> None:
        self.name = name
        self._cells: dict[str, Cell] = {}
        for cell in cells:
            self.add(cell)

    def add(self, cell: Cell) -> None:
        """Register a cell (duplicate names rejected)."""
        if cell.name in self._cells:
            raise ValueError(f"duplicate cell {cell.name} in library {self.name}")
        self._cells[cell.name] = cell

    def __getitem__(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(
                f"cell {name!r} not in library {self.name!r} "
                f"(known: {sorted(self._cells)})"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self) -> Iterator[Cell]:
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    def combinational(self) -> list[Cell]:
        """All combinational cells, in insertion order."""
        return [cell for cell in self if not cell.sequential]

    def sequential(self) -> list[Cell]:
        """All sequential cells (the DFF family)."""
        return [cell for cell in self if cell.sequential]

    def __repr__(self) -> str:
        return f"Library({self.name!r}, {len(self)} cells)"
