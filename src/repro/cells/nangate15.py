"""A 15nm-Open-Cell-Library-flavoured standard-cell library.

The paper synthesized both cores with the freely available 15nm FinFET Open
Cell Library [Martins et al., ISPD'15]. The MATE analysis only consumes the
*logical function* of each cell, so this module provides the OCL's
combinational cell families (inverter/buffer, N-input NAND/NOR/AND/OR,
XOR/XNOR, 2:1 mux, AOI/OAI complex gates) plus a D flip-flop, with relative
area figures in the same ballpark as the OCL datasheet (units of one
inverter).
"""

from __future__ import annotations

from functools import lru_cache

from repro.cells.functions import BoolFunc
from repro.cells.library import Cell, Library

#: Name of the default library instance.
NANGATE15 = "nangate15"


def _comb(name: str, pins: tuple[str, ...], expression: str, area: float) -> Cell:
    return Cell(
        name=name,
        inputs=pins,
        output="Y",
        function=BoolFunc.from_expression(pins, expression),
        area=area,
    )


@lru_cache(maxsize=1)
def nangate15_library() -> Library:
    """Build (once) the default cell library used by synthesis and search."""
    cells = [
        _comb("INV", ("A",), "1 ^ A", 1.0),
        _comb("BUF", ("A",), "A", 1.3),
        _comb("AND2", ("A", "B"), "A & B", 1.6),
        _comb("AND3", ("A", "B", "C"), "A & B & C", 2.0),
        _comb("AND4", ("A", "B", "C", "D"), "A & B & C & D", 2.3),
        _comb("NAND2", ("A", "B"), "1 ^ (A & B)", 1.3),
        _comb("NAND3", ("A", "B", "C"), "1 ^ (A & B & C)", 1.6),
        _comb("NAND4", ("A", "B", "C", "D"), "1 ^ (A & B & C & D)", 2.0),
        _comb("OR2", ("A", "B"), "A | B", 1.6),
        _comb("OR3", ("A", "B", "C"), "A | B | C", 2.0),
        _comb("OR4", ("A", "B", "C", "D"), "A | B | C | D", 2.3),
        _comb("NOR2", ("A", "B"), "1 ^ (A | B)", 1.3),
        _comb("NOR3", ("A", "B", "C"), "1 ^ (A | B | C)", 1.6),
        _comb("NOR4", ("A", "B", "C", "D"), "1 ^ (A | B | C | D)", 2.0),
        _comb("XOR2", ("A", "B"), "A ^ B", 2.0),
        _comb("XNOR2", ("A", "B"), "1 ^ (A ^ B)", 2.0),
        # 2:1 multiplexer; S selects B when high, A when low.
        _comb("MUX2", ("A", "B", "S"), "(B if S else A)", 2.3),
        # And-Or-Invert / Or-And-Invert complex gates.
        _comb("AOI21", ("A1", "A2", "B"), "1 ^ ((A1 & A2) | B)", 1.6),
        _comb("AOI22", ("A1", "A2", "B1", "B2"), "1 ^ ((A1 & A2) | (B1 & B2))", 2.0),
        _comb("OAI21", ("A1", "A2", "B"), "1 ^ ((A1 | A2) & B)", 1.6),
        _comb("OAI22", ("A1", "A2", "B1", "B2"), "1 ^ ((A1 | A2) & (B1 | B2))", 2.0),
        # Majority / carry cell (full-adder carry = MAJ3).
        _comb("MAJ3", ("A", "B", "C"), "(A & B) | (A & C) | (B & C)", 2.6),
        # 3-input XOR (full-adder sum).
        _comb("XOR3", ("A", "B", "C"), "A ^ B ^ C", 3.0),
        Cell(
            name="DFF",
            inputs=("D",),
            output="Q",
            function=None,
            area=4.0,
            sequential=True,
        ),
    ]
    return Library(NANGATE15, cells)
