"""Synthesis driver: RTL circuit → gate-level netlist."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.library import Library
from repro.cells.nangate15 import nangate15_library
from repro.netlist.netlist import Netlist
from repro.rtl.circuit import RtlCircuit
from repro.synth.bitgraph import BitGraph
from repro.synth.lower import Lowerer, bit_name
from repro.synth.techmap import TechMapper


class SynthesisEquivalenceError(RuntimeError):
    """Raised by ``synthesize(..., verify=True)`` on an optimizer miscompile.

    Carries the :class:`~repro.formal.miter.EquivalenceResult` (including
    the distinguishing input/state assignment) as :attr:`result`.
    """

    def __init__(self, result) -> None:
        super().__init__(result.describe())
        self.result = result


@dataclass
class SynthesisResult:
    """A synthesized netlist plus the bit-graph artifacts it came from.

    ``output_bits`` / ``next_bits`` map word-level output and register
    names to their per-bit node ids in ``graph`` (LSB first) — enough to
    cross-check :meth:`BitGraph.evaluate` against the netlist simulator.
    """

    netlist: Netlist
    graph: BitGraph
    output_bits: dict[str, list[int]]
    next_bits: dict[str, list[int]]


def elaborate(
    circuit: RtlCircuit,
    library: Library | None = None,
    name: str | None = None,
    simplify: bool = True,
) -> SynthesisResult:
    """Lower, (optionally) optimize, and tech-map an RTL circuit.

    ``simplify=False`` disables every bit-graph rewrite and produces the
    *unoptimized reference* netlist used by the equivalence check.
    """
    circuit.finalize()
    if library is None:
        library = nangate15_library()
    netlist = Netlist(name or circuit.name, library)

    graph = BitGraph(simplify=simplify)
    lowerer = Lowerer(graph)

    output_bits = {out: lowerer.lower(expr) for out, expr in circuit.outputs.items()}
    next_bits = {
        reg_name: lowerer.lower(reg.next) for reg_name, reg in circuit.regs.items()
    }

    roots: list[int] = []
    for bits in output_bits.values():
        roots.extend(bits)
    for bits in next_bits.values():
        roots.extend(bits)

    # Primary inputs: every declared input bit, used or not.
    for input_name, signal in circuit.inputs.items():
        for i in range(signal.width):
            netlist.add_input(bit_name(input_name, i, signal.width))

    mapper = TechMapper(graph, netlist, roots)
    mapper.run()

    # Flip-flops: Q wire / instance name is the canonical register bit name.
    register_file_dffs: list[str] = []
    for reg_name, reg in circuit.regs.items():
        bits = next_bits[reg_name]
        for i, node_id in enumerate(bits):
            q_wire = bit_name(reg_name, i, reg.width)
            dff = netlist.add_dff(
                q_wire, d=mapper.wire_of(node_id), q=q_wire,
                init=(reg.init >> i) & 1,
            )
            if reg.register_file:
                register_file_dffs.append(dff.name)

    # Primary outputs get a buffer so the port owns a cleanly-named wire.
    for out_name, bits in output_bits.items():
        width = circuit.outputs[out_name].width
        for i, node_id in enumerate(bits):
            wire = bit_name(out_name, i, width)
            netlist.add_gate(
                f"obuf_{wire}", "BUF", {"A": mapper.wire_of(node_id)}, wire
            )
            netlist.add_output(wire)

    netlist.attributes["register_file_dffs"] = sorted(register_file_dffs)
    netlist.attributes["input_widths"] = {
        sig_name: sig.width for sig_name, sig in circuit.inputs.items()
    }
    netlist.attributes["output_widths"] = {
        out_name: expr.width for out_name, expr in circuit.outputs.items()
    }
    netlist.attributes["reg_widths"] = {
        reg_name: reg.width for reg_name, reg in circuit.regs.items()
    }
    return SynthesisResult(
        netlist=netlist, graph=graph, output_bits=output_bits, next_bits=next_bits
    )


def synthesize(
    circuit: RtlCircuit,
    library: Library | None = None,
    name: str | None = None,
    verify: bool = False,
) -> Netlist:
    """Synthesize an RTL circuit onto a standard-cell library.

    The resulting netlist carries attributes used downstream:

    - ``register_file_dffs``: DFF instance names tagged via
      ``reg(..., register_file=True)``
    - ``input_widths`` / ``output_widths`` / ``reg_widths``: word-level port map

    With ``verify=True`` the circuit is additionally tech-mapped with
    every bit-graph optimization disabled and the two netlists are proven
    combinationally equivalent by the SAT miter
    (:func:`repro.formal.miter.check_netlist_equivalence`); a miscompile
    raises :class:`SynthesisEquivalenceError` with a distinguishing
    input/state assignment.
    """
    result = elaborate(circuit, library=library, name=name)
    if verify:
        equivalence = verify_synthesis(circuit, result.netlist, library=library)
        if not equivalence.equivalent:
            raise SynthesisEquivalenceError(equivalence)
    return result.netlist


def verify_synthesis(
    circuit: RtlCircuit,
    optimized: Netlist,
    library: Library | None = None,
):
    """SAT-check ``optimized`` against an unoptimized re-synthesis.

    Returns the :class:`~repro.formal.miter.EquivalenceResult`; callers
    decide whether inequivalence is an exception (``synthesize``) or a
    diagnostic (the ``synth.not-equivalent`` lint rule).
    """
    from repro.formal.miter import check_netlist_equivalence

    reference = elaborate(
        circuit,
        library=library,
        name=f"{optimized.name}__unopt",
        simplify=False,
    ).netlist
    return check_netlist_equivalence(reference, optimized)
