"""Technology mapping: bit-graph nodes → standard-cell instances.

Local fusion patterns keep the mapped netlist close to what an
area-optimizing synthesis run produces: NOT-over-AND/OR/XOR becomes
NAND/NOR/XNOR, single-fanout AND/OR chains collapse into the 3- and 4-input
cells, adders map to the XOR3/MAJ3 full-adder cells emitted by lowering.
"""

from __future__ import annotations

from collections import Counter

from repro.netlist.netlist import CONST0 as WIRE0
from repro.netlist.netlist import CONST1 as WIRE1
from repro.netlist.netlist import Netlist
from repro.synth.bitgraph import CONST0, CONST1, BitGraph

_CHAIN_LIMIT = 4  # widest AND/OR cell in the library
_PIN_ORDERS = {
    1: ("A",),
    2: ("A", "B"),
    3: ("A", "B", "C"),
    4: ("A", "B", "C", "D"),
}


class TechMapper:
    """Maps the live part of a :class:`BitGraph` into an existing netlist."""

    def __init__(self, graph: BitGraph, netlist: Netlist, roots: list[int]) -> None:
        self.graph = graph
        self.netlist = netlist
        self.roots = roots
        self._live = graph.live_nodes(roots)
        self._fanout: Counter[int] = Counter()
        for node_id in self._live:
            for operand in graph.fanin(node_id):
                self._fanout[operand] += 1
        for root in roots:
            self._fanout[root] += 1
        self._root_set = set(roots)
        self._absorbed: set[int] = set()
        self._plans: dict[int, tuple[str, list[int]]] = {}

    # ------------------------------------------------------------------
    def wire_of(self, node_id: int) -> str:
        """The netlist wire carrying a node's value (valid after run())."""
        if node_id == CONST0:
            return WIRE0
        if node_id == CONST1:
            return WIRE1
        node = self.graph.nodes[node_id]
        if node[0] == "VAR":
            return node[1]
        return f"n{node_id}"

    def run(self) -> None:
        """Plan fusions and emit all live gates into the netlist."""
        self._plan()
        self._emit()

    # ------------------------------------------------------------------
    def _fusable(self, node_id: int, kind: str) -> bool:
        return (
            self.graph.nodes[node_id][0] == kind
            and self._fanout[node_id] == 1
            and node_id not in self._root_set
            and node_id not in self._absorbed
        )

    def _fuse_chain(self, kind: str, node_id: int) -> list[int]:
        """Greedily inline single-fanout same-kind operands (≤ 4 leaves)."""
        leaves = list(self.graph.fanin(node_id))
        changed = True
        while changed and len(leaves) < _CHAIN_LIMIT:
            changed = False
            for index, leaf in enumerate(leaves):
                if not self._fusable(leaf, kind):
                    continue
                operands = self.graph.fanin(leaf)
                if len(leaves) - 1 + len(operands) > _CHAIN_LIMIT:
                    continue
                self._absorbed.add(leaf)
                leaves[index : index + 1] = list(operands)
                changed = True
                break
        return leaves

    def _plan(self) -> None:
        nodes = self.graph.nodes
        # Consumers before operands, so absorption marks are seen in time.
        for node_id in reversed(self._live):
            if node_id in self._absorbed or node_id in (CONST0, CONST1):
                continue
            kind = nodes[node_id][0]
            if kind == "VAR":
                continue
            if kind == "NOT":
                inner = nodes[node_id][1]
                inner_kind = nodes[inner][0]
                if inner_kind in ("AND", "OR", "XOR") and self._fusable(
                    inner, inner_kind
                ):
                    self._absorbed.add(inner)
                    if inner_kind == "XOR":
                        leaves = list(self.graph.fanin(inner))
                        cell = "XNOR2"
                    else:
                        leaves = self._fuse_chain(inner_kind, inner)
                        prefix = "NAND" if inner_kind == "AND" else "NOR"
                        cell = f"{prefix}{len(leaves)}"
                    self._plans[node_id] = (cell, leaves)
                else:
                    self._plans[node_id] = ("INV", [inner])
            elif kind in ("AND", "OR"):
                leaves = self._fuse_chain(kind, node_id)
                self._plans[node_id] = (f"{kind}{len(leaves)}", leaves)
            elif kind == "XOR":
                self._plans[node_id] = ("XOR2", list(nodes[node_id][1:]))
            elif kind == "MUX":
                sel, if0, if1 = nodes[node_id][1:]
                self._plans[node_id] = ("MUX2", [if0, if1, sel])
            elif kind == "XOR3":
                self._plans[node_id] = ("XOR3", list(nodes[node_id][1:]))
            elif kind == "MAJ3":
                self._plans[node_id] = ("MAJ3", list(nodes[node_id][1:]))
            else:
                raise ValueError(f"cannot map node kind {kind}")

    def _emit(self) -> None:
        for node_id in self._live:
            plan = self._plans.get(node_id)
            if plan is None:
                continue
            cell, operands = plan
            if cell == "MUX2":
                pins = {"A": self.wire_of(operands[0]), "B": self.wire_of(operands[1]),
                        "S": self.wire_of(operands[2])}
            else:
                order = _PIN_ORDERS[len(operands)]
                pins = {pin: self.wire_of(op) for pin, op in zip(order, operands)}
            self.netlist.add_gate(f"U{node_id}", cell, pins, self.wire_of(node_id))
