"""Hash-consed bit-level logic graph with local simplification.

The graph is the synthesis intermediate representation: every node is a
1-bit signal. Structural hashing (one canonical node per operation/operand
combination) plus constant folding and the usual local identities stand in
for the logic optimization a commercial synthesis tool performs — this is
what keeps the register-file mux trees and ALU logic lean enough to have
realistic fault-cone sizes.

Node ids 0 and 1 are the constants. Node kinds:
``VAR`` (named leaf), ``NOT``, ``AND``, ``OR``, ``XOR``, ``MUX`` (sel, if0,
if1), ``XOR3`` (full-adder sum), ``MAJ3`` (full-adder carry).

With ``simplify=False`` the constructors intern nodes verbatim (operands
still canonically sorted for commutative kinds) without constant folding
or rewrites. Synthesis uses this *raw* mode to produce the unoptimized
reference netlist that the SAT equivalence check compares against the
optimized one — the reference must not share the optimizer whose output
it vouches for.
"""

from __future__ import annotations

CONST0 = 0
CONST1 = 1


class BitGraph:
    """A DAG of 1-bit operations with structural hashing."""

    def __init__(self, simplify: bool = True) -> None:
        # nodes[i] is a tuple; constants get placeholder tuples.
        self.nodes: list[tuple] = [("CONST", 0), ("CONST", 1)]
        self._hash: dict[tuple, int] = {}
        self._vars: dict[str, int] = {}
        self.simplify = simplify

    # ------------------------------------------------------------------
    def _intern(self, node: tuple) -> int:
        existing = self._hash.get(node)
        if existing is not None:
            return existing
        node_id = len(self.nodes)
        self.nodes.append(node)
        self._hash[node] = node_id
        return node_id

    def var(self, name: str) -> int:
        """A named leaf (primary-input bit or flip-flop Q bit)."""
        existing = self._vars.get(name)
        if existing is not None:
            return existing
        node_id = self._intern(("VAR", name))
        self._vars[name] = node_id
        return node_id

    def var_names(self) -> dict[str, int]:
        """Mapping of leaf names to node ids."""
        return dict(self._vars)

    def is_const(self, node_id: int) -> bool:
        """True for the two constant nodes."""
        return node_id in (CONST0, CONST1)

    def _is_not_of(self, a: int, b: int) -> bool:
        """True if node ``a`` is NOT(b) or vice versa."""
        return self.nodes[a] == ("NOT", b) or self.nodes[b] == ("NOT", a)

    # ------------------------------------------------------------------
    def mk_not(self, a: int) -> int:
        """Complement (folds constants and double negation)."""
        if self.simplify:
            if a == CONST0:
                return CONST1
            if a == CONST1:
                return CONST0
            node = self.nodes[a]
            if node[0] == "NOT":
                return node[1]
        return self._intern(("NOT", a))

    def mk_and(self, a: int, b: int) -> int:
        """Conjunction with the usual local identities."""
        if self.simplify:
            if a == CONST0 or b == CONST0:
                return CONST0
            if a == CONST1:
                return b
            if b == CONST1:
                return a
            if a == b:
                return a
            if self._is_not_of(a, b):
                return CONST0
        if a > b:
            a, b = b, a
        return self._intern(("AND", a, b))

    def mk_or(self, a: int, b: int) -> int:
        """Disjunction with the usual local identities."""
        if self.simplify:
            if a == CONST1 or b == CONST1:
                return CONST1
            if a == CONST0:
                return b
            if b == CONST0:
                return a
            if a == b:
                return a
            if self._is_not_of(a, b):
                return CONST1
        if a > b:
            a, b = b, a
        return self._intern(("OR", a, b))

    def mk_xor(self, a: int, b: int) -> int:
        """Exclusive-or with the usual local identities."""
        if self.simplify:
            if a == b:
                return CONST0
            if a == CONST0:
                return b
            if b == CONST0:
                return a
            if a == CONST1:
                return self.mk_not(b)
            if b == CONST1:
                return self.mk_not(a)
            if self._is_not_of(a, b):
                return CONST1
        if a > b:
            a, b = b, a
        return self._intern(("XOR", a, b))

    def mk_mux(self, sel: int, if0: int, if1: int) -> int:
        """``sel == 0`` selects ``if0``; ``sel == 1`` selects ``if1``."""
        if self.simplify:
            if sel == CONST0:
                return if0
            if sel == CONST1:
                return if1
            if if0 == if1:
                return if0
            if if0 == CONST0 and if1 == CONST1:
                return sel
            if if0 == CONST1 and if1 == CONST0:
                return self.mk_not(sel)
            if if0 == CONST0:
                return self.mk_and(sel, if1)
            if if1 == CONST0:
                return self.mk_and(self.mk_not(sel), if0)
            if if0 == CONST1:
                return self.mk_or(self.mk_not(sel), if1)
            if if1 == CONST1:
                return self.mk_or(sel, if0)
            if self._is_not_of(if0, if1):
                # mux(s, x, ~x) == s XOR x
                return self.mk_xor(sel, if0)
        return self._intern(("MUX", sel, if0, if1))

    def mk_xor3(self, a: int, b: int, c: int) -> int:
        """Full-adder sum bit."""
        operands = sorted((a, b, c))
        if self.simplify and (
            operands[0] in (CONST0, CONST1) or len(set(operands)) < 3
        ):
            return self.mk_xor(self.mk_xor(a, b), c)
        return self._intern(("XOR3", *operands))

    def mk_maj3(self, a: int, b: int, c: int) -> int:
        """Full-adder carry bit (majority of three)."""
        if self.simplify:
            if a == b:
                return a
            if a == c:
                return a
            if b == c:
                return b
            for x, y, z in ((a, b, c), (b, a, c), (c, a, b)):
                if x == CONST0:
                    return self.mk_and(y, z)
                if x == CONST1:
                    return self.mk_or(y, z)
                if self._is_not_of(y, z):
                    return x
        operands = sorted((a, b, c))
        return self._intern(("MAJ3", *operands))

    # ------------------------------------------------------------------
    def fanin(self, node_id: int) -> tuple[int, ...]:
        """Operand node ids of a node (empty for leaves/constants)."""
        node = self.nodes[node_id]
        kind = node[0]
        if kind in ("CONST", "VAR"):
            return ()
        return node[1:]

    def live_nodes(self, roots: list[int]) -> list[int]:
        """All nodes reachable from ``roots``, in topological order."""
        seen: set[int] = set()
        order: list[int] = []
        stack: list[tuple[int, bool]] = [(root, False) for root in roots]
        while stack:
            node_id, expanded = stack.pop()
            if expanded:
                order.append(node_id)
                continue
            if node_id in seen:
                continue
            seen.add(node_id)
            stack.append((node_id, True))
            for operand in self.fanin(node_id):
                if operand not in seen:
                    stack.append((operand, False))
        return order

    def evaluate(self, roots: list[int], env: dict[str, int]) -> dict[int, int]:
        """Reference interpreter (used by synthesis equivalence tests)."""
        values: dict[int, int] = {CONST0: 0, CONST1: 1}
        for node_id in self.live_nodes(roots):
            if node_id in values:
                continue
            node = self.nodes[node_id]
            kind = node[0]
            if kind == "VAR":
                values[node_id] = env[node[1]] & 1
            elif kind == "NOT":
                values[node_id] = 1 ^ values[node[1]]
            elif kind == "AND":
                values[node_id] = values[node[1]] & values[node[2]]
            elif kind == "OR":
                values[node_id] = values[node[1]] | values[node[2]]
            elif kind == "XOR":
                values[node_id] = values[node[1]] ^ values[node[2]]
            elif kind == "MUX":
                sel, if0, if1 = node[1:]
                values[node_id] = values[if1] if values[sel] else values[if0]
            elif kind == "XOR3":
                values[node_id] = values[node[1]] ^ values[node[2]] ^ values[node[3]]
            elif kind == "MAJ3":
                a, b, c = (values[node[1]], values[node[2]], values[node[3]])
                values[node_id] = (a & b) | (a & c) | (b & c)
            else:
                raise ValueError(f"unknown node kind {kind}")
        return values

    def __len__(self) -> int:
        return len(self.nodes)
