"""Lowering: word-level RTL expressions → bit-level graph nodes."""

from __future__ import annotations

from repro.rtl.circuit import Reg
from repro.rtl.expr import (
    Add,
    BinOp,
    Cat,
    Const,
    Eq,
    Expr,
    InputExpr,
    Mux,
    Not,
    Reduce,
    Slice,
    Sub,
)
from repro.synth.bitgraph import CONST0, CONST1, BitGraph


def bit_name(signal: str, index: int, width: int) -> str:
    """Canonical per-bit wire name: scalar signals keep their plain name."""
    if width == 1:
        return signal
    return f"{signal}_b{index}"


class Lowerer:
    """Memoizing Expr → bit-id translator over a shared :class:`BitGraph`."""

    def __init__(self, graph: BitGraph) -> None:
        self.graph = graph
        self._memo: dict[int, list[int]] = {}

    def lower(self, expr: Expr) -> list[int]:
        """Bit ids of ``expr``, LSB first."""
        memoized = self._memo.get(id(expr))
        if memoized is not None:
            return memoized
        bits = self._lower(expr)
        if len(bits) != expr.width:
            raise AssertionError(
                f"lowering bug: {type(expr).__name__} produced {len(bits)} bits, "
                f"expected {expr.width}"
            )
        self._memo[id(expr)] = bits
        return bits

    def _leaf_bits(self, name: str, width: int) -> list[int]:
        return [self.graph.var(bit_name(name, i, width)) for i in range(width)]

    def _lower(self, expr: Expr) -> list[int]:
        graph = self.graph
        if isinstance(expr, Const):
            return [
                CONST1 if (expr.value >> i) & 1 else CONST0
                for i in range(expr.width)
            ]
        if isinstance(expr, InputExpr):
            return self._leaf_bits(expr.name, expr.width)
        if isinstance(expr, Reg):
            return self._leaf_bits(expr.name, expr.width)
        if isinstance(expr, Not):
            return [graph.mk_not(b) for b in self.lower(expr.operand)]
        if isinstance(expr, BinOp):
            lhs = self.lower(expr.lhs)
            rhs = self.lower(expr.rhs)
            op = {
                "and": graph.mk_and,
                "or": graph.mk_or,
                "xor": graph.mk_xor,
            }[expr.kind]
            return [op(a, b) for a, b in zip(lhs, rhs)]
        if isinstance(expr, Mux):
            sel = self.lower(expr.sel)[0]
            if0 = self.lower(expr.if0)
            if1 = self.lower(expr.if1)
            return [graph.mk_mux(sel, a, b) for a, b in zip(if0, if1)]
        if isinstance(expr, Cat):
            bits: list[int] = []
            for part in expr.parts:
                bits.extend(self.lower(part))
            return bits
        if isinstance(expr, Slice):
            return self.lower(expr.operand)[expr.start : expr.stop]
        if isinstance(expr, Add):
            carry = (
                self.lower(expr.carry_in)[0] if expr.carry_in is not None else CONST0
            )
            return self._ripple(self.lower(expr.lhs), self.lower(expr.rhs), carry)
        if isinstance(expr, Sub):
            # a - b - bin  ==  a + ~b + ~bin (two's complement)
            rhs = [graph.mk_not(b) for b in self.lower(expr.rhs)]
            if expr.borrow_in is not None:
                carry = graph.mk_not(self.lower(expr.borrow_in)[0])
            else:
                carry = CONST1
            return self._ripple(self.lower(expr.lhs), rhs, carry)
        if isinstance(expr, Eq):
            lhs = self.lower(expr.lhs)
            rhs = self.lower(expr.rhs)
            equal_bits = [graph.mk_not(graph.mk_xor(a, b)) for a, b in zip(lhs, rhs)]
            return [self._tree(graph.mk_and, equal_bits)]
        if isinstance(expr, Reduce):
            bits = self.lower(expr.operand)
            op = {
                "and": graph.mk_and,
                "or": graph.mk_or,
                "xor": graph.mk_xor,
            }[expr.kind]
            return [self._tree(op, bits)]
        raise TypeError(f"cannot lower expression of type {type(expr).__name__}")

    def _ripple(self, lhs: list[int], rhs: list[int], carry: int) -> list[int]:
        """Ripple-carry adder from full-adder cells; returns n+1 bits."""
        graph = self.graph
        sums: list[int] = []
        for a, b in zip(lhs, rhs):
            sums.append(graph.mk_xor3(a, b, carry))
            carry = graph.mk_maj3(a, b, carry)
        sums.append(carry)
        return sums

    def _tree(self, op, bits: list[int]) -> int:
        """Balanced reduction tree (keeps logic depth logarithmic)."""
        if not bits:
            raise ValueError("reduction over zero bits")
        level = list(bits)
        while len(level) > 1:
            nxt = [op(level[i], level[i + 1]) for i in range(0, len(level) - 1, 2)]
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]
