"""Synthesis: lower RTL to bits, optimize, tech-map onto the cell library."""

from repro.synth.bitgraph import BitGraph
from repro.synth.synthesize import synthesize

__all__ = ["BitGraph", "synthesize"]
