"""Synthesis: lower RTL to bits, optimize, tech-map onto the cell library."""

from repro.synth.bitgraph import BitGraph
from repro.synth.synthesize import (
    SynthesisEquivalenceError,
    SynthesisResult,
    elaborate,
    synthesize,
    verify_synthesis,
)

__all__ = [
    "BitGraph",
    "SynthesisEquivalenceError",
    "SynthesisResult",
    "elaborate",
    "synthesize",
    "verify_synthesis",
]
