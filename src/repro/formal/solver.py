"""A self-contained CDCL SAT solver (pure stdlib).

The solver implements the classic conflict-driven clause-learning loop
in the MiniSat lineage, sized for the netlist-cone queries this project
generates (thousands of variables, tens of thousands of clauses):

* **two-watched literals** for unit propagation,
* **first-UIP** conflict analysis with clause learning,
* **VSIDS**-style variable activity with a lazily rebuilt heap,
* **phase saving** (a variable is re-tried with its last value),
* **Luby restarts**, and
* **model extraction** for satisfiable queries.

Literals follow the DIMACS convention at the API boundary: variable
``v`` (a positive integer from :meth:`Solver.new_var`) appears as ``v``
or ``-v``.  Internally a literal is ``2*v + sign`` so negation is a
cheap XOR and watch lists index into a flat list.

The clause database is never garbage-collected: our queries are one-shot
(a fresh solver per proof obligation) and rarely exceed a few thousand
conflicts, so learned-clause deletion would only add machinery.

Solver statistics (conflicts, decisions, propagations, restarts) feed
the ``formal.*`` observability counters and each :meth:`Solver.solve`
call is wrapped in a ``formal.solve`` span.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable

from repro.obs import counter, span

#: Verdicts returned by :meth:`Solver.solve`.
SAT = True
UNSAT = False
UNKNOWN = None

_UNASSIGNED = -1


def luby(i: int) -> int:
    """The *i*-th term (1-based) of the Luby restart sequence.

    1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
    """
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


class Solver:
    """A CDCL SAT solver over clauses of DIMACS-style literals."""

    def __init__(self) -> None:
        self.num_vars = 0
        #: per-variable truth value: 1, 0, or ``_UNASSIGNED``; index 0 unused.
        self._assign: list[int] = [_UNASSIGNED]
        self._level: list[int] = [0]
        self._reason: list[list[int] | None] = [None]
        self._activity: list[float] = [0.0]
        self._polarity: list[int] = [0]
        #: watch lists indexed by internal literal (``2*v + sign``).
        self._watches: list[list[list[int]]] = [[], []]
        self._trail: list[int] = []  # internal literals in assignment order
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._var_inc = 1.0
        self._heap: list[tuple[float, int]] = []  # lazy (-activity, var) heap
        self._ok = True
        self._model: list[int] | None = None
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learned = 0

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable and return its (positive) index."""
        self.num_vars += 1
        self._assign.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._polarity.append(0)
        self._watches.append([])
        self._watches.append([])
        heapq.heappush(self._heap, (0.0, self.num_vars))
        return self.num_vars

    @staticmethod
    def _internal(lit: int) -> int:
        return (lit << 1) if lit > 0 else ((-lit) << 1) | 1

    @staticmethod
    def _external(ilit: int) -> int:
        return (ilit >> 1) if not (ilit & 1) else -(ilit >> 1)

    def _lit_value(self, ilit: int) -> int:
        value = self._assign[ilit >> 1]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value ^ (ilit & 1)

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause; returns ``False`` if the formula became UNSAT.

        Clauses may be added only before :meth:`solve` (the solver is
        always at decision level 0 between calls, so unit clauses are
        enqueued immediately).
        """
        if not self._ok:
            return False
        seen: set[int] = set()
        clause: list[int] = []
        for lit in lits:
            if not lit or abs(lit) > self.num_vars:
                raise ValueError(f"unknown literal {lit!r}")
            ilit = self._internal(lit)
            if ilit ^ 1 in seen:
                return True  # tautology: p or -p
            if ilit in seen:
                continue
            value = self._lit_value(ilit)
            if value == 1 and self._level[ilit >> 1] == 0:
                return True  # already satisfied at the root
            if value == 0 and self._level[ilit >> 1] == 0:
                continue  # falsified at the root: drop the literal
            seen.add(ilit)
            clause.append(ilit)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._ok = False
                return False
            self._ok = self._propagate() is None
            return self._ok
        self._attach(clause)
        return True

    def _attach(self, clause: list[int]) -> None:
        self._watches[clause[0] ^ 1].append(clause)
        self._watches[clause[1] ^ 1].append(clause)

    # ------------------------------------------------------------------
    # Assignment / propagation
    # ------------------------------------------------------------------
    def _enqueue(self, ilit: int, reason: list[int] | None) -> bool:
        var = ilit >> 1
        value = 1 ^ (ilit & 1)
        if self._assign[var] != _UNASSIGNED:
            return self._assign[var] == value
        self._assign[var] = value
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(ilit)
        return True

    def _propagate(self) -> list[int] | None:
        """Propagate units; returns a conflicting clause or ``None``."""
        assign = self._assign
        watches = self._watches
        while self._qhead < len(self._trail):
            p = self._trail[self._qhead]
            self._qhead += 1
            self.propagations += 1
            false_lit = p ^ 1
            # Clauses watching ``false_lit`` are registered under index
            # ``false_lit ^ 1 == p`` (see _attach).
            watch_list = watches[p]
            kept: list[list[int]] = []
            for i, clause in enumerate(watch_list):
                # Ensure the falsified watch sits at position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                value = assign[first >> 1]
                if value != _UNASSIGNED and (value ^ (first & 1)) == 1:
                    kept.append(clause)  # satisfied by the other watch
                    continue
                for k in range(2, len(clause)):
                    lit = clause[k]
                    value = assign[lit >> 1]
                    if value == _UNASSIGNED or (value ^ (lit & 1)) == 1:
                        clause[1], clause[k] = clause[k], clause[1]
                        watches[clause[1] ^ 1].append(clause)
                        break
                else:
                    kept.append(clause)
                    if not self._enqueue(first, clause):
                        kept.extend(watch_list[i + 1 :])
                        watches[p] = kept
                        return clause
            watches[p] = kept
        return None

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP analysis: returns (learnt clause, backtrack level)."""
        learnt: list[int] = [0]  # slot 0 receives the asserting literal
        seen = bytearray(self.num_vars + 1)
        current = len(self._trail_lim)
        counter_ = 0
        p = -1
        index = len(self._trail) - 1
        clause = conflict
        while True:
            start = 0 if p == -1 else 1  # skip the propagated literal
            for k in range(start, len(clause)):
                q = clause[k]
                var = q >> 1
                if not seen[var] and self._level[var] > 0:
                    seen[var] = 1
                    self._bump(var)
                    if self._level[var] >= current:
                        counter_ += 1
                    else:
                        learnt.append(q)
            while not seen[self._trail[index] >> 1]:
                index -= 1
            p = self._trail[index]
            index -= 1
            seen[p >> 1] = 0
            counter_ -= 1
            if counter_ == 0:
                break
            clause = self._reason[p >> 1]  # type: ignore[assignment]
        learnt[0] = p ^ 1
        if len(learnt) == 1:
            return learnt, 0
        # Move a literal from the highest remaining level into slot 1.
        best = max(range(1, len(learnt)), key=lambda i: self._level[learnt[i] >> 1])
        learnt[1], learnt[best] = learnt[best], learnt[1]
        return learnt, self._level[learnt[1] >> 1]

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        for ilit in reversed(self._trail[bound:]):
            var = ilit >> 1
            self._polarity[var] = self._assign[var]
            self._assign[var] = _UNASSIGNED
            self._reason[var] = None
            heapq.heappush(self._heap, (-self._activity[var], var))
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _decide(self) -> bool:
        while self._heap:
            _, var = heapq.heappop(self._heap)
            if self._assign[var] == _UNASSIGNED:
                self.decisions += 1
                self._trail_lim.append(len(self._trail))
                # Phase saving: re-try the last value; default phase False.
                sign = 0 if self._polarity[var] == 1 else 1
                self._enqueue((var << 1) | sign, None)
                return True
        return False

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def solve(self, max_conflicts: int | None = None) -> bool | None:
        """Decide satisfiability.

        Returns :data:`SAT` (``True``) with a model available through
        :meth:`model_value`, :data:`UNSAT` (``False``), or
        :data:`UNKNOWN` (``None``) when *max_conflicts* ran out.
        """
        with span("formal.solve", vars=self.num_vars):
            result = self._solve(max_conflicts)
        counter("formal.conflicts").inc(self.conflicts)
        counter("formal.decisions").inc(self.decisions)
        counter("formal.propagations").inc(self.propagations)
        counter("formal.restarts").inc(self.restarts)
        return result

    def _solve(self, max_conflicts: int | None) -> bool | None:
        if not self._ok:
            return UNSAT
        self._model = None
        restart_unit = 128
        round_ = 0
        budget_left = max_conflicts
        while True:
            round_ += 1
            limit = luby(round_) * restart_unit
            status = self._search(limit, budget_left)
            if status is not UNKNOWN:
                return status
            if budget_left is not None:
                budget_left = max_conflicts - self.conflicts
                if budget_left <= 0:
                    self._backtrack(0)
                    return UNKNOWN
            self.restarts += 1
            self._backtrack(0)

    def _search(self, restart_limit: int, budget_left: int | None) -> bool | None:
        conflicts_here = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if not self._trail_lim:
                    self._ok = False
                    return UNSAT
                learnt, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        self._ok = False
                        return UNSAT
                else:
                    self._attach(learnt)
                    self._enqueue(learnt[0], learnt)
                self.learned += 1
                self._var_inc /= 0.95
                if conflicts_here >= restart_limit:
                    return UNKNOWN
                if budget_left is not None and conflicts_here >= budget_left:
                    return UNKNOWN
            else:
                if not self._decide():
                    self._model = self._assign[:]
                    self._backtrack(0)
                    return SAT

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------
    def model_value(self, var: int) -> int:
        """Truth value (0/1) of *var* in the last satisfying model."""
        if self._model is None:
            raise RuntimeError("no model: last solve() did not return SAT")
        value = self._model[var]
        return 0 if value == _UNASSIGNED else value

    def model(self) -> dict[int, int]:
        """The last satisfying model as ``{var: 0/1}``."""
        return {v: self.model_value(v) for v in range(1, self.num_vars + 1)}
