"""SAT-based proof engine for the pruning pipeline.

Pure-stdlib CDCL SAT solving (:mod:`repro.formal.solver`), Tseitin
encoding of cell truth tables and golden/faulty netlist cones
(:mod:`repro.formal.encode`), and miter-based combinational equivalence
checking (:mod:`repro.formal.miter`).  Consumed by the static MATE
checker's ``engine="sat"`` backend, ``synthesize(..., verify=True)``,
and the exact masking-coverage analysis.
"""

from repro.formal.encode import CnfBuilder, DualConeEncoder
from repro.formal.miter import (
    EquivalenceResult,
    check_netlist_equivalence,
    netlist_to_graph,
)
from repro.formal.solver import SAT, UNKNOWN, UNSAT, Solver

__all__ = [
    "SAT",
    "UNKNOWN",
    "UNSAT",
    "CnfBuilder",
    "DualConeEncoder",
    "EquivalenceResult",
    "Solver",
    "check_netlist_equivalence",
    "netlist_to_graph",
]
